"""One-stop facade for regenerating the paper's evaluation.

:class:`PaperArtifacts` resolves the expensive pipeline stages (world,
collection, MALGRAPH) through the shared :mod:`repro.pipeline` artifact
store and exposes one method per table/figure, each returning a typed
result object with a ``render()`` method. The benchmark harness is a
thin wrapper over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.analysis import (
    ActivePeriodCdf,
    CampaignTimeline,
    DgSizeCdf,
    DiversityTable,
    DownloadEvolution,
    FreshnessTable,
    GraphStatsTable,
    MissingRateTable,
    OperationDistribution,
    OverlapMatrix,
    ReleaseTimeline,
    ReportInventory,
    SourceInventory,
    TopIdnTable,
    UnavailabilityCauses,
    compute_active_periods,
    compute_dg_size_cdf,
    compute_diversity,
    compute_download_evolution,
    compute_freshness,
    compute_graph_stats,
    compute_missing_rates,
    compute_operation_distribution,
    compute_overlap_matrix,
    compute_release_timeline,
    compute_report_inventory,
    compute_source_inventory,
    compute_top_idn,
    compute_unavailability_causes,
    pick_example_campaign,
)
from repro.collection.pipeline import CollectionResult
from repro.collection.records import MalwareDataset
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.ecosystem.clock import STUDY_HORIZON_DAYS
from repro.pipeline import PipelineRuntime
from repro.world import World, WorldConfig


class PaperArtifacts:
    """World + dataset + MALGRAPH for one configuration, lazily resolved.

    Stages resolve through the shared :mod:`repro.pipeline` artifact
    store, so two facades over the same configuration (or a facade and a
    ``repro.world`` default, or a fresh process reading a warmed disk
    cache) share one copy of each artifact.
    """

    def __init__(
        self,
        config: Optional[WorldConfig] = None,
        similarity: Optional[SimilarityConfig] = None,
        runtime: Optional[PipelineRuntime] = None,
    ):
        self.config = config or WorldConfig()
        self.similarity = similarity if similarity is not None else SimilarityConfig()
        self.runtime = runtime or PipelineRuntime(self.config, self.similarity)
        self._world: Optional[World] = None
        self._collection: Optional[CollectionResult] = None
        self._malgraph: Optional[MalGraph] = None

    # -- pipeline stages -----------------------------------------------------
    @property
    def world(self) -> World:
        if self._world is None:
            self._world = self.runtime.world()
        return self._world

    @property
    def collection(self) -> CollectionResult:
        if self._collection is None:
            self._collection = self.runtime.collection()
        return self._collection

    @property
    def dataset(self) -> MalwareDataset:
        return self.collection.dataset

    @property
    def malgraph(self) -> MalGraph:
        if self._malgraph is None:
            self._malgraph = self.runtime.malgraph()
        return self._malgraph

    @property
    def columnar(self) -> MalwareDataset:
        """The dataset as a columnar corpus (lazy facade over arrays).

        Same contents as :attr:`dataset` — hydration is byte-identical
        under canonical serialisation — but vectorised analysis paths
        (Table II census, Fig. 2 timeline, Fig. 4 CDF) read the arrays
        directly, and a warmed disk cache memory-maps in without
        touching the collection JSONL.
        """
        return self.runtime.columnar()

    def warm(self) -> "PaperArtifacts":
        """Resolve every analysis-path stage (and persist the cacheable
        ones), so later accesses — and later processes — start warm."""
        self.malgraph
        self.collection
        return self

    # -- experiments ------------------------------------------------------
    def table1_sources(self) -> SourceInventory:
        return compute_source_inventory(self.dataset)

    def fig2_timeline(self) -> ReleaseTimeline:
        return compute_release_timeline(self.dataset)

    def table2_malgraph(self) -> GraphStatsTable:
        return compute_graph_stats(self.malgraph)

    def fig3_example_subgraph(self):
        """Fig. 3: one example malicious package group."""
        from repro.analysis.subgraph import compute_example_subgraph

        return compute_example_subgraph(self.malgraph)

    def table3_reports(self) -> ReportInventory:
        return compute_report_inventory(self.dataset)

    def table4_overlap(self) -> OverlapMatrix:
        return compute_overlap_matrix(self.dataset)

    def fig4_dg_cdf(self) -> DgSizeCdf:
        return compute_dg_size_cdf(self.dataset)

    def table5_freshness(self) -> FreshnessTable:
        return compute_freshness(self.dataset)

    def table6_missing(self) -> MissingRateTable:
        return compute_missing_rates(self.dataset)

    def fig5_causes(self) -> UnavailabilityCauses:
        return compute_unavailability_causes(self.dataset, self.world.mirrors)

    def table7_diversity(self) -> DiversityTable:
        return compute_diversity(self.malgraph)

    def fig8_campaign(self) -> Optional[CampaignTimeline]:
        return pick_example_campaign(self.malgraph)

    def fig9_active_periods(self) -> ActivePeriodCdf:
        return compute_active_periods(self.malgraph)

    def fig11_downloads(self) -> DownloadEvolution:
        return compute_download_evolution(self.malgraph)

    def fig12_operations(self) -> OperationDistribution:
        return compute_operation_distribution(self.malgraph)

    def table8_idn(self) -> TopIdnTable:
        return compute_top_idn(self.malgraph)

    def insights(self):
        """The four learned lessons, measured (intro Findings paragraph)."""
        from repro.analysis.insights import compute_insights

        return compute_insights(self)


@lru_cache(maxsize=8)
def _cached_artifacts(
    config: WorldConfig, similarity: SimilarityConfig
) -> PaperArtifacts:
    # Keyed on the *complete* configuration (every WorldConfig and
    # SimilarityConfig field), so configurations differing only in
    # horizon, detection_latency_scale or a similarity knob can no
    # longer alias to one bundle. The stages themselves are shared via
    # the pipeline store, so extra facade instances are cheap.
    return PaperArtifacts(config, similarity).warm()


def default_artifacts(
    seed: int = 7,
    scale: float = 1.0,
    horizon: int = STUDY_HORIZON_DAYS,
    detection_latency_scale: float = 1.0,
    similarity: Optional[SimilarityConfig] = None,
) -> PaperArtifacts:
    """The canonical, fully warmed artifact bundle (memoised)."""
    config = WorldConfig(
        seed=seed,
        scale=scale,
        horizon=horizon,
        detection_latency_scale=detection_latency_scale,
    )
    return _cached_artifacts(
        config, similarity if similarity is not None else SimilarityConfig()
    )
