"""Dataset merging and diffing (the paper's future-work update loop).

Section III-C closes with *"In future work, we will continue to find and
collect new malicious packages and security reports to improve the
MALGRAPH coverage."* That loop needs two primitives a one-shot pipeline
lacks:

* :func:`merge_datasets` — union two collected datasets: claims merge
  per source (earliest report day wins), artifacts fill in from
  whichever side has them, reports deduplicate by id;
* :func:`diff_datasets` — what changed between two collection runs:
  packages added/removed, packages whose artifact was newly recovered,
  and new reports.

Both are pure: inputs are never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.ecosystem.package import PackageId
from repro.errors import DatasetError


def _normalized_claims(entry: DatasetEntry) -> List[SourceClaim]:
    """One claim per source: earliest report day, sticky sharing flag.

    The pipeline already guarantees per-source uniqueness; hand-built
    datasets may not, and merging must not amplify such duplicates.
    """
    by_source: Dict[str, SourceClaim] = {}
    for claim in entry.claims:
        held = by_source.get(claim.source)
        if held is None:
            by_source[claim.source] = SourceClaim(
                claim.source, claim.report_day, claim.shares_artifact
            )
        else:
            by_source[claim.source] = SourceClaim(
                claim.source,
                min(held.report_day, claim.report_day),
                held.shares_artifact or claim.shares_artifact,
            )
    return list(by_source.values())


def _clone_entry(entry: DatasetEntry) -> DatasetEntry:
    clone = DatasetEntry(
        package=entry.package,
        claims=_normalized_claims(entry),
        artifact=entry.artifact,
        artifact_origin=entry.artifact_origin,
        release_day=entry.release_day,
        removal_day=entry.removal_day,
        detection_day=entry.detection_day,
        downloads=entry.downloads,
        campaign_id=entry.campaign_id,
        actor=entry.actor,
        archetype=entry.archetype,
        behavior_key=entry.behavior_key,
    )
    return clone


def _merge_into(base: DatasetEntry, extra: DatasetEntry) -> None:
    """Fold ``extra``'s knowledge into ``base`` (same package)."""
    by_source = {c.source: c for c in base.claims}
    for claim in extra.claims:
        held = by_source.get(claim.source)
        if held is None:
            merged = SourceClaim(claim.source, claim.report_day, claim.shares_artifact)
            base.claims.append(merged)
            by_source[claim.source] = merged
        elif claim.report_day < held.report_day:
            by_source[claim.source] = SourceClaim(
                claim.source, claim.report_day,
                held.shares_artifact or claim.shares_artifact,
            )
            base.claims = [
                by_source[c.source] if c.source == claim.source else c
                for c in base.claims
            ]
        elif claim.shares_artifact and not held.shares_artifact:
            replacement = SourceClaim(held.source, held.report_day, True)
            by_source[claim.source] = replacement
            base.claims = [
                replacement if c.source == claim.source else c for c in base.claims
            ]
    if base.artifact is None and extra.artifact is not None:
        base.artifact = extra.artifact
        base.artifact_origin = extra.artifact_origin
    elif (
        base.artifact is not None
        and extra.artifact is not None
        and base.artifact.sha256() != extra.artifact.sha256()
    ):
        raise DatasetError(
            f"conflicting artifacts for {base.package}: "
            f"{base.artifact.sha256()[:12]} vs {extra.artifact.sha256()[:12]}"
        )
    for attr in ("release_day", "removal_day", "detection_day"):
        if getattr(base, attr) is None:
            setattr(base, attr, getattr(extra, attr))
    base.downloads = max(base.downloads, extra.downloads)
    for attr in ("campaign_id", "actor", "archetype", "behavior_key"):
        if getattr(base, attr) is None:
            setattr(base, attr, getattr(extra, attr))


def merge_datasets(base: MalwareDataset, new: MalwareDataset) -> MalwareDataset:
    """Union of two collection runs; neither input is mutated."""
    merged: Dict[PackageId, DatasetEntry] = {
        entry.package: _clone_entry(entry) for entry in base.entries
    }
    for entry in new.entries:
        held = merged.get(entry.package)
        if held is None:
            merged[entry.package] = _clone_entry(entry)
        else:
            _merge_into(held, entry)
    entries = sorted(
        merged.values(),
        key=lambda e: (e.package.ecosystem, e.package.name, e.package.version),
    )
    reports: Dict[str, CollectedReport] = {r.report_id: r for r in base.reports}
    for report in new.reports:
        reports.setdefault(report.report_id, report)
    return MalwareDataset(
        entries=entries,
        reports=sorted(reports.values(), key=lambda r: r.report_id),
    )


@dataclass
class DatasetDiff:
    """What changed from ``old`` to ``new``."""

    added: List[PackageId] = field(default_factory=list)
    removed: List[PackageId] = field(default_factory=list)
    newly_available: List[PackageId] = field(default_factory=list)
    new_sources: Dict[PackageId, Set[str]] = field(default_factory=dict)
    new_reports: List[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (
            self.added
            or self.removed
            or self.newly_available
            or self.new_sources
            or self.new_reports
        )

    def summary(self) -> str:
        return (
            f"+{len(self.added)} packages, -{len(self.removed)}, "
            f"{len(self.newly_available)} newly available, "
            f"{len(self.new_sources)} with new sources, "
            f"+{len(self.new_reports)} reports"
        )


def events_from_datasets(
    old: MalwareDataset, new: MalwareDataset
) -> List["GraphEvent"]:
    """The event batch that carries ``old`` to ``new``'s contents.

    Emission order is removals, then updates, then additions (in
    ``new``'s entry order), then new reports. Applying the batch via
    :func:`repro.core.delta.events.apply_events_to_dataset` yields a
    dataset with exactly ``new``'s entries per key; entry *order* follows
    the event semantics (updates in place, additions appended), which is
    the order the delta engine's correctness contract anchors on.

    Updates compare serialised entries, so a re-collection that changed
    nothing emits nothing.
    """
    from repro.core.delta.events import GraphEvent
    from repro.io.datasets import entry_to_dict

    events: List["GraphEvent"] = []
    new_keys = {entry.package for entry in new.entries}
    for entry in old.entries:
        if entry.package not in new_keys:
            events.append(GraphEvent.package_removed(entry.package))
    for entry in new.entries:
        counterpart = old.get(entry.package)
        if counterpart is None:
            events.append(GraphEvent.package_added(entry))
        elif entry_to_dict(entry) != entry_to_dict(counterpart):
            events.append(GraphEvent.package_detected(entry))
    old_reports = {report.report_id for report in old.reports}
    for report in new.reports:
        if report.report_id not in old_reports:
            events.append(GraphEvent.report_ingested(report))
    return events


def diff_datasets(old: MalwareDataset, new: MalwareDataset) -> DatasetDiff:
    """Structured difference between two collection runs."""
    diff = DatasetDiff()
    old_keys = {entry.package for entry in old.entries}
    new_keys = {entry.package for entry in new.entries}
    diff.added = sorted(new_keys - old_keys)
    diff.removed = sorted(old_keys - new_keys)
    for entry in new.entries:
        counterpart = old.get(entry.package)
        if counterpart is None:
            continue
        if entry.available and not counterpart.available:
            diff.newly_available.append(entry.package)
        gained = entry.sources - counterpart.sources
        if gained:
            diff.new_sources[entry.package] = gained
    old_reports = {r.report_id for r in old.reports}
    diff.new_reports = sorted(
        r.report_id for r in new.reports if r.report_id not in old_reports
    )
    return diff
