"""Request metrics for the serving layer: counters and latency histograms.

``ServiceMetrics`` records one observation per HTTP request — endpoint,
status code, wall-clock seconds — into per-endpoint request counts,
status-code counts and a fixed-bucket :class:`LatencyHistogram` (no new
dependencies, O(1) per observation, bounded memory). ``snapshot()``
renders the ``GET /v1/metrics`` payload: for every endpoint a
``{"requests", "status", "latency"}`` object where ``latency`` carries
``count`` / ``sum_seconds`` / ``p50_ms`` / ``p95_ms`` / ``p99_ms``
estimated from the histogram buckets. All methods are thread-safe; the
handler threads of the HTTP server share one instance.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Optional, Tuple

#: Bucket upper bounds in seconds (log-spaced 100µs .. 10s); one
#: implicit overflow bucket catches anything slower.
LATENCY_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    Observations land in log-spaced buckets; a percentile is the upper
    bound of the first bucket whose cumulative count covers it (the
    overflow bucket reports the largest observation seen). Upper-bound
    reporting makes the estimate conservative: the true percentile is
    never above the reported one by more than a bucket width.
    """

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKET_BOUNDS):
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def percentile(self, p: float) -> Optional[float]:
        """Latency (seconds) at quantile ``p`` in [0, 1], None if empty."""
        if self.count == 0:
            return None
        rank = p * self.count
        cumulative = 0
        for idx, held in enumerate(self.counts):
            cumulative += held
            if cumulative >= rank and held:
                if idx < len(self.bounds):
                    return min(self.bounds[idx], self.max_seconds)
                return self.max_seconds
        return self.max_seconds

    def to_dict(self) -> Dict:
        def _ms(p: float) -> Optional[float]:
            seconds = self.percentile(p)
            return None if seconds is None else round(seconds * 1000.0, 3)

        return {
            "count": self.count,
            "sum_seconds": round(self.sum_seconds, 6),
            "max_ms": round(self.max_seconds * 1000.0, 3),
            "p50_ms": _ms(0.50),
            "p95_ms": _ms(0.95),
            "p99_ms": _ms(0.99),
        }


class ServiceMetrics:
    """Thread-safe per-endpoint request/status/latency accounting.

    Subsystems with their own books (the rate limiter, a connector
    scheduler, ...) register a gauge callable via :meth:`attach_gauges`;
    :meth:`snapshot` folds each one in as a top-level section, so
    ``GET /v1/metrics`` stays the single pane of glass without the HTTP
    layer knowing every subsystem's shape.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._endpoints: Dict[str, Dict] = {}
        self._gauges: Dict[str, "Callable[[], Dict]"] = {}

    def attach_gauges(self, section: str, supplier: "Callable[[], Dict]") -> None:
        """Add (or replace) a named gauge section in every snapshot."""
        reserved = {"endpoints", "total_requests"}
        if section in reserved:
            raise ValueError(f"gauge section name {section!r} is reserved")
        with self._lock:
            self._gauges[section] = supplier

    def observe(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        rows: Optional[int] = None,
    ) -> None:
        """Record one finished request (status 0 = client went away).

        ``rows`` is the result-row count for endpoints that return row
        sets (``/v1/query``); it accumulates into the endpoint's
        ``rows_returned`` counter.
        """
        with self._lock:
            row = self._endpoints.get(endpoint)
            if row is None:
                row = {
                    "requests": 0,
                    "status": {},
                    "latency": LatencyHistogram(),
                    "rows_returned": 0,
                }
                self._endpoints[endpoint] = row
            row["requests"] += 1
            key = str(int(status))
            row["status"][key] = row["status"].get(key, 0) + 1
            row["latency"].observe(seconds)
            if rows is not None:
                row["rows_returned"] += int(rows)

    def snapshot(self) -> Dict:
        """The ``/v1/metrics`` payload: endpoints, statuses, percentiles."""
        with self._lock:
            endpoints = {
                name: {
                    "requests": row["requests"],
                    "status": dict(sorted(row["status"].items())),
                    "latency": row["latency"].to_dict(),
                    "rows_returned": row.get("rows_returned", 0),
                }
                for name, row in sorted(self._endpoints.items())
            }
            snapshot = {
                "endpoints": endpoints,
                "total_requests": sum(
                    row["requests"] for row in self._endpoints.values()
                ),
            }
            gauges = dict(self._gauges)
        # gauge suppliers take their own locks; call them outside ours
        for section, supplier in sorted(gauges.items()):
            snapshot[section] = supplier()
        return snapshot

    def render(self) -> str:
        """One line per endpoint, for ``repro serve --verbose`` shutdown."""
        snap = self.snapshot()
        lines = [f"requests served: {snap['total_requests']}"]
        for name, row in snap["endpoints"].items():
            latency = row["latency"]
            statuses = ", ".join(
                f"{code}:{count}" for code, count in row["status"].items()
            )
            lines.append(
                f"  {name:<18} {row['requests']:>7} reqs  [{statuses}]  "
                f"p50={latency['p50_ms']}ms p95={latency['p95_ms']}ms "
                f"p99={latency['p99_ms']}ms"
            )
        limiter = snap.get("rate_limiter")
        if limiter:
            lines.append(
                f"  rate limiter: {limiter['allowed']} allowed, "
                f"{limiter['rejected']} rejected "
                f"({limiter['rate_per_client']:g} req/s per client, "
                f"burst {limiter['burst']:g})"
            )
        return "\n".join(lines)
