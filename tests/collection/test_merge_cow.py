"""Copy-on-write semantics of :func:`merge_datasets`.

The merge used to clone and claim-normalise every base entry even when
``new`` was empty; since the columnar scale-out it shares untouched
entries by identity and short-circuits trivial merges, so merging a
small delta into a large base allocates O(delta).
"""

from __future__ import annotations

from repro.collection.merge import merge_datasets
from repro.collection.records import DatasetEntry, MalwareDataset, SourceClaim
from repro.ecosystem.package import PackageId, make_artifact


def _entry(name: str, version: str = "1.0", source: str = "snyk") -> DatasetEntry:
    return DatasetEntry(
        package=PackageId("pypi", name, version),
        claims=[SourceClaim(source, 10, False)],
        artifact=make_artifact("pypi", name, version, {"m.py": f"# {name}\n"}),
        artifact_origin="source:test",
        downloads=5,
    )


def _report_stub(report_id: str):
    from repro.collection.records import CollectedReport

    return CollectedReport(
        report_id=report_id,
        url=f"https://example.test/{report_id}",
        site="example.test",
        category="Security org.",
        source="snyk",
        publish_day=12,
        packages=[],
    )


def test_empty_new_returns_base_object_itself():
    base = MalwareDataset(
        entries=[_entry("a"), _entry("b")], reports=[_report_stub("r1")]
    )
    empty = MalwareDataset(entries=[], reports=[])
    assert merge_datasets(base, empty) is base


def test_untouched_base_entries_are_shared_by_identity():
    base = MalwareDataset(entries=[_entry("a"), _entry("b"), _entry("c")], reports=[])
    delta = MalwareDataset(
        entries=[
            DatasetEntry(
                package=PackageId("pypi", "b", "1.0"),
                claims=[SourceClaim("phylum", 4, True)],
            ),
            _entry("d"),
        ],
        reports=[],
    )
    merged = merge_datasets(base, delta)

    by_key = {e.package: e for e in merged.entries}
    # untouched base entries: the very same objects, no clone
    assert by_key[PackageId("pypi", "a", "1.0")] is base.entries[0]
    assert by_key[PackageId("pypi", "c", "1.0")] is base.entries[2]
    # new-only entries are shared from the delta side
    assert by_key[PackageId("pypi", "d", "1.0")] is delta.entries[1]
    # the overlapping key was cloned: base's object is NOT in the output
    touched = by_key[PackageId("pypi", "b", "1.0")]
    assert touched is not base.entries[1]
    assert touched is not delta.entries[0]
    # ... and the base input was not mutated by the fold
    assert [c.source for c in base.entries[1].claims] == ["snyk"]
    assert {c.source for c in touched.claims} == {"snyk", "phylum"}


def test_reports_are_shared_by_identity():
    base = MalwareDataset(entries=[], reports=[_report_stub("r1")])
    delta = MalwareDataset(entries=[], reports=[_report_stub("r1"), _report_stub("r2")])
    merged = merge_datasets(base, delta)
    by_id = {r.report_id: r for r in merged.reports}
    assert by_id["r1"] is base.reports[0]  # base wins the dedup
    assert by_id["r2"] is delta.reports[1]
