"""The four learned lessons, measured."""

from __future__ import annotations

import pytest

from repro.analysis.insights import Insight, compute_insights


def test_insights_all_hold_at_full_scale(paper):
    report = compute_insights(paper)
    assert len(report.insights) == 4
    for insight in report.insights:
        assert insight.holds, insight.render()
    assert report.all_hold


def test_insight_evidence_values(paper):
    report = compute_insights(paper)
    one, two, three, four = report.insights
    assert 0.5 < one.evidence["single_source_fraction"] <= 1.0
    assert two.evidence["packages_per_group"] > 5
    assert three.evidence["cn_percent"] > 90
    assert three.evidence["deg_p80_years"] > three.evidence["sg_p80_years"]
    assert four.evidence["cg_groups_spanning_codebases"] >= 1


def test_insights_render(paper):
    out = compute_insights(paper).render()
    assert "four learned lessons" in out
    assert out.count("HOLDS") >= 4
    assert "(1)" in out and "(4)" in out


def test_insight_render_failure_marker():
    insight = Insight(number=9, claim="x", evidence={"v": 1.0}, holds=False)
    assert "DOES NOT HOLD" in insight.render()
