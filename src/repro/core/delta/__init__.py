"""Incremental MALGRAPH: a delta engine from ecosystem events.

The batch pipeline rebuilds the whole graph from a frozen collection
snapshot; the ecosystem it models is event-driven. This package turns an
ordered batch of :class:`GraphEvent`s (package added / detected /
removed, report ingested) into a surgical update of an existing
:class:`~repro.core.malgraph.MalGraph`:

* :mod:`repro.core.delta.events` — the event model, JSONL codec, batch
  hashing, and the reference dataset-level application that defines the
  post-events collection;
* :mod:`repro.core.delta.unionfind` — epoch-rolled incremental connected
  components (additions union; removals trigger a scoped recompute of
  just the touched components);
* :mod:`repro.core.delta.similar` — the incremental similar-edge stage:
  per-SHA embedding reuse plus a global cosine-component cache over
  unique rounded vectors, so only genuinely new code is embedded or
  compared;
* :mod:`repro.core.delta.engine` — :func:`apply_delta`, the correctness
  anchor: its output is byte-identical after canonical serialisation to
  a cold ``MalGraph.build`` over the post-events collection;
* :mod:`repro.core.delta.stream` — tick-log streaming: the simulator's
  registry event logs become the ``touched`` hint that lets a window
  diff in O(delta) instead of O(corpus).
"""

from repro.core.delta.engine import DeltaReport, apply_delta
from repro.core.delta.events import (
    EventKind,
    GraphEvent,
    apply_events_to_dataset,
    event_batch_hash,
    events_to_jsonl,
    events_from_jsonl,
)
from repro.core.delta.stream import (
    RegistryTickStream,
    graph_events_between,
    registry_touched_keys,
)
from repro.core.delta.unionfind import EpochUnionFind

__all__ = [
    "DeltaReport",
    "EpochUnionFind",
    "EventKind",
    "GraphEvent",
    "RegistryTickStream",
    "apply_delta",
    "apply_events_to_dataset",
    "event_batch_hash",
    "events_from_jsonl",
    "events_to_jsonl",
    "graph_events_between",
    "registry_touched_keys",
]
