"""Columnar storage for ordered `GraphEvent` streams.

A scale-100 incremental run ships millions of events per tick window;
holding them as frozen dataclasses costs an object + a Python string
each. :class:`EventTable` stores the same stream as one uint8 payload
blob + offsets + a kind-code array: O(bytes) memory, mmap-friendly, and
hashable without hydrating a single event.

Hydration (:meth:`event_at` / :meth:`to_events`) reproduces the exact
`GraphEvent` objects — payloads are canonical JSON strings already, so
equality and :func:`event_batch_hash` parity are byte-level.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.core.delta.events import EventKind, GraphEvent

#: kind code -> EventKind, ordinal storage order (append-only contract:
#: new kinds go at the end so persisted tables stay readable)
KIND_CODES = (
    EventKind.PACKAGE_ADDED,
    EventKind.PACKAGE_DETECTED,
    EventKind.PACKAGE_REMOVED,
    EventKind.REPORT_INGESTED,
)
_CODE_OF = {kind: code for code, kind in enumerate(KIND_CODES)}


@dataclass
class EventTable:
    """An ordered event stream as flat arrays."""

    kinds: np.ndarray  # int8 codes into KIND_CODES
    payload_data: np.ndarray  # uint8 utf-8 blob
    payload_offsets: np.ndarray  # int64, len(kinds) + 1

    @classmethod
    def from_events(cls, events: Sequence[GraphEvent]) -> "EventTable":
        kinds = np.fromiter(
            (_CODE_OF[e.kind] for e in events), dtype=np.int8, count=len(events)
        )
        encoded = [e.payload_json.encode("utf-8") for e in events]
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        if encoded:
            np.cumsum([len(b) for b in encoded], out=offsets[1:])
        data = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
        return cls(kinds=kinds, payload_data=data, payload_offsets=offsets)

    def __len__(self) -> int:
        return len(self.kinds)

    def event_at(self, i: int) -> GraphEvent:
        start = int(self.payload_offsets[i])
        end = int(self.payload_offsets[i + 1])
        payload = bytes(self.payload_data[start:end]).decode("utf-8")
        return GraphEvent(kind=KIND_CODES[int(self.kinds[i])], payload_json=payload)

    def __iter__(self) -> Iterator[GraphEvent]:
        for i in range(len(self)):
            yield self.event_at(i)

    def to_events(self) -> List[GraphEvent]:
        return list(self)

    def kind_counts(self) -> Dict[EventKind, int]:
        counts = np.bincount(self.kinds, minlength=len(KIND_CODES))
        return {kind: int(counts[code]) for code, kind in enumerate(KIND_CODES)}

    def batch_hash(self) -> str:
        """Equals ``event_batch_hash(self.to_events())`` without
        hydrating: the digest walks the stored bytes directly."""
        digest = hashlib.sha256()
        blob = self.payload_data
        for i in range(len(self)):
            digest.update(KIND_CODES[int(self.kinds[i])].value.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(blob[int(self.payload_offsets[i]) : int(self.payload_offsets[i + 1])].tobytes())
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- persistence -------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        return {
            "kinds": self.kinds,
            "payload_data": self.payload_data,
            "payload_offsets": self.payload_offsets,
        }

    @classmethod
    def from_array_map(cls, arrays: Dict[str, np.ndarray]) -> "EventTable":
        return cls(
            kinds=arrays["kinds"],
            payload_data=arrays["payload_data"],
            payload_offsets=arrays["payload_offsets"],
        )
