"""Table IV overlap matrix and Fig. 4 DG-size CDF."""

from __future__ import annotations

import pytest

from repro.analysis.overlap import compute_dg_size_cdf, compute_overlap_matrix
from repro.intel.sources import Sector

from tests.core.helpers import dataset, entry


def _multi_source_dataset():
    return dataset(
        [
            entry("a", sources=("snyk", "tianwen")),
            entry("b", code="B = 1\n", sources=("snyk", "tianwen", "phylum")),
            entry("c", code="C = 1\n", sources=("maloss",)),
            entry("d", code="D = 1\n", ecosystem="npm", sources=("phylum",)),
        ]
    )


def test_overlap_counts_pairwise_claims():
    matrix = compute_overlap_matrix(_multi_source_dataset())
    assert matrix.overlap("snyk", "tianwen") == 2
    assert matrix.overlap("tianwen", "snyk") == 2  # symmetric
    assert matrix.overlap("snyk", "phylum") == 1
    assert matrix.overlap("maloss", "snyk") == 0


def test_overlap_diagonal_is_source_total():
    matrix = compute_overlap_matrix(_multi_source_dataset())
    assert matrix.overlap("snyk", "snyk") == 2
    assert matrix.overlap("phylum", "phylum") == 2
    assert matrix.overlap("datadog", "datadog") == 0


def test_overlap_render_contains_short_names():
    out = compute_overlap_matrix(_multi_source_dataset()).render()
    assert "Table IV" in out
    assert "S.i" in out and "T." in out


def test_sector_block_means_keys():
    blocks = compute_overlap_matrix(_multi_source_dataset()).sector_block_means()
    assert (Sector.ACADEMIA, Sector.ACADEMIA) in blocks
    assert (Sector.INDUSTRY, Sector.INDUSTRY) in blocks
    assert (Sector.ACADEMIA, Sector.INDUSTRY) in blocks


def test_dg_cdf_fractions():
    ds = dataset(
        [
            entry("a", sources=("snyk",)),
            entry("b", code="B = 1\n", sources=("snyk",)),
            entry("c", code="C = 1\n", sources=("snyk", "tianwen")),
            entry(
                "d",
                code="D = 1\n",
                sources=("snyk", "tianwen", "phylum", "datadog"),
            ),
        ]
    )
    cdf = compute_dg_size_cdf(ds)
    assert cdf.single_source_fraction == pytest.approx(0.5)
    assert cdf.more_than_three_fraction == pytest.approx(0.25)
    pypi_points = cdf.per_ecosystem["pypi"]
    assert pypi_points[0].value == 1.0
    assert pypi_points[-1].fraction == pytest.approx(1.0)


def test_dg_cdf_only_major_ecosystems():
    ds = dataset([entry("m", ecosystem="maven")])
    cdf = compute_dg_size_cdf(ds)
    assert set(cdf.per_ecosystem) == {"npm", "pypi", "rubygems"}
    assert cdf.single_source_fraction == 0.0  # maven is out of scope


# -- world shape (RQ1) ------------------------------------------------------------

def test_world_overlap_shape(small_dataset):
    """Academia block overlaps more than industry block (Table IV)."""
    matrix = compute_overlap_matrix(small_dataset)
    blocks = matrix.sector_block_means()
    academia = blocks[(Sector.ACADEMIA, Sector.ACADEMIA)]
    industry = blocks[(Sector.INDUSTRY, Sector.INDUSTRY)]
    assert academia > industry


def test_world_most_packages_single_source(small_dataset):
    """Fig. 4: ~80% of packages are reported by only one source."""
    cdf = compute_dg_size_cdf(small_dataset)
    assert cdf.single_source_fraction > 0.55
    assert cdf.more_than_three_fraction < 0.15
