"""Fig. 3 — one example of an OSS malicious package group.

Paper shape: a single cluster whose packages are linked by several of
the four relationship kinds at once (Fig. 3 draws duplicated, similar
and co-existing edges in one group). The bench picks the richest small
similarity group and asserts the excerpt mixes relationship kinds.
"""

from __future__ import annotations

import pytest

from repro.core.graph import EdgeType


def test_fig3_example_subgraph(benchmark, artifacts, show):
    excerpt = benchmark(artifacts.fig3_example_subgraph)
    assert excerpt is not None, "the graph contains a Fig. 3-style group"
    show("Fig. 3: example malicious package group", excerpt.render())

    assert 3 <= len(excerpt.nodes) <= 8
    assert excerpt.edges
    assert EdgeType.SIMILAR in excerpt.edge_kinds, (
        "the excerpt is a similarity cluster"
    )
    assert len(excerpt.edge_kinds) >= 2, (
        "multiple relationship kinds co-occur, as in the paper's figure"
    )
    dot = excerpt.to_dot()
    assert dot.startswith("graph fig3 {")
    assert dot.count("--") == len(excerpt.edges)
