"""Fig. 8 — an example multi-release campaign timeline in NPM.

Regenerates the per-day release schedule of one co-existing campaign
(the paper's example: 15 packages over ten days in August 2023). Paper
shape: several similar packages released in bursts over a short window.
"""

from __future__ import annotations


def test_fig8_campaign(benchmark, artifacts, show):
    timeline = benchmark(artifacts.fig8_campaign)
    assert timeline is not None, "an example NPM campaign must exist"
    show("Fig. 8: example campaign timeline (NPM)", timeline.render())

    events = timeline.events()
    assert len(events) >= 6, "the example campaign has several releases"
    dates = [date for date, _ in events]
    assert dates == sorted(dates), "events are ordered by release date"
    span = max(timeline.group.release_days()) - min(timeline.group.release_days())
    assert span <= 365, "the example campaign is a short burst"
    names = {name for _, name in events}
    assert len(names) > 1, "release attempts use different package names"
