"""Mirror sync semantics — the mechanism behind Fig. 5's two
unavailability causes."""

import pytest

from repro.ecosystem.mirror import (
    DEFAULT_MIRROR_PLANS,
    MirrorNetwork,
    MirrorRegistry,
    build_default_mirrors,
)
from repro.ecosystem.package import make_artifact
from repro.ecosystem.registry import Registry
from repro.errors import ConfigError


def art(name, version="1.0.0", ecosystem="npm"):
    return make_artifact(ecosystem, name, version, {"index.py": "x = 1\n"})


@pytest.fixture
def root():
    return Registry("npm")


def lagging(root, interval=3, start=0, phase=0):
    return MirrorRegistry(
        name="m", upstream=root, sync_interval=interval,
        start_day=start, phase=phase,
    )


class TestMirrorSync:
    def test_invalid_interval_rejected(self, root):
        with pytest.raises(ConfigError):
            MirrorRegistry(name="m", upstream=root, sync_interval=0)

    def test_due_respects_interval_and_phase(self, root):
        mirror = lagging(root, interval=3, phase=1)
        assert [d for d in range(10) if mirror.due(d)] == [1, 4, 7]

    def test_not_due_before_start_day(self, root):
        mirror = lagging(root, interval=2, start=6)
        assert [d for d in range(10) if mirror.due(d)] == [6, 8]

    def test_sync_copies_live_set(self, root):
        root.publish(art("a"), day=0)
        mirror = lagging(root)
        mirror.sync(day=0)
        assert mirror.lookup("a", "1.0.0") is not None
        assert mirror.last_sync_day == 0
        assert len(mirror) == 1

    def test_lagging_mirror_serves_removed_package_until_resync(self, root):
        """The time-gap window of Section II-C."""
        root.publish(art("mal"), day=0)
        mirror = lagging(root, interval=3)
        mirror.sync(day=0)
        root.remove("mal", "1.0.0", day=1)
        # Before the next sync the removed package is still recoverable.
        assert mirror.lookup("mal", "1.0.0") is not None
        mirror.sync(day=3)
        assert mirror.lookup("mal", "1.0.0") is None

    def test_archival_mirror_never_forgets(self, root):
        root.publish(art("mal"), day=0)
        mirror = MirrorRegistry(
            name="arch", upstream=root, sync_interval=1, archival=True
        )
        mirror.sync(day=0)
        root.remove("mal", "1.0.0", day=1)
        mirror.sync(day=2)
        assert mirror.lookup("mal", "1.0.0") is not None

    def test_package_persisting_less_than_gap_is_lost(self, root):
        """Fig. 5 cause 2: persisted too briefly for any sync to catch."""
        mirror = lagging(root, interval=7)
        mirror.sync(day=0)
        root.publish(art("flash"), day=1)
        root.remove("flash", "1.0.0", day=2)   # gone before day-7 sync
        mirror.sync(day=7)
        assert mirror.lookup("flash", "1.0.0") is None

    def test_maybe_sync_only_fires_when_due(self, root):
        mirror = lagging(root, interval=3)
        assert mirror.maybe_sync(0)
        assert not mirror.maybe_sync(1)
        assert mirror.maybe_sync(3)


class TestMirrorNetwork:
    def test_search_finds_first_matching_mirror(self, root):
        root.publish(art("mal"), day=0)
        m1 = lagging(root, interval=5)
        m2 = MirrorRegistry(name="m2", upstream=root, sync_interval=5)
        network = MirrorNetwork([m1, m2])
        network.tick(0)
        root.remove("mal", "1.0.0", day=1)
        hit = network.search("npm", "mal", "1.0.0")
        assert hit is not None
        mirror_name, artifact = hit
        assert mirror_name == "m"
        assert artifact.name == "mal"

    def test_search_scopes_to_ecosystem(self, root):
        pypi_root = Registry("pypi")
        pypi_root.publish(art("mal", ecosystem="pypi"), day=0)
        pypi_mirror = MirrorRegistry(
            name="p", upstream=pypi_root, sync_interval=1
        )
        network = MirrorNetwork([pypi_mirror])
        network.tick(0)
        assert network.search("npm", "mal", "1.0.0") is None
        assert network.search("pypi", "mal", "1.0.0") is not None

    def test_tick_counts_due_syncs(self, root):
        network = MirrorNetwork(
            [lagging(root, interval=2), lagging(root, interval=3)]
        )
        assert network.tick(0) == 2
        assert network.tick(2) == 1
        assert network.tick(5) == 0
        assert len(network) == 2

    def test_for_ecosystem_filters(self, root):
        pypi_root = Registry("pypi")
        network = MirrorNetwork([
            lagging(root),
            MirrorRegistry(name="p", upstream=pypi_root, sync_interval=1),
        ])
        assert [m.ecosystem for m in network.for_ecosystem("npm")] == ["npm"]


class TestDefaultFleet:
    def test_fleet_shape_matches_section_2c(self):
        """5 NPM + 12 PyPI + 6 RubyGems mirrors."""
        assert len(DEFAULT_MIRROR_PLANS["npm"]) == 5
        assert len(DEFAULT_MIRROR_PLANS["pypi"]) == 12
        assert len(DEFAULT_MIRROR_PLANS["rubygems"]) == 6

    def test_build_default_mirrors_skips_missing_registries(self):
        network = build_default_mirrors({"npm": Registry("npm")})
        assert len(network) == 5
        assert all(m.ecosystem == "npm" for m in network)

    def test_full_fleet(self):
        registries = {
            eco: Registry(eco) for eco in ("npm", "pypi", "rubygems")
        }
        network = build_default_mirrors(registries)
        assert len(network) == 23
