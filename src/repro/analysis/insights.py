"""The paper's four learned lessons, computed.

The introduction's *Findings* paragraph states four lessons. Each is a
quantitative claim this module re-derives from the built artifacts, so
"the lessons hold" becomes a checkable statement rather than prose:

1. **ad-hoc research** — little cross-source overlap, so collecting from
   every source is imperative;
2. **slow diversity** — despite thousands of packages, few similarity
   groups; known behaviours dominate;
3. **distinct life cycle** — {changing→release→detection→removal}
   repeats, with name changes the dominant operation and dependency
   attacks rare but longest-lived;
4. **reports carry the context** — co-existing groups (from reports) are
   the only edge type that groups packages *across* code bases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

from repro.analysis.campaigns import compute_active_periods
from repro.analysis.diversity import compute_diversity
from repro.analysis.evolution import compute_operation_distribution
from repro.analysis.overlap import compute_dg_size_cdf
from repro.core.groups import GroupKind
from repro.malware.operations import ChangeOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.paper import PaperArtifacts


@dataclass
class Insight:
    """One lesson: the paper's claim plus our measured evidence."""

    number: int
    claim: str
    evidence: Dict[str, float]
    holds: bool

    def render(self) -> str:
        values = ", ".join(f"{k} = {v:,.2f}" for k, v in self.evidence.items())
        status = "HOLDS" if self.holds else "DOES NOT HOLD"
        return f"({self.number}) {self.claim}\n    [{status}] {values}"


@dataclass
class InsightReport:
    """All four lessons."""

    insights: List[Insight]

    @property
    def all_hold(self) -> bool:
        return all(insight.holds for insight in self.insights)

    def render(self) -> str:
        header = "The paper's four learned lessons, measured on this world:"
        return "\n\n".join([header] + [i.render() for i in self.insights])


def compute_insights(artifacts: "PaperArtifacts") -> InsightReport:
    """Derive the four lessons from a warmed artifact bundle."""
    insights: List[Insight] = []

    # 1 — ad-hoc research: most packages are single-source.
    cdf = compute_dg_size_cdf(artifacts.dataset)
    single = cdf.single_source_fraction
    insights.append(
        Insight(
            number=1,
            claim=(
                "Collecting from every source is imperative: cross-source "
                "overlap is low"
            ),
            evidence={
                "single_source_fraction": single,
                "more_than_three_sources": cdf.more_than_three_fraction,
            },
            holds=single > 0.5 and cdf.more_than_three_fraction < 0.2,
        )
    )

    # 2 — diversity is low: packages per similarity group is high.
    diversity = compute_diversity(artifacts.malgraph)
    sg_groups = sum(
        diversity.cell(e, GroupKind.SG).count for e in diversity.ecosystems
    )
    grouped_packages = sum(
        diversity.cell(e, GroupKind.SG).count
        * diversity.cell(e, GroupKind.SG).average_size
        for e in diversity.ecosystems
    )
    packages_per_group = grouped_packages / sg_groups if sg_groups else 0.0
    insights.append(
        Insight(
            number=2,
            claim=(
                "Diversity is low: many packages share few code bases, so "
                "known behaviours dominate"
            ),
            evidence={
                "similarity_groups": float(sg_groups),
                "packages_per_group": packages_per_group,
            },
            holds=sg_groups > 0 and packages_per_group > 5.0,
        )
    )

    # 3 — distinct life cycle: CN dominates; DeG rare but longest-lived.
    ops = compute_operation_distribution(artifacts.malgraph)
    periods = compute_active_periods(artifacts.malgraph)
    cn = ops.percentages.get(ChangeOp.CN, 0.0)
    deg_p80 = periods.p80_years.get(GroupKind.DEG, 0.0)
    sg_p80 = periods.p80_years.get(GroupKind.SG, 0.0)
    deg_count = len(artifacts.malgraph.groups(GroupKind.DEG))
    sg_count = len(artifacts.malgraph.groups(GroupKind.SG))
    insights.append(
        Insight(
            number=3,
            claim=(
                "The life cycle repeats with name changes; dependency "
                "attacks are rare but longest-lived"
            ),
            evidence={
                "cn_percent": cn,
                "deg_groups": float(deg_count),
                "sg_groups": float(sg_count),
                "deg_p80_years": deg_p80,
                "sg_p80_years": sg_p80,
            },
            holds=cn > 90.0 and deg_count < sg_count and deg_p80 > sg_p80,
        )
    )

    # 4 — reports carry the context: CG groups span code bases.
    cross_code_cgs = 0
    cgs = artifacts.malgraph.groups(GroupKind.CG)
    for group in cgs:
        signatures = {m.sha256() for m in group.members if m.available}
        if len(signatures) > 1:
            cross_code_cgs += 1
    insights.append(
        Insight(
            number=4,
            claim=(
                "Security reports reveal campaign context packages alone "
                "lack: co-existing groups link across code bases"
            ),
            evidence={
                "cg_groups": float(len(cgs)),
                "cg_groups_spanning_codebases": float(cross_code_cgs),
            },
            holds=len(cgs) > 0 and cross_code_cgs > 0,
        )
    )
    return InsightReport(insights=insights)
