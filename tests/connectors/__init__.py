"""Connector-framework tests."""
