"""Latency histograms and per-endpoint request accounting."""

from __future__ import annotations

import threading

from repro.service.metrics import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
    ServiceMetrics,
)


def test_histogram_places_observations_in_buckets():
    hist = LatencyHistogram()
    hist.observe(0.00005)  # below the first bound
    hist.observe(0.003)
    hist.observe(99.0)  # beyond the last bound -> overflow bucket
    assert hist.count == 3
    assert sum(hist.counts) == 3
    assert hist.counts[-1] == 1
    assert hist.max_seconds == 99.0


def test_histogram_percentiles_are_bucket_upper_bounds():
    hist = LatencyHistogram()
    for _ in range(99):
        hist.observe(0.0009)  # lands in the bucket bounded by 1ms
    hist.observe(0.9)  # one slow outlier (bounded by 1s)
    assert hist.percentile(0.50) == 0.001
    assert hist.percentile(0.95) == 0.001
    assert hist.percentile(0.99) == 0.001
    assert hist.percentile(1.0) == 0.9  # capped at the observed max
    row = hist.to_dict()
    assert row["count"] == 100
    assert row["p50_ms"] == 1.0
    assert row["p99_ms"] == 1.0


def test_histogram_empty_percentile_is_none():
    hist = LatencyHistogram()
    assert hist.percentile(0.5) is None
    assert hist.to_dict()["p50_ms"] is None


def test_histogram_clamps_negative_observations():
    hist = LatencyHistogram()
    hist.observe(-1.0)
    assert hist.count == 1
    assert hist.sum_seconds == 0.0
    assert hist.counts[0] == 1


def test_bounds_are_strictly_increasing():
    assert list(LATENCY_BUCKET_BOUNDS) == sorted(set(LATENCY_BUCKET_BOUNDS))


def test_metrics_accumulate_per_endpoint():
    metrics = ServiceMetrics()
    metrics.observe("/v1/enrich", 200, 0.002)
    metrics.observe("/v1/enrich", 400, 0.0001)
    metrics.observe("/v1/enrich/batch", 200, 0.02)
    snap = metrics.snapshot()
    assert snap["total_requests"] == 3
    enrich = snap["endpoints"]["/v1/enrich"]
    assert enrich["requests"] == 2
    assert enrich["status"] == {"200": 1, "400": 1}
    assert enrich["latency"]["count"] == 2
    assert snap["endpoints"]["/v1/enrich/batch"]["requests"] == 1


def test_metrics_render_mentions_every_endpoint():
    metrics = ServiceMetrics()
    metrics.observe("/v1/enrich", 200, 0.001)
    metrics.observe("/v1/stats", 200, 0.0005)
    text = metrics.render()
    assert "requests served: 2" in text
    assert "/v1/enrich" in text and "/v1/stats" in text
    assert "p95=" in text


def test_metrics_threaded_observations_are_exact():
    metrics = ServiceMetrics()
    threads = 8
    per_thread = 250

    def hammer(worker: int) -> None:
        for i in range(per_thread):
            metrics.observe("/v1/enrich", 200 if i % 2 else 400, 0.001 * worker)

    pool = [threading.Thread(target=hammer, args=(w,)) for w in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    snap = metrics.snapshot()
    row = snap["endpoints"]["/v1/enrich"]
    assert snap["total_requests"] == threads * per_thread
    assert row["requests"] == threads * per_thread
    assert row["latency"]["count"] == threads * per_thread
    assert sum(row["status"].values()) == threads * per_thread
