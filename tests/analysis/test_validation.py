"""Ground-truth validation scores: purity, B-cubed, ARI."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.validation import (
    adjusted_rand_index,
    bcubed,
    pairwise_counts,
    validate_groups,
)
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig

from tests.core.helpers import dataset, entry


# -- pair counting ------------------------------------------------------------

def test_pairwise_counts_manual():
    predicted = [0, 0, 1, 1]
    truth = ["x", "x", "x", "y"]
    a, b, c, d = pairwise_counts(predicted, truth)
    assert a == 1  # (0,1)
    assert b == 1  # (2,3)
    assert c == 2  # (0,2), (1,2)
    assert d == 2  # (0,3), (1,3)
    assert a + b + c + d == 6


# -- ARI -----------------------------------------------------------------------

def test_ari_perfect_agreement():
    assert adjusted_rand_index([0, 0, 1, 1], ["a", "a", "b", "b"]) == pytest.approx(1.0)


def test_ari_label_permutation_invariant():
    assert adjusted_rand_index([1, 1, 0, 0], ["a", "a", "b", "b"]) == pytest.approx(1.0)


def test_ari_single_cluster_each():
    assert adjusted_rand_index([0, 0, 0], ["a", "a", "a"]) == pytest.approx(1.0)


def test_ari_total_disagreement_is_nonpositive_or_zeroish():
    value = adjusted_rand_index([0, 1, 0, 1], ["a", "a", "b", "b"])
    assert value <= 0.1


def test_ari_tiny_inputs():
    assert adjusted_rand_index([], []) == 1.0
    assert adjusted_rand_index([0], ["a"]) == 1.0


labelings = st.lists(st.integers(0, 3), min_size=2, max_size=30)


@given(labelings)
@settings(max_examples=60, deadline=None)
def test_ari_self_agreement(labels):
    truth = [str(l) for l in labels]
    assert adjusted_rand_index(labels, truth) == pytest.approx(1.0)


@given(labelings, labelings)
@settings(max_examples=60, deadline=None)
def test_ari_bounded(a, b):
    n = min(len(a), len(b))
    value = adjusted_rand_index(a[:n], [str(x) for x in b[:n]])
    assert -1.0 <= value <= 1.0 + 1e-9


# -- B-cubed ------------------------------------------------------------------

def test_bcubed_perfect():
    p, r = bcubed([0, 0, 1], ["a", "a", "b"])
    assert p == pytest.approx(1.0)
    assert r == pytest.approx(1.0)


def test_bcubed_overmerged_hurts_precision_only():
    p, r = bcubed([0, 0, 0, 0], ["a", "a", "b", "b"])
    assert r == pytest.approx(1.0)
    assert p == pytest.approx(0.5)


def test_bcubed_oversplit_hurts_recall_only():
    p, r = bcubed([0, 1, 2, 3], ["a", "a", "b", "b"])
    assert p == pytest.approx(1.0)
    assert r == pytest.approx(0.5)


def test_bcubed_empty():
    assert bcubed([], []) == (0.0, 0.0)


@given(labelings)
@settings(max_examples=60, deadline=None)
def test_bcubed_bounded(labels):
    p, r = bcubed(labels, [str(l % 2) for l in labels])
    assert 0.0 <= p <= 1.0
    assert 0.0 <= r <= 1.0


# -- validate_groups -----------------------------------------------------------

def _labelled_malgraph():
    code_a = "def payload_a():\n    return 'a'\n"
    code_b = "def payload_b():\n    return 'bbb'\n"
    entries = [
        entry("a1", code=code_a, campaign_id="alpha", release_day=1),
        entry("a2", code=code_a, campaign_id="alpha", release_day=2),
        entry("a3", code=code_a, campaign_id="alpha", release_day=3),
        entry("b1", code=code_b, campaign_id="beta", release_day=4),
        entry("b2", code=code_b, campaign_id="beta", release_day=5),
    ]
    return MalGraph.build(dataset(entries), SimilarityConfig(seed=0, max_k=2))


def test_validate_groups_perfect_recovery():
    report = validate_groups(_labelled_malgraph(), kinds=(GroupKind.SG,))
    score = report.score(GroupKind.SG)
    assert score.groups == 2
    assert score.covered_entries == 5
    assert score.mean_purity == pytest.approx(1.0)
    assert score.bcubed_precision == pytest.approx(1.0)
    assert score.bcubed_recall == pytest.approx(1.0)
    assert score.adjusted_rand == pytest.approx(1.0)
    assert score.bcubed_f1 == pytest.approx(1.0)


def test_validate_groups_ungrouped_entries_hit_recall():
    report = validate_groups(_labelled_malgraph(), kinds=(GroupKind.DEG,))
    score = report.score(GroupKind.DEG)
    assert score.groups == 0
    assert score.covered_entries == 0
    assert score.bcubed_precision == pytest.approx(1.0)  # singletons are pure
    assert score.bcubed_recall < 0.7


def test_validation_report_render():
    out = validate_groups(_labelled_malgraph()).render()
    assert "SG" in out and "ARI" in out


def test_world_sg_validation_is_strong(paper):
    """At full scale the similarity groups recover campaigns with high
    precision — the automated version of the paper's manual FP pass."""
    report = validate_groups(paper.malgraph, kinds=(GroupKind.SG,))
    score = report.score(GroupKind.SG)
    assert score.mean_purity > 0.9
    assert score.bcubed_precision > 0.9
    # recall/ARI are bounded by coverage: SG can only link the ~40% of
    # entries that have artifacts, so dataset-wide ARI is modest but must
    # beat chance clearly
    assert score.adjusted_rand > 0.1
    assert score.covered_entries < score.labelled_entries
