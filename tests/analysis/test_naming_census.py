"""Naming-tactic census."""

from __future__ import annotations

import pytest

from repro.analysis.naming import compute_naming_census
from repro.detection.typosquat import TyposquatIndex

from tests.core.helpers import dataset, entry


def _index():
    return TyposquatIndex(popular={"pypi": ["requests", "numpy"]})


def test_census_classifies_tactics():
    ds = dataset(
        [
            entry("reqests"),  # typo of requests
            entry("requests-utils", code="B = 1\n"),  # combo
            entry("totally-original", code="C = 1\n"),  # unrelated
        ]
    )
    census = compute_naming_census(ds, index=_index())
    row = census.rows[0]
    assert row.ecosystem == "pypi"
    assert row.packages == 3
    assert row.typo == 1
    assert row.combo == 1
    assert row.unrelated == 1
    assert row.imitation_share == pytest.approx(100 * 2 / 3)


def test_census_counts_unique_names_once():
    ds = dataset(
        [
            entry("reqests", version="1.0"),
            entry("reqests", version="2.0", code="V2 = 1\n"),
        ]
    )
    census = compute_naming_census(ds, index=_index())
    assert census.rows[0].packages == 1


def test_census_top_targets():
    ds = dataset(
        [
            entry("reqests"),
            entry("rrequests", code="B = 1\n"),
            entry("numpy1", code="C = 1\n"),
        ]
    )
    census = compute_naming_census(ds, index=_index(), top=2)
    assert census.top_targets[0] == ("pypi", "requests", 2)
    assert census.top_targets[1] == ("pypi", "numpy", 1)


def test_census_empty_dataset():
    census = compute_naming_census(dataset([]))
    assert census.rows == []
    assert census.total_packages == 0
    assert census.overall_imitation_share == 0.0


def test_census_render():
    out = compute_naming_census(
        dataset([entry("reqests")]), index=_index()
    ).render()
    assert "Naming-tactic census" in out
    assert "Most-imitated" in out


def test_world_imitation_share(small_dataset):
    census = compute_naming_census(small_dataset)
    assert 20.0 < census.overall_imitation_share < 90.0
