"""Smoke tests: every example script runs to completion.

Examples are the repository's front door; each must execute end-to-end
on a stock checkout. They run in-process (runpy) so the interpreter and
imports are shared; output is captured by pytest.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_inventory():
    """The README promises at least the documented examples."""
    assert len(EXAMPLES) >= 7
    for required in (
        "quickstart.py",
        "campaign_forensics.py",
        "dataset_audit.py",
        "detector_triage.py",
        "graph_queries.py",
        "publish_site.py",
        "defense_whatif.py",
    ):
        assert required in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [example, str(tmp_path / "out")])
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"
