"""Canonical configuration fingerprints for pipeline artifacts.

Every cached artifact is addressed by ``(stage, fingerprint)`` where the
fingerprint hashes *all* of the configuration the stage's output depends
on — the full :class:`~repro.world.WorldConfig` (seed, scale, horizon,
detection_latency_scale) and, for stages downstream of the similarity
pipeline, the full :class:`~repro.core.similarity.SimilarityConfig`.
Hashing the complete config closes the aliasing bug the old
``lru_cache`` keys had, where two configurations differing only in
horizon or similarity knobs collapsed onto one cache slot.

The payload is canonical JSON (sorted keys, no whitespace) so the digest
is stable across processes and Python versions; :data:`SCHEMA_VERSION`
is folded into every digest and stamped into on-disk metadata, so a
format change invalidates old cache entries instead of misreading them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Optional

from repro.core.similarity import SimilarityConfig
from repro.world import WorldConfig

#: Bump when the serialised artifact formats change; old disk entries are
#: then treated as misses and rebuilt. v2: CollectionStats gained
#: pages_unfetchable / recovery.skipped / degraded / degradation.
#: v3: the embedder's feature hashing moved from MD5 to blake2b —
#: every vector (and the similar-edge structure built on them) changed,
#: so v2 malgraph artifacts must not be reused.
#: v4: the columnar corpus tier landed (DESIGN.md §12) — collection
#: artifacts gained a sibling ``columnar`` stage addressed off the same
#: configuration, and on-disk layouts now coexist; bumping keeps v3
#: stores from aliasing the new stage graph.
SCHEMA_VERSION = 4

#: Hex digits kept from the SHA256 digest (64 bits; collisions across a
#: handful of configurations are not a realistic concern).
FINGERPRINT_LENGTH = 16


def config_payload(
    config: WorldConfig,
    similarity: Optional[SimilarityConfig] = None,
    fault_plan=None,
    max_retries: Optional[int] = None,
) -> dict:
    """The exact dict that gets hashed (and stamped into disk metadata).

    ``fault_plan`` (a :class:`repro.reliability.FaultPlan`) and the retry
    budget are folded in only when chaos is active, so every fault-free
    fingerprint — the overwhelmingly common case — is unchanged by their
    existence.
    """
    payload = {"world": asdict(config)}
    if similarity is not None:
        similarity_knobs = asdict(similarity)
        # jobs is an execution knob (worker-process count): the embedding
        # matrix is byte-identical for any value, so it must not split
        # the cache address space.
        similarity_knobs.pop("jobs", None)
        payload["similarity"] = similarity_knobs
    if fault_plan is not None:
        payload["faults"] = fault_plan.to_dict()
        if max_retries is not None:
            payload["max_retries"] = max_retries
    return payload


def delta_fingerprint(base_fingerprint: str, batch_hash: str) -> str:
    """Content address for a delta-evolved MALGRAPH.

    A delta artifact is fully determined by the artifact it evolved from
    and the event batch applied to it, so the address chains: base
    fingerprint (itself either a cold malgraph fingerprint or a previous
    delta fingerprint) plus the batch hash
    (:func:`repro.core.delta.events.event_batch_hash`).
    """
    body = {
        "schema": SCHEMA_VERSION,
        "stage": "malgraph_delta",
        "base": base_fingerprint,
        "batch": batch_hash,
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_LENGTH]


def fingerprint(
    stage: str,
    config: WorldConfig,
    similarity: Optional[SimilarityConfig] = None,
    fault_plan=None,
    max_retries: Optional[int] = None,
) -> str:
    """Deterministic content address for one stage's artifact."""
    body = {
        "schema": SCHEMA_VERSION,
        "stage": stage,
        "config": config_payload(config, similarity, fault_plan, max_retries),
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_LENGTH]
