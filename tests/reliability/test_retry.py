"""retry_call: backoff, deadlines, and the transient/permanent split."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    CrawlError,
    PackageNotFoundError,
    TransientError,
)
from repro.reliability import RetryClock, RetryPolicy, retry_call


class Flaky:
    """Fails ``failures`` times with ``error``, then returns ``value``."""

    def __init__(self, failures: int, error=TransientError, value="ok"):
        self.failures = failures
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"failure #{self.calls}")
        return self.value


def test_success_needs_no_retry():
    fn = Flaky(0)
    assert retry_call(fn) == "ok"
    assert fn.calls == 1


def test_transient_failures_are_retried():
    fn = Flaky(3)
    clock = RetryClock()
    assert retry_call(fn, clock=clock) == "ok"
    assert fn.calls == 4
    assert clock.slept > 0


def test_budget_exhaustion_reraises_the_last_error():
    fn = Flaky(10)
    with pytest.raises(TransientError):
        retry_call(fn, policy=RetryPolicy(max_retries=2))
    assert fn.calls == 3  # initial + 2 retries


def test_permanent_error_is_never_retried():
    fn = Flaky(1, error=PackageNotFoundError)
    with pytest.raises(PackageNotFoundError):
        retry_call(fn)
    assert fn.calls == 1


def test_permanent_wins_even_as_crawl_sibling():
    """A CrawlError (transient) retries; PackageNotFoundError does not —
    the split is by hierarchy, not by module of origin."""
    transient = Flaky(1, error=CrawlError)
    assert retry_call(transient) == "ok"
    assert transient.calls == 2


def test_non_repro_exceptions_propagate_untouched():
    fn = Flaky(1, error=ValueError)
    with pytest.raises(ValueError):
        retry_call(fn)
    assert fn.calls == 1


def test_deadline_bounds_the_operation():
    """A tight deadline gives up before the retry budget is spent."""
    fn = Flaky(10)
    clock = RetryClock()
    with pytest.raises(TransientError):
        retry_call(
            fn,
            policy=RetryPolicy(max_retries=50, base_delay=10.0, deadline=25.0),
            clock=clock,
        )
    assert fn.calls < 10
    assert clock.now <= 25.0


def test_backoff_grows_and_caps():
    policy = RetryPolicy(
        base_delay=1.0, multiplier=2.0, max_delay=4.0, jitter=0.0
    )
    rng = random.Random(0)
    delays = [policy.backoff(retry, rng) for retry in (1, 2, 3, 4)]
    assert delays == [1.0, 2.0, 4.0, 4.0]


def test_jitter_is_deterministic_in_the_rng():
    policy = RetryPolicy(jitter=0.5)
    one = [policy.backoff(i, random.Random(9)) for i in (1, 2, 3)]
    two = [policy.backoff(i, random.Random(9)) for i in (1, 2, 3)]
    assert one == two


def test_on_error_sees_every_failure():
    fn = Flaky(2)
    seen = []
    retry_call(fn, on_error=seen.append)
    assert len(seen) == 2


def test_retry_clock_rejects_negative_sleep():
    with pytest.raises(ValueError):
        RetryClock().sleep(-1.0)
