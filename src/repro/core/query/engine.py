"""``QueryEngine`` — the one entry point every surface shares.

The CLI (``repro query``), the enrichment server (``POST /v1/query``)
and Python callers all run queries through this class, so one parse /
plan / execute path produces byte-identical rows everywhere. Built over
a :class:`~repro.core.malgraph.MalGraph` the engine sees the enriched
indexes (directed dependencies, ground-truth attributes, group ids);
:meth:`QueryEngine.for_graph` serves the legacy graph-only surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.graph import EdgeType, PropertyGraph
from repro.core.query import executor as _executor
from repro.core.query.ast import QueryAst, QueryError
from repro.core.query.indexes import GraphIndexes, graph_indexes
from repro.core.query.parser import parse


@dataclass(frozen=True)
class QueryResult:
    """Columns + rows + execution stats for one query."""

    columns: Tuple[str, ...]
    rows: Tuple[Tuple, ...] = ()
    elapsed_ms: float = 0.0
    plan: str = ""

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload (the ``/v1/query`` response body)."""
        return {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "row_count": self.row_count,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "plan": self.plan,
        }

    def render_table(self, title: str = "") -> str:
        from repro.analysis.render import render_table

        return render_table(
            list(self.columns),
            [[str(cell) for cell in row] for row in self.rows],
            title=title,
        )


class QueryEngine:
    """Parse, plan and execute MALGRAPH queries.

    ``naive=True`` on :meth:`run` bypasses index seeding (full-scan
    baseline) — row sets are guaranteed identical, which the benchmark's
    correctness gate asserts.
    """

    def __init__(self, malgraph=None, graph: Optional[PropertyGraph] = None):
        if malgraph is None and graph is None:
            raise QueryError("QueryEngine needs a MalGraph or a PropertyGraph")
        self.malgraph = malgraph
        self.graph = graph if graph is not None else malgraph.graph

    @classmethod
    def for_graph(cls, graph: PropertyGraph) -> "QueryEngine":
        """An engine over a bare graph (no dataset enrichment)."""
        return cls(malgraph=None, graph=graph)

    def indexes(self) -> GraphIndexes:
        """The cached (version-checked) indexes this engine queries."""
        return graph_indexes(self.graph, self.malgraph)

    # -- queries ----------------------------------------------------------
    def run(self, query_text: str, naive: bool = False) -> QueryResult:
        """Parse and execute; raises :class:`QueryError` on bad input."""
        query = parse(query_text)
        return self.run_ast(query, naive=naive)

    def run_ast(self, query: QueryAst, naive: bool = False) -> QueryResult:
        indexes = self.indexes()
        started = time.perf_counter()
        columns, rows, plan = _executor.execute(query, indexes, naive=naive)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return QueryResult(
            columns=tuple(columns),
            rows=tuple(rows),
            elapsed_ms=elapsed_ms,
            plan=plan.describe(query) if plan is not None else query.procedure,
        )

    def rows(self, query_text: str) -> List[Tuple]:
        """Just the row tuples (the legacy ``run_query`` shape)."""
        return list(self.run(query_text).rows)

    def explain(self, query_text: str) -> str:
        """The plan the executor would use, without running it."""
        query = parse(query_text)
        if not hasattr(query, "nodes"):
            return f"procedure {query.procedure}"
        return _executor.plan_match(query, self.indexes()).describe(query)

    # -- procedures (direct Python API) -----------------------------------
    def shortest_path(
        self,
        source: str,
        target: str,
        edge_types: Sequence[EdgeType] = (),
    ) -> List[str]:
        """Shortest path between two node selectors (see
        :func:`~repro.core.query.executor.resolve_selector`); ``[]`` when
        unreachable."""
        indexes = self.indexes()
        return _executor.shortest_path(
            indexes,
            _executor.resolve_selector(indexes, source),
            _executor.resolve_selector(indexes, target),
            tuple(edge_types),
        )

    def neighborhood(
        self,
        source: str,
        k: int,
        edge_types: Sequence[EdgeType] = (),
    ) -> List[Tuple[str, int]]:
        """(node, distance) pairs within ``k`` hops of ``source``."""
        indexes = self.indexes()
        return _executor.neighborhood(
            indexes,
            _executor.resolve_selector(indexes, source),
            k,
            tuple(edge_types),
        )
