#!/usr/bin/env python
"""Generate docs/API.md from the package's docstrings.

Walks every ``repro`` module, collects public classes and functions
(honouring ``__all__`` where defined) and emits a markdown reference:
one section per module, one entry per public item with its signature
and the first paragraph of its docstring.

Run from the repository root::

    python scripts/gen_api_docs.py            # writes docs/API.md
    python scripts/gen_api_docs.py --check    # exit 1 if out of date
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

import repro

HTTP_API = """\
## HTTP API contract

The enrichment server (`repro serve`, `repro.service.server`) speaks
JSON over seven endpoints:

| Endpoint | Method | Payload |
|---|---|---|
| `/v1/healthz` | GET | `{"status": "ok" or "degraded", "packages": N}` |
| `/v1/stats` | GET | `{"cache": {...}, "index": {...}, "generation": N, "collection": {"degraded": bool}}` |
| `/v1/metrics` | GET | see below |
| `/v1/enrich?name=&version=&sha256=&ecosystem=` | GET | one `EnrichmentResult` |
| `/v1/enrich/batch` | POST | `{"count": N, "results": [...]}` |
| `/v1/query` | POST | `{"pattern": "<query>"}` → query result, see below |
| `/v1/feed?cursor=&limit=` | GET | one page of the detection feed, see below |

### `GET /v1/metrics`

Per-endpoint request counters, status-code counts, returned-row
totals, and latency percentiles estimated from a fixed-bucket
histogram (`repro.service.metrics`):

```json
{
  "endpoints": {
    "/v1/enrich": {
      "requests": 1204,
      "status": {"200": 1200, "400": 4},
      "rows_returned": 0,
      "latency": {
        "count": 1204, "sum_seconds": 1.73, "max_ms": 21.5,
        "p50_ms": 1.0, "p95_ms": 2.5, "p99_ms": 10.0
      }
    }
  },
  "total_requests": 1204
}
```

`rows_returned` accumulates the row counts of successful `/v1/query`
responses and the item counts of `/v1/feed` pages (always `0` for
the other endpoints).

Requests to paths outside the known set pool under the `"other"`
endpoint; status `0` counts clients that disconnected before a reply
could be sent.

`/v1/healthz` reports `"degraded"` (still HTTP `200` — the service
itself is healthy) when the backing collection artifact was built
under a fault plan and lost data; see `repro.reliability`. When the
artifact carries per-source connector lifecycle health
(`repro.connectors`), the body grows a `"sources"` map of
`{"<source>": "healthy" | "degraded" | "dark" | "recovering"}`; the
key is absent for artifacts that predate connectors.

`/v1/stats` additionally carries `"generation"` — the monotonically
increasing id of the published service snapshot, bumped by every
refresh (`repro.service.refresh`). The `"cache"` section reports the
shard-summed books of the N-way sharded LRU (`"shards"` included);
`hits + misses` always equals the number of cache probes, across
shards and across refreshes. Connector-era services also carry a
`"sources"` section with each connector's full
`SourceHealth.to_dict()` (state, failure/quarantine counters,
transition ledger).

When source health is present, `GET /v1/metrics` grows a top-level
`"connectors"` section: the same per-source health dicts plus the
feed exporter's pagination books (`pages_served`,
`cursors_expired`, `generations_cached`). A service built with a
webhook dispatcher adds a `"webhooks"` section with its exact
delivery books (`enqueued == delivered + dead_lettered + pending`).

### Rate limiting

With `repro serve --rate-limit REQ_PER_S` (or
`create_server(rate_limit=...)`), every request outside `/v1/healthz`
first passes a per-client token bucket (`repro.service.ratelimit`):
continuous refill at the configured rate up to a burst ceiling
(`--burst`, default = the rate, floor 1). Clients are identified by
the `X-Client-Id` header when present, else the peer address.

A client over budget receives `429` with a `Retry-After` header
(whole seconds, rounded up) and body:

```json
{"error": "rate limit exceeded", "retry_after_seconds": 2}
```

Liveness probes are exempt: `/v1/healthz` never answers `429`. When a
limiter is configured, `GET /v1/metrics` grows a top-level
`"rate_limiter"` section with exact books
(`allowed + rejected ==` checks):

```json
{
  "rate_limiter": {
    "rate_per_client": 50.0, "burst": 50.0,
    "clients": 3, "allowed": 1200, "rejected": 17
  }
}
```

### Request framing

* `Content-Length` is validated before the body is touched: a
  non-numeric header answers a structured `400`, a negative one
  answers `400` (never a read-to-EOF hang).
* POST bodies are capped (`create_server(max_body_bytes=...)`,
  default 16 MiB): an over-cap `Content-Length` answers `413` before
  a single payload byte is read, and the connection is closed.
* `/v1/enrich` query strings are strict: unknown parameter names,
  repeated parameters, and blank values (`?name=&sha256=x`) each
  answer `400` instead of being silently ignored, first-wins, or
  dropped.

### `POST /v1/query`

Runs one graph query (`repro.core.query`) against the service's
MALGRAPH. Request body: `{"pattern": "<query>"}` — `pattern` must be a
non-empty string no longer than the server's query-length cap
(default 4096 characters, `create_server(max_query_length=...)`).
Success is `200` with:

```json
{
  "columns": ["a.name", "b.name"],
  "rows": [["left-pad", "1eft-pad"]],
  "row_count": 1,
  "elapsed_ms": 0.41,
  "plan": "seed (a) from index name='left-pad' (~1 candidates)"
}
```

Validation failures are `400`: non-object bodies, missing or
non-string `pattern`, over-cap patterns, and semantic errors return
`{"error": "<message>"}`; syntax errors additionally carry the
character offset and a caret-rendered excerpt as
`{"error": ..., "offset": N, "detail": "..."}`. A server whose
backing service was built without a query engine replies `503`.

#### Query grammar

One statement per request, either `MATCH` or `CALL`:

```
MATCH (a {ecosystem: 'npm'})-[similar*1..2]-(b)-[coexisting]-(c)
WHERE c.campaign = 'CAMP-07' AND NOT b.family IS NULL
RETURN b.name, c.campaign ORDER BY b.name LIMIT 20

CALL shortest_path('actor:lofygang', 'npm:left-pad', 'dependency')
CALL neighborhood('cg:CG-0012', 2)
```

* **Node pattern** — `(var)` or `(var {attr: value, ...})`; inline
  properties are equality filters.
* **Edge pattern** — `-[type|type2*lo..hi]->`, `<-[...]-` or
  undirected `-[...]-`. Types are `duplicated`, `dependency`,
  `similar`, `coexisting`; omitting the type spans all of them.
  `*` repeats a hop: `*n` exactly, `*lo..hi` a range, `*lo..`
  unbounded above (a node matches at its *shortest* distance).
  Direction only constrains `dependency` edges; the other relations
  are symmetric.
* **WHERE** — comparisons `= != < <= > >=` over `var.attr`,
  `IS NULL` / `IS NOT NULL`, combined with `AND`/`OR`/`NOT` and
  parentheses. `AND` binds tighter than `OR`.
* **RETURN** — variables (`a` → node id) or attributes (`a.name`),
  or `count(*)`; `ORDER BY <item> [DESC]` and `LIMIT n` optional.
* **CALL procedures** — `shortest_path(a, b[, edge_types])` and
  `neighborhood(x, k[, edge_types])`. Node selectors accept an exact
  node id, a bare package name, or `attr:value` over any indexed
  attribute (including group ids such as `cg:CG-0003` and
  `actor:<alias>`); `edge_types` is a `|`-separated list.

### `GET /v1/feed`

A STIX-ish export of every detection the service holds
(`repro.service.feed`), paginated with opaque cursors that survive
index refreshes. Also available offline as `repro feed` (same JSON,
same cursors). A page:

```json
{
  "generation": 4,
  "total": 434,
  "offset": 0,
  "count": 100,
  "items": [
    {
      "type": "indicator",
      "id": "indicator--npm--left-pad--1.0.0",
      "name": "Malicious package npm/left-pad@1.0.0",
      "labels": ["malicious-activity"],
      "pattern": "[package:ecosystem = 'npm' AND package:name = 'left-pad' AND package:version = '1.0.0']",
      "pattern_type": "package-coordinate",
      "valid_from_day": 100,
      "detected_day": 120,
      "removed_day": null,
      "sha256": "…",
      "external_references": [
        {"source_name": "maloss", "report_day": 120, "shares_artifact": true}
      ]
    }
  ],
  "next_cursor": "eyJnIjo0LCJvIjoxMDB9"
}
```

* **Cursors are generation-tagged.** Each cursor encodes the snapshot
  generation it was minted against, and the server keeps the last few
  generations' item lists immutable — so a walk started before a
  refresh keeps seeing exactly the items of its own generation: zero
  duplicated, zero missed, even with a publish landing between every
  pair of page requests. A fresh walk (no cursor) always starts on
  the current generation. Follow `next_cursor` until it is `null`.
* **Expiry is explicit.** A cursor whose generation has been evicted
  answers `410 Gone` — never a silently wrong page:

  ```json
  {
    "error": "…",
    "expired_generation": 0,
    "current_generation": 5,
    "restart": "/v1/feed"
  }
  ```

* **Validation.** `limit` must be an integer in `[1, 1000]`; unknown,
  repeated, or blank query parameters and malformed cursors answer
  `400`. A service built without a feed exporter replies `503`.

### Webhook push

`repro serve --webhook URL` (or
`build_service(..., webhook=WebhookDispatcher(url))`) POSTs one event
to the subscriber whenever a refresh publishes new detections:

```json
{"event": "new-detections", "generation": 5, "count": 2, "items": [...]}
```

`items` are the same indicator objects `/v1/feed` serves — only the
entries *new* in that generation; a republish with no additions sends
nothing. Deliveries retry with exponential backoff; an exhausted
delivery lands in a bounded dead-letter book
(`WebhookDispatcher.redeliver_dead()` re-queues it), and the exact
books are surfaced as the `"webhooks"` section of `/v1/metrics`.

### Error responses

Every error is JSON. Validation failures are `400` with
`{"error": "<message>"}`; malformed batch items additionally carry the
offending item's position as `{"error": ..., "index": i}`. Oversized
batches are `413`. Unexpected server-side failures never drop the
connection: they return `500` with
`{"error": "internal server error", "error_id": "<12-hex id>"}` where
the id correlates with the server's stderr log line.
"""


def iter_module_names() -> Iterator[str]:
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield info.name


def first_paragraph(doc: str) -> str:
    lines: List[str] = []
    for line in inspect.cleandoc(doc).splitlines():
        if not line.strip() and lines:
            break
        if line.strip():
            lines.append(line.strip())
    return " ".join(lines)


def public_items(module) -> List[Tuple[str, object]]:
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    items = []
    for name in sorted(set(names)):
        obj = getattr(module, name, None)
        if obj is None:
            continue
        if inspect.ismodule(obj):
            continue
        origin = getattr(obj, "__module__", module.__name__)
        if origin != module.__name__:
            continue  # re-export; documented at its home module
        if inspect.isclass(obj) or inspect.isfunction(obj):
            items.append((name, obj))
    return items


def signature_of(obj) -> str:
    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    # default values that repr with a memory address are not stable
    # across runs; strip the address so the output is deterministic
    return re.sub(r" at 0x[0-9a-fA-F]+", "", text)


def render() -> str:
    out: List[str] = [
        "# API reference",
        "",
        "Generated by `scripts/gen_api_docs.py` — do not edit by hand.",
        "",
    ]
    for module_name in iter_module_names():
        module = importlib.import_module(module_name)
        items = public_items(module)
        doc = first_paragraph(module.__doc__ or "")
        if not items and not doc:
            continue
        out.append(f"## `{module_name}`")
        out.append("")
        if doc:
            out.append(doc)
            out.append("")
        for name, obj in items:
            kind = "class" if inspect.isclass(obj) else "def"
            out.append(f"### `{kind} {name}{signature_of(obj)}`")
            out.append("")
            summary = first_paragraph(obj.__doc__ or "")
            if summary:
                out.append(summary)
                out.append("")
    out.append(HTTP_API)
    return "\n".join(out).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--check", action="store_true")
    parser.add_argument(
        "--out", default=Path(__file__).resolve().parent.parent / "docs" / "API.md"
    )
    args = parser.parse_args(argv)
    target = Path(args.out)
    payload = render()
    if args.check:
        if not target.exists() or target.read_text() != payload:
            print(f"{target} is out of date; run scripts/gen_api_docs.py")
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(payload)
    print(f"wrote {target} ({len(payload.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
