"""MALGRAPH operation micro-benchmarks (not a paper table).

Times the graph operations every analysis leans on — Table II statistics
via the clique-compressed fast path vs the exact pair-expansion path,
connected-component extraction, and a representative query — on the
full-scale graph. The compressed path must count the multi-million-edge
similar subgraph without materialising it.
"""

from __future__ import annotations

import pytest

from repro.core.graph import EdgeType
from repro.core.query import run_query


@pytest.fixture(scope="session")
def graph(artifacts):
    return artifacts.malgraph.graph


def test_stats_fast_path(benchmark, graph):
    stats = benchmark(graph.stats, EdgeType.SIMILAR)
    assert stats.directed_edges > 0


def test_stats_exact_path(benchmark, graph):
    exact = benchmark(graph.stats, EdgeType.SIMILAR, True)
    fast = graph.stats(EdgeType.SIMILAR)
    assert exact.directed_edges == fast.directed_edges, (
        "similarity cliques are disjoint, so fast == exact"
    )


def test_connected_components(benchmark, graph):
    components = benchmark(graph.connected_components, [EdgeType.SIMILAR])
    assert components
    assert all(len(c) >= 2 for c in components)


def test_query_node_scan(benchmark, graph):
    rows = benchmark(
        run_query,
        graph,
        "MATCH (a) WHERE a.ecosystem = 'npm' RETURN count(*)",
    )
    assert rows[0][0] > 0


def test_query_edge_expansion(benchmark, graph):
    rows = benchmark(
        run_query,
        graph,
        "MATCH (a)-[:dependency]-(b) RETURN a.name, b.name",
    )
    assert isinstance(rows, list)


def test_serialisation_roundtrip(benchmark, graph):
    from repro.core.graph import PropertyGraph

    payload = graph.dumps()

    def roundtrip():
        return PropertyGraph.loads(payload)

    clone = benchmark(roundtrip)
    assert clone.node_count == graph.node_count
