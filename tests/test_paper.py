"""The PaperArtifacts facade: every experiment renders and the memoised
stages are shared."""

from __future__ import annotations

import pytest

from repro.paper import PaperArtifacts, default_artifacts
from repro.world import WorldConfig


def test_facade_builds_lazily():
    artifacts = PaperArtifacts(WorldConfig(seed=3, scale=0.05))
    assert artifacts._world is None
    _ = artifacts.world
    assert artifacts._world is not None
    assert artifacts._malgraph is None
    _ = artifacts.malgraph
    assert artifacts._malgraph is not None


def test_stages_are_shared():
    artifacts = PaperArtifacts(WorldConfig(seed=3, scale=0.05))
    assert artifacts.world is artifacts.world
    assert artifacts.collection is artifacts.collection
    assert artifacts.malgraph is artifacts.malgraph
    assert artifacts.dataset is artifacts.collection.dataset


def test_default_artifacts_memoised():
    assert default_artifacts(seed=7, scale=1.0) is default_artifacts(seed=7, scale=1.0)


def test_every_experiment_renders(paper):
    """All 15 table/figure methods produce non-empty renderings."""
    outputs = [
        paper.table1_sources().render(),
        paper.fig2_timeline().render(),
        paper.table2_malgraph().render(),
        paper.table3_reports().render(),
        paper.table4_overlap().render(),
        paper.fig4_dg_cdf().render(),
        paper.table5_freshness().render(),
        paper.table6_missing().render(),
        paper.fig5_causes().render(),
        paper.table7_diversity().render(),
        paper.fig8_campaign().render(),
        paper.fig9_active_periods().render(),
        paper.fig11_downloads().render(),
        paper.fig12_operations().render(),
        paper.table8_idn().render(),
    ]
    for out in outputs:
        assert out.strip()
        assert "\n" in out


def test_experiment_markers_present(paper):
    assert "Table I" in paper.table1_sources().render()
    assert "Table IV" in paper.table4_overlap().render()
    assert "Fig. 12" in paper.fig12_operations().render()


def test_overall_missing_rate_in_paper_band(paper):
    """The paper reports 64.14% overall missing; our world sits in the
    same regime (removed-fast packages dominate)."""
    table = paper.table6_missing()
    assert 40.0 < table.overall_rate < 80.0
