"""Hand-built mini datasets for precise edge/group assertions."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.ecosystem.package import PackageId, make_artifact

DEFAULT_CODE = "def payload():\n    return 'x'\n"


def entry(
    name: str,
    version: str = "1.0",
    ecosystem: str = "pypi",
    code: Optional[str] = DEFAULT_CODE,
    dependencies: Sequence[str] = (),
    sources: Sequence[str] = ("snyk",),
    release_day: Optional[int] = 10,
    downloads: int = 0,
    campaign_id: Optional[str] = None,
    module: str = "pkg",
) -> DatasetEntry:
    """One dataset entry; ``code=None`` makes it unavailable.

    The code file lives at a fixed ``pkg/main.py`` path by default so two
    entries built from the same ``code`` share a signature (signatures
    cover path + content).
    """
    package = PackageId(ecosystem, name, version)
    artifact = None
    if code is not None:
        artifact = make_artifact(
            ecosystem,
            name,
            version,
            {f"{module}/main.py": code},
            dependencies=tuple(dependencies),
        )
    return DatasetEntry(
        package=package,
        claims=[
            SourceClaim(source=s, report_day=(release_day or 0) + 2, shares_artifact=True)
            for s in sources
        ],
        artifact=artifact,
        artifact_origin="source:test" if artifact else None,
        release_day=release_day,
        downloads=downloads,
        campaign_id=campaign_id,
    )


def report(
    report_id: str,
    packages: Sequence[PackageId],
    site: str = "blog.example",
    category: str = "Commercial org.",
    source: str = "snyk",
    publish_day: int = 20,
) -> CollectedReport:
    return CollectedReport(
        report_id=report_id,
        url=f"https://{site}/{report_id}",
        site=site,
        category=category,
        source=source,
        publish_day=publish_day,
        packages=list(packages),
    )


def dataset(
    entries: List[DatasetEntry], reports: Optional[List[CollectedReport]] = None
) -> MalwareDataset:
    return MalwareDataset(entries=entries, reports=reports or [])
