"""The persistent ``embeddings`` tier: vectors keyed by embedder
fingerprint + artifact SHA256 survive into new stores/processes, config
sweeps re-cluster without re-embedding, and corruption degrades to a
rebuild — never a crash or a wrong vector."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.core.embedding import AstEmbedder
from repro.core.similarity import SimilarityConfig, cluster_artifacts
from repro.ecosystem.package import make_artifact
from repro.pipeline.store import ArtifactStore, EMBEDDINGS_STAGE, META_FILENAME


def _artifacts(count: int = 6):
    return [
        make_artifact(
            "pypi",
            f"pkg{idx}",
            "1.0.0",
            {
                f"pkg{idx}/main.py": (
                    f"def run_{idx}(arg):\n"
                    f"    value_{idx} = arg + {idx}\n"
                    f"    return value_{idx}\n"
                )
            },
        )
        for idx in range(count)
    ]


def _store(tmp_path) -> ArtifactStore:
    return ArtifactStore(cache_dir=tmp_path / "cache", disk_enabled=True)


def test_embedding_cache_round_trip_across_stores(tmp_path):
    """A second store over the same cache dir (a fresh process, in
    effect) re-clusters with zero re-embeds and identical results."""
    artifacts = _artifacts()
    cold = cluster_artifacts(artifacts, store=_store(tmp_path))
    assert cold.timings.cache_hits == 0
    assert cold.timings.cache_misses == cold.timings.unique_artifacts

    warm = cluster_artifacts(artifacts, store=_store(tmp_path))
    assert warm.timings.cache_misses == 0
    assert warm.timings.cache_hits == warm.timings.unique_artifacts
    assert warm.groups == cold.groups
    assert np.array_equal(warm.labels, cold.labels)


def test_cached_vectors_match_direct_embedding(tmp_path):
    """What comes back from disk is the vector, not an approximation."""
    artifacts = _artifacts()
    embedder = AstEmbedder()
    cluster_artifacts(artifacts, store=_store(tmp_path))
    loaded = _store(tmp_path).load_embeddings(
        embedder.fingerprint(), [a.sha256() for a in artifacts]
    )
    for artifact in artifacts:
        assert np.array_equal(
            loaded[artifact.sha256()], embedder.embed_package(artifact)
        )


def test_similarity_sweep_never_re_embeds(tmp_path):
    """Changing clustering-only knobs re-clusters from cached vectors —
    the sweep the embeddings tier exists for."""
    artifacts = _artifacts()
    cluster_artifacts(artifacts, store=_store(tmp_path))
    for config in (
        SimilarityConfig(min_similarity=0.5),
        SimilarityConfig(start_k=5),
        SimilarityConfig(seed=9),
        SimilarityConfig(min_similarity=None),
    ):
        result = cluster_artifacts(artifacts, config, store=_store(tmp_path))
        assert result.timings.cache_misses == 0, config


def test_embedder_knob_change_misses_the_cache(tmp_path):
    """dim/weights change the vectors, so they address a new cache entry."""
    artifacts = _artifacts()
    cluster_artifacts(artifacts, store=_store(tmp_path))
    result = cluster_artifacts(
        artifacts, SimilarityConfig(dim=128), store=_store(tmp_path)
    )
    assert result.timings.cache_misses == result.timings.unique_artifacts


def test_corrupt_vector_file_falls_back_to_rebuild(tmp_path):
    artifacts = _artifacts()
    baseline = cluster_artifacts(artifacts, store=_store(tmp_path))
    entry_dir = (
        tmp_path / "cache" / EMBEDDINGS_STAGE / AstEmbedder().fingerprint()
    )
    victim = artifacts[0].sha256()
    (entry_dir / f"{victim}.npy").write_bytes(b"not a numpy file")

    result = cluster_artifacts(artifacts, store=_store(tmp_path))
    # exactly the corrupt vector is re-embedded; the rest still hit
    assert result.timings.cache_misses == 1
    assert result.groups == baseline.groups
    # ... and the rebuilt vector repaired the entry for the next run
    repaired = cluster_artifacts(artifacts, store=_store(tmp_path))
    assert repaired.timings.cache_misses == 0


def test_corrupt_meta_invalidates_the_whole_entry(tmp_path):
    artifacts = _artifacts()
    baseline = cluster_artifacts(artifacts, store=_store(tmp_path))
    entry_dir = (
        tmp_path / "cache" / EMBEDDINGS_STAGE / AstEmbedder().fingerprint()
    )
    (entry_dir / META_FILENAME).write_text("{broken json")

    result = cluster_artifacts(artifacts, store=_store(tmp_path))
    assert result.timings.cache_misses == result.timings.unique_artifacts
    assert result.groups == baseline.groups


def test_memory_tier_serves_repeat_builds_without_disk(tmp_path):
    """Within one process the sha → vector map lives in the store's
    memory LRU; a repeat build is fully warm even with disk disabled."""
    artifacts = _artifacts()
    store = ArtifactStore(cache_dir=tmp_path / "cache", disk_enabled=False)
    cold = cluster_artifacts(artifacts, store=store)
    assert cold.timings.cache_misses == cold.timings.unique_artifacts
    warm = cluster_artifacts(artifacts, store=store)
    assert warm.timings.cache_misses == 0


def test_embedding_cache_crosses_real_process_boundary(tmp_path):
    """A child process warms the cache dir; the parent re-clusters with
    zero re-embeds — the 'warmed cache survives into new processes'
    guarantee, for real."""
    repo_src = Path(__file__).resolve().parents[2] / "src"
    cache_dir = tmp_path / "shared-cache"
    # The child builds the same artifacts _artifacts() does and warms
    # the shared cache dir from a completely separate interpreter.
    script = (
        "import sys\n"
        "from repro.core.similarity import cluster_artifacts\n"
        "from repro.ecosystem.package import make_artifact\n"
        "from repro.pipeline.store import ArtifactStore\n"
        "artifacts = [\n"
        "    make_artifact('pypi', f'pkg{i}', '1.0.0',\n"
        "                  {f'pkg{i}/main.py': f'def run_{i}(arg):\\n"
        "    value_{i} = arg + {i}\\n    return value_{i}\\n'})\n"
        "    for i in range(6)\n"
        "]\n"
        "result = cluster_artifacts(\n"
        "    artifacts, store=ArtifactStore(cache_dir=sys.argv[1])\n"
        ")\n"
        "assert result.timings.cache_misses > 0\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, str(cache_dir)],
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr

    result = cluster_artifacts(
        _artifacts(), store=ArtifactStore(cache_dir=cache_dir)
    )
    assert result.timings.cache_misses == 0
