"""Table I, Table III and Fig. 2 analyses."""

from __future__ import annotations

import pytest

from repro.analysis.inventory import (
    compute_release_timeline,
    compute_report_inventory,
    compute_source_inventory,
)
from repro.ecosystem.clock import date_to_day
from repro.intel.sources import SOURCE_PROFILES, Sector

from tests.core.helpers import dataset, entry, report


def test_source_inventory_counts_availability():
    ds = dataset(
        [
            entry("a", sources=("snyk",)),
            entry("b", sources=("snyk",), code=None),
            entry("c", sources=("phylum", "snyk"), code="C = 1\n"),
        ]
    )
    inventory = compute_source_inventory(ds)
    by_key = {row.source: row for row in inventory.rows}
    assert by_key["snyk"].available == 2
    assert by_key["snyk"].unavailable == 1
    assert by_key["snyk"].total == 3
    assert by_key["phylum"].available == 1
    assert by_key["datadog"].total == 0


def test_source_inventory_totals_count_multi_source_entries_once_per_source():
    ds = dataset([entry("a", sources=("snyk", "phylum"))])
    inventory = compute_source_inventory(ds)
    assert inventory.total_available == 2  # one per claiming source


def test_source_inventory_covers_every_table1_source():
    ds = dataset([entry("a")])
    inventory = compute_source_inventory(ds)
    assert [r.source for r in inventory.rows] == [p.key for p in SOURCE_PROFILES]
    assert {r.sector for r in inventory.rows} == {
        Sector.ACADEMIA, Sector.INDUSTRY, Sector.INDIVIDUAL,
    }


def test_source_inventory_render_has_total_row():
    ds = dataset([entry("a")])
    out = compute_source_inventory(ds).render()
    assert "Table I" in out
    assert "Total" in out


def test_report_inventory_counts_sites_and_reports():
    e1, e2 = entry("a"), entry("b", code="B = 1\n")
    ds = dataset(
        [e1, e2],
        [
            report("r1", [e1.package], site="s1.example", category="News"),
            report("r2", [e2.package], site="s1.example", category="News"),
            report("r3", [e1.package], site="s2.example", category="Individual"),
        ],
    )
    inventory = compute_report_inventory(ds)
    by_cat = {row.category: row for row in inventory.rows}
    assert by_cat["News"].reports == 2
    assert by_cat["News"].websites == 1
    assert by_cat["Individual"].reports == 1
    assert inventory.total_reports == 3
    assert inventory.total_websites == 2


def test_report_inventory_unknown_category_is_other():
    e = entry("a")
    ds = dataset([e], [report("r1", [e.package], category="Mystery")])
    inventory = compute_report_inventory(ds)
    by_cat = {row.category: row for row in inventory.rows}
    assert by_cat["Other"].reports == 1


def test_release_timeline_bins_by_month():
    import datetime

    jan = date_to_day(datetime.date(2020, 1, 15))
    jan2 = date_to_day(datetime.date(2020, 1, 20))
    mar = date_to_day(datetime.date(2021, 3, 2))
    ds = dataset(
        [
            entry("a", release_day=jan),
            entry("b", code="B = 1\n", release_day=jan2),
            entry("c", code="C = 1\n", release_day=mar),
            entry("d", code="D = 1\n", release_day=None),
        ]
    )
    timeline = compute_release_timeline(ds)
    assert timeline.months == ["2020-01", "2021-03"]
    assert timeline.counts == [2, 1]
    assert timeline.yearly_totals() == {2020: 2, 2021: 1}


def test_release_timeline_empty_dataset():
    timeline = compute_release_timeline(dataset([entry("a", release_day=None)]))
    assert timeline.months == []
    assert timeline.counts == []


# -- against the simulated world --------------------------------------------------

def test_world_inventory_shape(small_dataset):
    """Table I shape: sharing sources have ~no missing packages, feeds
    are names-dominated."""
    inventory = compute_source_inventory(small_dataset)
    by_key = {row.source: row for row in inventory.rows}
    for sharing in ("mal-pypi", "datadog"):
        row = by_key[sharing]
        if row.total:
            assert row.unavailable == 0
    socket_row = by_key["socket"]
    if socket_row.total:
        # Socket shares nothing itself; its entries are available only
        # via other sources or mirror recovery, so names dominate.
        assert socket_row.unavailable > socket_row.available


def test_world_timeline_spans_years(small_dataset):
    totals = compute_release_timeline(small_dataset).yearly_totals()
    assert min(totals) >= 2018
    assert max(totals) <= 2024
    assert len(totals) >= 4
