"""Inverted indexes over MALGRAPH for O(1) indicator lookup.

The offline graph answers "what is related to package X" by walking
edges; a serving layer cannot afford a walk per request. The
:class:`IntelIndex` is built in one pass over the dataset, the graph and
the DG/DeG/SG/CG group extraction, and afterwards resolves every
indicator shape the enrichment API accepts — name, name+version, SHA256
signature, ecosystem, family/group id, actor alias — with dictionary
lookups.

The index stores :class:`~repro.ecosystem.package.PackageId` keys only
and resolves entries through the live dataset reference, which is what
lets :mod:`repro.service.refresh` swap in a merged dataset and index the
delta without rebuilding anything.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.collection.records import CollectedReport, DatasetEntry, MalwareDataset
from repro.core.edges import node_id
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.detection.typosquat import _normalize, damerau_levenshtein
from repro.intel.sources import SOURCE_INDEX, Sector, SourceProfile

#: Group kinds read as malware families vs attack campaigns (Section IV:
#: DG/SG groups recover families, DeG/CG groups recover campaigns).
FAMILY_KINDS = (GroupKind.DG, GroupKind.SG)
CAMPAIGN_KINDS = (GroupKind.DEG, GroupKind.CG)

#: Sector base weight of :func:`source_reliability` — primary detectors
#: (industry) rank above retrospective aggregators (academia) above
#: individual blogs/SNS.
_SECTOR_RELIABILITY = {
    Sector.INDUSTRY: 0.80,
    Sector.ACADEMIA: 0.65,
    Sector.INDIVIDUAL: 0.40,
}


def source_reliability(profile: SourceProfile) -> float:
    """Deterministic reliability score in (0, 1) for a source profile.

    Sector sets the base; sharing artifacts (verifiable claims) and a
    live update cadence each add a bonus.
    """
    score = _SECTOR_RELIABILITY[profile.sector]
    score += 0.15 * profile.share_artifacts
    if profile.update_interval_days and profile.update_interval_days <= 90:
        score += 0.04
    return round(min(score, 0.99), 4)


def _deletion_variants(norm: str) -> Set[str]:
    """The name plus every single-character deletion of it.

    Two names within Damerau-Levenshtein distance 1 always share a
    variant (SymSpell's observation), so intersecting variant sets turns
    the near-miss scan into a handful of dict hits.
    """
    variants = {norm}
    for i in range(len(norm)):
        variants.add(norm[:i] + norm[i + 1 :])
    return variants


class IntelIndex:
    """One-pass inverted indexes over a built :class:`MalGraph`."""

    def __init__(self, dataset: MalwareDataset, graph: Optional[PropertyGraph] = None):
        self.dataset = dataset
        self.graph = graph
        self._by_name: Dict[str, List] = {}  # lowercase name -> [PackageId]
        self._by_sha: Dict[str, List] = {}
        self._by_ecosystem: Dict[str, List] = {}
        self._groups_of: Dict[object, List[str]] = {}  # PackageId -> [group id]
        self._group_members: Dict[str, List] = {}
        self._group_kind: Dict[str, GroupKind] = {}
        self._actors_of: Dict[object, List[str]] = {}
        self._actor_packages: Dict[str, List] = {}  # lowercase alias -> ids
        self._actor_label: Dict[str, str] = {}
        self._norm_names: Dict[str, Set[str]] = {}  # normalized -> lowercase names
        self._deletions: Dict[str, Set[str]] = {}  # variant -> normalized names
        self._indexed_reports: Set[str] = set()
        self._refresh_groups = 0  # counter for refresh-created group ids
        #: advanced once per applied refresh/delta batch; 0 = cold build
        self.epoch = 0
        #: wall-clock time of the last applied batch (None = never)
        self.last_delta_at: Optional[float] = None

    # -- construction -----------------------------------------------------
    @classmethod
    def build(cls, malgraph: MalGraph) -> "IntelIndex":
        """Index a built graph: entries, groups and report actors."""
        index = cls(malgraph.dataset, malgraph.graph)
        for entry in malgraph.dataset.entries:
            index.add_entry(entry)
        for kind in GroupKind:
            for i, group in enumerate(malgraph.groups(kind)):
                group_id = f"{kind.value}-{i:04d}"
                index.register_group(
                    group_id, kind, [m.package for m in group.members]
                )
        for report in malgraph.dataset.reports:
            index.add_report(report)
        return index

    def clone(self) -> "IntelIndex":
        """An independent copy sharing only the immutable leaves.

        The snapshot-swap refresh (:mod:`repro.service.refresh`) applies
        a delta to a clone while lock-free readers keep resolving
        against the original, then publishes the clone atomically. Every
        mutable container (the bucket dicts and their lists/sets) is
        copied one level deep — entries, package ids and reports are
        value objects shared by reference; the dataset and graph
        references carry over and are retargeted by the refresh itself.
        """
        other = IntelIndex(self.dataset, self.graph)
        other._by_name = {k: list(v) for k, v in self._by_name.items()}
        other._by_sha = {k: list(v) for k, v in self._by_sha.items()}
        other._by_ecosystem = {k: list(v) for k, v in self._by_ecosystem.items()}
        other._groups_of = {k: list(v) for k, v in self._groups_of.items()}
        other._group_members = {k: list(v) for k, v in self._group_members.items()}
        other._group_kind = dict(self._group_kind)
        other._actors_of = {k: list(v) for k, v in self._actors_of.items()}
        other._actor_packages = {k: list(v) for k, v in self._actor_packages.items()}
        other._actor_label = dict(self._actor_label)
        other._norm_names = {k: set(v) for k, v in self._norm_names.items()}
        other._deletions = {k: set(v) for k, v in self._deletions.items()}
        other._indexed_reports = set(self._indexed_reports)
        other._refresh_groups = self._refresh_groups
        other.epoch = self.epoch
        other.last_delta_at = self.last_delta_at
        return other

    def add_entry(self, entry: DatasetEntry) -> None:
        """Register one package in every per-entry index (idempotent)."""
        pid = entry.package
        name = pid.name.lower()
        bucket = self._by_name.setdefault(name, [])
        if pid not in bucket:
            bucket.append(pid)
        eco_bucket = self._by_ecosystem.setdefault(pid.ecosystem, [])
        if pid not in eco_bucket:
            eco_bucket.append(pid)
        self.register_sha(entry)
        norm = _normalize(pid.name)
        if norm:
            self._norm_names.setdefault(norm, set()).add(name)
            for variant in _deletion_variants(norm):
                self._deletions.setdefault(variant, set()).add(norm)

    def register_sha(self, entry: DatasetEntry) -> None:
        """(Re-)index an entry's SHA256 (used when an artifact appears)."""
        sha = entry.sha256()
        if sha is None:
            return
        bucket = self._by_sha.setdefault(sha, [])
        if entry.package not in bucket:
            bucket.append(entry.package)

    def unregister_sha(self, sha256: Optional[str], pid) -> None:
        """Drop one package from a signature bucket (artifact replaced
        or package removed)."""
        if sha256 is None:
            return
        bucket = self._by_sha.get(sha256)
        if bucket is not None and pid in bucket:
            bucket.remove(pid)
            if not bucket:
                del self._by_sha[sha256]

    def remove_entry(self, entry: DatasetEntry) -> None:
        """Unregister one package from every per-entry index.

        ``entry`` must be the entry as last indexed (its SHA256 locates
        the signature bucket to leave).
        """
        pid = entry.package
        name = pid.name.lower()
        bucket = self._by_name.get(name)
        if bucket is not None and pid in bucket:
            bucket.remove(pid)
            if not bucket:
                del self._by_name[name]
        eco_bucket = self._by_ecosystem.get(pid.ecosystem)
        if eco_bucket is not None and pid in eco_bucket:
            eco_bucket.remove(pid)
            if not eco_bucket:
                del self._by_ecosystem[pid.ecosystem]
        self.unregister_sha(entry.sha256(), pid)
        for group_id in self._groups_of.pop(pid, []):
            members = self._group_members.get(group_id)
            if members is not None and pid in members:
                members.remove(pid)
        for alias in self._actors_of.pop(pid, []):
            alias_bucket = self._actor_packages.get(alias.lower())
            if alias_bucket is not None and pid in alias_bucket:
                alias_bucket.remove(pid)
        # the typo-squat neighbourhood tracks *names*; only an orphaned
        # name leaves it
        if name not in self._by_name:
            norm = _normalize(pid.name)
            held = self._norm_names.get(norm)
            if held is not None:
                held.discard(name)
                if not held:
                    del self._norm_names[norm]
                    for variant in _deletion_variants(norm):
                        variants = self._deletions.get(variant)
                        if variants is not None:
                            variants.discard(norm)
                            if not variants:
                                del self._deletions[variant]

    def register_group(self, group_id: str, kind: GroupKind, members: Sequence) -> None:
        """Register a family/campaign group over member package ids."""
        self._group_kind[group_id] = kind
        held = self._group_members.setdefault(group_id, [])
        for pid in members:
            if pid not in held:
                held.append(pid)
            groups = self._groups_of.setdefault(pid, [])
            if group_id not in groups:
                groups.append(group_id)

    def replace_groups(self, kind: GroupKind, groups: Sequence[Sequence]) -> None:
        """Swap every group of one kind for a fresh positional set.

        Drops all existing ids of the kind — including refresh-scoped
        ``<kind>-rNNNN`` ids — and re-registers ``{kind}-{i:04d}`` over
        ``groups`` (member package-id lists). The delta-routed refresh
        uses this to mirror the evolved MALGRAPH's group extraction
        wholesale, which is how SG/DeG memberships stay live instead of
        waiting for the next cold build.
        """
        stale = [
            group_id
            for group_id, held in self._group_kind.items()
            if held is kind
        ]
        for group_id in stale:
            for pid in self._group_members.pop(group_id, ()):
                held = self._groups_of.get(pid)
                if held is not None and group_id in held:
                    held.remove(group_id)
                    if not held:
                        del self._groups_of[pid]
            del self._group_kind[group_id]
        for i, members in enumerate(groups):
            self.register_group(f"{kind.value}-{i:04d}", kind, list(members))

    def next_refresh_group_id(self, kind: GroupKind) -> str:
        """A fresh ``<kind>-rNNNN`` id for a refresh-discovered group."""
        self._refresh_groups += 1
        return f"{kind.value}-r{self._refresh_groups:04d}"

    def add_report(self, report: CollectedReport) -> None:
        """Index a report's actor alias over its resolved packages."""
        if report.report_id in self._indexed_reports:
            return
        self._indexed_reports.add(report.report_id)
        if not report.actor_alias:
            return
        alias_key = report.actor_alias.lower()
        self._actor_label.setdefault(alias_key, report.actor_alias)
        bucket = self._actor_packages.setdefault(alias_key, [])
        for pid in report.packages:
            if self.dataset.get(pid) is None:
                continue
            if pid not in bucket:
                bucket.append(pid)
            aliases = self._actors_of.setdefault(pid, [])
            if report.actor_alias not in aliases:
                aliases.append(report.actor_alias)

    # -- lookups ----------------------------------------------------------
    def entries(self, pids: Iterable) -> List[DatasetEntry]:
        found = (self.dataset.get(pid) for pid in pids)
        return [e for e in found if e is not None]

    def lookup_sha256(self, sha256: str) -> List[DatasetEntry]:
        return self.entries(self._by_sha.get(sha256.lower(), ()))

    def sha_bucket(self, sha256: str) -> List:
        """Package ids sharing one signature (duplicated-family seed)."""
        return list(self._by_sha.get(sha256, ()))

    def lookup_name(
        self, name: str, ecosystem: Optional[str] = None
    ) -> List[DatasetEntry]:
        pids = self._by_name.get(name.lower(), ())
        if ecosystem:
            pids = [p for p in pids if p.ecosystem == ecosystem]
        return self.entries(pids)

    def lookup_name_version(
        self, name: str, version: str, ecosystem: Optional[str] = None
    ) -> List[DatasetEntry]:
        return [
            e
            for e in self.lookup_name(name, ecosystem)
            if e.package.version == version
        ]

    def lookup_ecosystem(self, ecosystem: str) -> List[DatasetEntry]:
        return self.entries(self._by_ecosystem.get(ecosystem, ()))

    def lookup_actor(self, alias: str) -> List[DatasetEntry]:
        return self.entries(self._actor_packages.get(alias.lower(), ()))

    def lookup_group(self, group_id: str) -> List[DatasetEntry]:
        return self.entries(self._group_members.get(group_id, ()))

    def group_kind(self, group_id: str) -> Optional[GroupKind]:
        return self._group_kind.get(group_id)

    def groups_of(self, pid) -> List[str]:
        return list(self._groups_of.get(pid, ()))

    def families_of(self, pid) -> List[str]:
        return [
            g for g in self._groups_of.get(pid, ()) if self._group_kind[g] in FAMILY_KINDS
        ]

    def campaigns_of(self, pid) -> List[str]:
        return [
            g
            for g in self._groups_of.get(pid, ())
            if self._group_kind[g] in CAMPAIGN_KINDS
        ]

    def actors_of(self, pid) -> List[str]:
        return list(self._actors_of.get(pid, ()))

    def actor_aliases(self) -> List[str]:
        return sorted(self._actor_label.values())

    def related(self, pid, limit: int = 25) -> List[str]:
        """Graph-neighbour node ids across every edge type (capped).

        Packages indexed after an incremental refresh have no graph node
        yet; they fall back to their group co-members.
        """
        nid = node_id(pid)
        found: Set[str] = set()
        if self.graph is not None and self.graph.has_node(nid):
            for edge_type in EdgeType:
                found.update(self.graph.neighbors(nid, edge_type))
        else:
            for group_id in self._groups_of.get(pid, ()):
                found.update(node_id(p) for p in self._group_members[group_id])
        found.discard(nid)
        return sorted(found)[:limit]

    def near_names(
        self, name: str, ecosystem: Optional[str] = None, max_distance: int = 2
    ) -> List[Tuple[str, int]]:
        """Known malicious names within a small edit distance of ``name``.

        Candidates come from the single-deletion neighbourhood (complete
        for distance <= 1, partial beyond), then the true
        Damerau-Levenshtein distance filters them. Exact matches are the
        caller's job and are excluded here.
        """
        norm = _normalize(name)
        if not norm:
            return []
        candidates: Set[str] = set()
        for variant in _deletion_variants(norm):
            candidates.update(self._deletions.get(variant, ()))
        candidates.discard(norm)
        hits: List[Tuple[str, int]] = []
        for candidate in candidates:
            distance = damerau_levenshtein(norm, candidate, cap=max_distance + 1)
            if distance > max_distance:
                continue
            for held_name in self._norm_names[candidate]:
                if ecosystem and not any(
                    p.ecosystem == ecosystem for p in self._by_name.get(held_name, ())
                ):
                    continue
                hits.append((held_name, distance))
        hits.sort(key=lambda pair: (pair[1], pair[0]))
        return hits

    # -- provenance -------------------------------------------------------
    def source_profiles(self, entries: Sequence[DatasetEntry]) -> List[Dict]:
        """Source provenance of a match set, best reliability first."""
        keys: Set[str] = set()
        for entry in entries:
            keys.update(entry.sources)
        rows = []
        for key in keys:
            profile = SOURCE_INDEX.get(key)
            if profile is None:
                rows.append({"key": key, "label": key, "sector": None, "reliability": 0.25})
                continue
            rows.append(
                {
                    "key": profile.key,
                    "label": profile.label,
                    "sector": profile.sector.value,
                    "reliability": source_reliability(profile),
                }
            )
        rows.sort(key=lambda r: (-r["reliability"], r["key"]))
        return rows

    # -- introspection ----------------------------------------------------
    @property
    def package_count(self) -> int:
        return len(self.dataset)

    def stats(self) -> Dict[str, object]:
        """Index-shape counters for the ``/v1/stats`` endpoint."""
        return {
            "packages": len(self.dataset),
            "names": len(self._by_name),
            "signatures": len(self._by_sha),
            "ecosystems": len(self._by_ecosystem),
            "groups": len(self._group_members),
            "actors": len(self._actor_packages),
            "reports": len(self._indexed_reports),
            "epoch": self.epoch,
            "last_delta_at": self.last_delta_at,
        }
