"""Defense-latency what-if sweep."""

from __future__ import annotations

import pytest

from repro.analysis.whatif import compute_defense_sweep, measure_scenario
from repro.malware.corpus import CorpusConfig


@pytest.fixture(scope="module")
def sweep():
    return compute_defense_sweep((0.5, 1.0, 2.0), seed=3, corpus_scale=0.1)


def test_sweep_orders_scenarios(sweep):
    scales = [s.latency_scale for s in sweep.scenarios]
    assert scales == [0.5, 1.0, 2.0]


def test_same_population_across_scenarios(sweep):
    releases = {s.releases for s in sweep.scenarios}
    assert len(releases) == 1


def test_downloads_grow_with_latency(sweep):
    # tiny corpora are Poisson-noisy, so assert the endpoints rather
    # than strict monotonicity
    downloads = [s.total_downloads for s in sweep.scenarios]
    assert downloads[-1] > downloads[0]


def test_persistence_grows_with_latency(sweep):
    persists = [s.median_persist_days for s in sweep.scenarios]
    assert persists[-1] > persists[0]


def test_scenario_lookup(sweep):
    assert sweep.scenario(1.0).latency_scale == 1.0
    assert sweep.scenario(9.0) is None


def test_render(sweep):
    out = sweep.render()
    assert "defender latency" in out
    assert "0.5x" in out


def test_default_scale_matches_plain_corpus():
    """latency_scale=1.0 reproduces the unmodified corpus exactly."""
    baseline = measure_scenario(CorpusConfig(seed=3, scale=0.1))
    scenario = measure_scenario(
        CorpusConfig(seed=3, scale=0.1, detection_latency_scale=1.0)
    )
    assert scenario.total_downloads == baseline.total_downloads
    assert scenario.median_persist_days == baseline.median_persist_days


def test_latency_scale_preserves_world_determinism():
    """Adding the knob must not perturb the canonical world: building
    with the default config twice still agrees."""
    from repro.world import WorldConfig, build_world

    a = build_world(WorldConfig(seed=5, scale=0.05))
    b = build_world(WorldConfig(seed=5, scale=0.05, detection_latency_scale=1.0))
    downloads_a = [r.downloads for _c, r in a.corpus.releases()]
    downloads_b = [r.downloads for _c, r in b.corpus.releases()]
    assert downloads_a == downloads_b
