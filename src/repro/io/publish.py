"""Dataset publication (the paper's transparency website).

Section II-D: "We build a website to publish all malicious package names
(sources) with their signatures (e.g., MD5 hashes) ... We also list all
package groups (manual labeling) so the researcher can identify which
package to use". This module generates that publication from a collected
dataset and its MALGRAPH:

* ``index.json`` — machine-readable manifest: per-package coordinates,
  sources, SHA256/MD5 signatures, availability and group memberships;
* ``index.md`` — the human-readable site front page with summary tables;
* ``groups.json`` — per-kind group listings (DG/DeG/SG/CG members).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.collection.records import DatasetEntry
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph

PathLike = Union[str, Path]

_KINDS = (GroupKind.DG, GroupKind.DEG, GroupKind.SG, GroupKind.CG)


def _md5(entry: DatasetEntry) -> Optional[str]:
    if entry.artifact is None:
        return None
    return hashlib.md5(entry.artifact.canonical_code_bytes()).hexdigest()


@dataclass
class PublicationManifest:
    """In-memory form of the published dataset."""

    packages: List[dict]
    groups: Dict[str, List[dict]]
    summary: dict

    def to_index_json(self) -> str:
        return json.dumps(
            {"summary": self.summary, "packages": self.packages},
            indent=2,
            sort_keys=True,
        )

    def to_groups_json(self) -> str:
        return json.dumps(self.groups, indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        lines = [
            "# OSS Malicious Package Dataset",
            "",
            f"Packages: **{self.summary['packages']}** "
            f"({self.summary['available']} with artifacts, "
            f"{self.summary['unavailable']} names-only) across "
            f"{len(self.summary['ecosystems'])} ecosystems.",
            "",
            "| Ecosystem | Packages |",
            "|---|---|",
        ]
        for ecosystem, count in sorted(self.summary["ecosystems"].items()):
            lines.append(f"| {ecosystem} | {count} |")
        lines += ["", "| Group kind | Groups | Grouped packages |", "|---|---|---|"]
        for kind in _KINDS:
            listed = self.groups.get(kind.value, [])
            members = sum(len(g["members"]) for g in listed)
            lines.append(f"| {kind.value} | {len(listed)} | {members} |")
        lines += [
            "",
            "Per-package signatures and group labels are in `index.json`; "
            "full group membership is in `groups.json`.",
            "",
        ]
        return "\n".join(lines)


def build_manifest(malgraph: MalGraph) -> PublicationManifest:
    """Assemble the publication manifest from a built MALGRAPH."""
    group_labels: Dict[Tuple[str, str, str], Dict[str, str]] = {}
    groups_out: Dict[str, List[dict]] = {}
    for kind in _KINDS:
        listed = []
        for idx, group in enumerate(malgraph.groups(kind)):
            group_id = f"{kind.value}-{idx:04d}"
            members = [str(m.package) for m in group.members]
            listed.append(
                {
                    "id": group_id,
                    "size": group.size,
                    "ecosystem": group.ecosystem,
                    "first_day": group.first_day,
                    "last_day": group.last_day,
                    "members": members,
                }
            )
            for member in group.members:
                key = (
                    member.package.ecosystem,
                    member.package.name,
                    member.package.version,
                )
                group_labels.setdefault(key, {})[kind.value] = group_id
        groups_out[kind.value] = listed

    packages = []
    ecosystems: Dict[str, int] = {}
    for entry in malgraph.dataset.entries:
        key = (entry.package.ecosystem, entry.package.name, entry.package.version)
        ecosystems[entry.package.ecosystem] = (
            ecosystems.get(entry.package.ecosystem, 0) + 1
        )
        packages.append(
            {
                "ecosystem": entry.package.ecosystem,
                "name": entry.package.name,
                "version": entry.package.version,
                "sources": sorted(entry.sources),
                "available": entry.available,
                "sha256": entry.sha256(),
                "md5": _md5(entry),
                "release_day": entry.release_day,
                "groups": group_labels.get(key, {}),
            }
        )
    summary = {
        "packages": len(packages),
        "available": sum(1 for p in packages if p["available"]),
        "unavailable": sum(1 for p in packages if not p["available"]),
        "ecosystems": ecosystems,
    }
    return PublicationManifest(
        packages=packages, groups=groups_out, summary=summary
    )


def publish_dataset(malgraph: MalGraph, directory: PathLike) -> Path:
    """Write index.json, groups.json and index.md under ``directory``."""
    manifest = build_manifest(malgraph)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "index.json").write_text(manifest.to_index_json())
    (directory / "groups.json").write_text(manifest.to_groups_json())
    (directory / "index.md").write_text(manifest.to_markdown())
    return directory
