"""Connected-subgraph groups: DG, DeG, SG, CG (Section III-B).

A group is a connected component of one edge type's subgraph. Groups
carry the per-group measurements the analyses need: ecosystem, size,
first/last release (the active period of Fig. 9) and the release-ordered
member sequence used by the RQ4 evolution analyses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.collection.records import DatasetEntry, MalwareDataset
from repro.core.graph import EdgeType, PropertyGraph


class GroupKind(str, Enum):
    """The paper's group abbreviations."""

    DG = "DG"  # duplicated group
    DEG = "DeG"  # dependency group
    SG = "SG"  # similarity group
    CG = "CG"  # co-existing group

    @property
    def edge_type(self) -> EdgeType:
        return _KIND_TO_EDGE[self]


_KIND_TO_EDGE = {
    GroupKind.DG: EdgeType.DUPLICATED,
    GroupKind.DEG: EdgeType.DEPENDENCY,
    GroupKind.SG: EdgeType.SIMILAR,
    GroupKind.CG: EdgeType.COEXISTING,
}


@dataclass
class PackageGroup:
    """One malware family / attack campaign group."""

    kind: GroupKind
    members: List[DatasetEntry]

    def __post_init__(self) -> None:
        self.members = sorted(
            self.members,
            key=lambda e: (
                e.release_day if e.release_day is not None else 1 << 30,
                str(e.package),
            ),
        )

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def ecosystem(self) -> str:
        """Dominant ecosystem of the group."""
        counts = Counter(e.package.ecosystem for e in self.members)
        return counts.most_common(1)[0][0]

    def release_days(self) -> List[int]:
        return [e.release_day for e in self.members if e.release_day is not None]

    @property
    def first_day(self) -> Optional[int]:
        days = self.release_days()
        return min(days) if days else None

    @property
    def last_day(self) -> Optional[int]:
        days = self.release_days()
        return max(days) if days else None

    @property
    def active_period_days(self) -> Optional[int]:
        """t_l - t_f: the attack campaign's active period (Fig. 9)."""
        days = self.release_days()
        if not days:
            return None
        return max(days) - min(days)

    def ordered_downloads(self) -> List[int]:
        """Download counts in release order (Fig. 11's series)."""
        return [
            e.downloads
            for e in self.members
            if e.release_day is not None
        ]

    # -- ground-truth validation helpers ------------------------------------
    def campaign_ids(self) -> List[str]:
        return sorted({e.campaign_id for e in self.members if e.campaign_id})

    @property
    def purity(self) -> float:
        """Fraction of members belonging to the dominant true campaign."""
        labels = [e.campaign_id for e in self.members if e.campaign_id]
        if not labels:
            return 0.0
        return Counter(labels).most_common(1)[0][1] / len(labels)


def extract_groups(
    graph: PropertyGraph, dataset: MalwareDataset, kind: GroupKind
) -> List[PackageGroup]:
    """Connected components of one edge type as :class:`PackageGroup`s."""
    components = graph.connected_components([kind.edge_type])
    return groups_from_components(graph, dataset, kind, components)


def groups_from_components(
    graph: PropertyGraph,
    dataset: MalwareDataset,
    kind: GroupKind,
    components: Sequence[Sequence[str]],
) -> List[PackageGroup]:
    """:class:`PackageGroup`s from precomputed components.

    The delta engine's incremental component trackers feed their
    components through here, so incremental and cold group extraction
    share one materialisation (and one sort order).
    """
    groups: List[PackageGroup] = []
    for component in components:
        members: List[DatasetEntry] = []
        for node in component:
            attrs = graph.node(node)
            ecosystem = attrs["ecosystem"]
            name = attrs["name"]
            version = attrs["version"]
            from repro.ecosystem.package import PackageId

            entry = dataset.get(PackageId(ecosystem, name, version))
            if entry is not None:
                members.append(entry)
        if len(members) >= 2:
            groups.append(PackageGroup(kind=kind, members=members))
    groups.sort(key=lambda g: (-g.size, str(g.members[0].package)))
    return groups


def groups_by_ecosystem(
    groups: Sequence[PackageGroup],
) -> Dict[str, List[PackageGroup]]:
    """Bucket groups by dominant ecosystem (Table VII rows)."""
    buckets: Dict[str, List[PackageGroup]] = {}
    for group in groups:
        buckets.setdefault(group.ecosystem, []).append(group)
    return buckets
