"""Columnar corpus layer (DESIGN.md §12).

Flat numpy tables + interned string pools for the three hot corpora —
package/version records, lifecycle event streams, and the edge census —
with a lazy dataclass facade so every existing consumer keeps its
`MalwareDataset` contract while hot paths read arrays.
"""

from repro.core.columnar.edges import (
    census,
    coexisting_row_groups,
    coexisting_stats,
    dependency_pair_rows,
    dependency_stats,
    duplicated_row_groups,
    duplicated_stats,
)
from repro.core.columnar.events import EventTable
from repro.core.columnar.facade import ColumnarMalwareDataset
from repro.core.columnar.io import (
    load_columnar,
    load_event_table,
    save_columnar,
    save_event_table,
)
from repro.core.columnar.merge import merge_columnar
from repro.core.columnar.pool import NULL, StringPool
from repro.core.columnar.tables import ColumnarBuilder, ColumnarDataset

__all__ = [
    "NULL",
    "StringPool",
    "ColumnarBuilder",
    "ColumnarDataset",
    "ColumnarMalwareDataset",
    "EventTable",
    "census",
    "coexisting_row_groups",
    "coexisting_stats",
    "dependency_pair_rows",
    "dependency_stats",
    "duplicated_row_groups",
    "duplicated_stats",
    "load_columnar",
    "load_event_table",
    "merge_columnar",
    "save_columnar",
    "save_event_table",
]
