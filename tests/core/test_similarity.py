"""Similarity pipeline: AST → embedding → growing-k K-Means → groups,
including the automated false-positive split."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.similarity import (
    SimilarityConfig,
    _similarity_components,
    cluster_artifacts,
)
from repro.ecosystem.package import make_artifact
from repro.malware.behaviors import BEHAVIORS, get_behavior
from repro.malware.codegen import generate_source_tree, make_style, mutate_code


def _campaign_artifacts(behavior_key: str, style_seed: int, count: int, prefix: str):
    """`count` CC-mutated variants of one campaign's code base."""
    behavior = get_behavior(behavior_key)
    style = make_style(style_seed)
    tree = generate_source_tree(behavior, style, f"pkg_{prefix}")
    rng = random.Random(style_seed)
    artifacts = []
    files = dict(tree.files)
    for idx in range(count):
        if idx:
            files = mutate_code(files, rng)
        artifacts.append(
            make_artifact("pypi", f"{prefix}-{idx}", "1.0.0", dict(files))
        )
    return artifacts


def test_cluster_recovers_campaigns():
    """Three synthetic campaigns come back as three groups."""
    artifacts = (
        _campaign_artifacts("credential-stealer", 11, 6, "alpha")
        + _campaign_artifacts("cryptominer", 22, 5, "beta")
        + _campaign_artifacts("backdoor-shell", 33, 7, "gamma")
    )
    # max_k caps the growth loop: with only 18 points the default cap
    # (n // 2) fragments the three campaigns.
    result = cluster_artifacts(artifacts, SimilarityConfig(seed=0, max_k=3))
    assert result.group_count == 3
    # members of one campaign share a label
    labels = result.labels
    assert len(set(labels[0:6].tolist())) == 1
    assert len(set(labels[6:11].tolist())) == 1
    assert len(set(labels[11:18].tolist())) == 1
    # campaigns are separated
    assert len({labels[0], labels[6], labels[11]}) == 3


def test_cluster_empty_input():
    result = cluster_artifacts([])
    assert result.groups == []
    assert result.labels.size == 0
    assert result.kmeans_k == 0


def test_singletons_are_unlabelled():
    """A lone artifact unlike everything else gets label -1 (groups need
    two members, per the connected-subgraph semantics)."""
    artifacts = _campaign_artifacts("credential-stealer", 44, 4, "main")
    loner = make_artifact(
        "pypi", "loner", "0.1",
        {"x/weird.py": "class Unique:\n    marker = 'zzz-one-of-a-kind'\n"},
    )
    result = cluster_artifacts(artifacts + [loner], SimilarityConfig(seed=1))
    assert result.labels[-1] == -1
    assert all(idx != 4 for group in result.groups for idx in group)


def test_groups_are_disjoint_and_sorted():
    artifacts = (
        _campaign_artifacts("downloader", 55, 8, "a")
        + _campaign_artifacts("keylogger", 66, 3, "b")
    )
    result = cluster_artifacts(artifacts, SimilarityConfig(seed=2))
    seen = set()
    for group in result.groups:
        assert group == sorted(group)
        assert not (set(group) & seen)
        seen.update(group)
    sizes = [len(g) for g in result.groups]
    assert sizes == sorted(sizes, reverse=True)


def test_min_similarity_split_removes_false_positives():
    """With the FP pass off, loosely attached members may share a group;
    the cosine split only ever refines groups, never merges them."""
    artifacts = (
        _campaign_artifacts("dns-exfiltrator", 77, 5, "x")
        + _campaign_artifacts("discord-stealer", 88, 5, "y")
    )
    raw = cluster_artifacts(
        artifacts, SimilarityConfig(seed=3, min_similarity=None)
    )
    refined = cluster_artifacts(
        artifacts, SimilarityConfig(seed=3, min_similarity=0.9)
    )
    assert refined.group_count >= raw.group_count
    # refinement preserves: members grouped after the split were grouped before
    raw_label = {i: raw.labels[i] for i in range(len(artifacts))}
    for group in refined.groups:
        raw_labels = {raw_label[i] for i in group}
        assert len(raw_labels) == 1


def test_identical_artifacts_share_group():
    base = _campaign_artifacts("env-beacon", 99, 1, "dup")[0]
    clones = [
        make_artifact("pypi", f"dup-{i}", "1.0.0", dict(base.files))
        for i in range(4)
    ]
    result = cluster_artifacts(clones, SimilarityConfig(seed=4))
    assert result.group_count == 1
    assert len(result.groups[0]) == 4


def test_similarity_components_threshold_behaviour():
    X = np.array(
        [
            [1.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
        ]
    )
    members = np.array([0, 1, 2])
    strict = _similarity_components(X, members, threshold=0.99)
    assert sorted(sorted(c) for c in strict) == [[0, 1], [2]]
    loose = _similarity_components(X, members, threshold=-1.0)
    assert sorted(sorted(c) for c in loose) == [[0, 1, 2]]


def test_similarity_components_single_unique_vector():
    X = np.tile(np.array([0.6, 0.8]), (5, 1))
    members = np.arange(5)
    components = _similarity_components(X, members, threshold=0.99)
    assert [sorted(c) for c in components] == [[0, 1, 2, 3, 4]]


def test_trace_records_growth():
    artifacts = sum(
        (
            _campaign_artifacts(b.key, 100 + i, 4, f"t{i}")
            for i, b in enumerate(BEHAVIORS[:5])
        ),
        [],
    )
    result = cluster_artifacts(artifacts, SimilarityConfig(seed=5))
    assert result.trace, "growth trace is recorded"
    assert result.trace[0].k == 3  # the paper starts at k = 3
