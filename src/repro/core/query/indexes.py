"""Adjacency and attribute indexes over MALGRAPH, built once per graph.

The executor never walks :class:`~repro.core.graph.PropertyGraph`
structures directly: a :class:`GraphIndexes` snapshot materialises

* **per-edge-type neighbour maps** — forward (``out``), reverse
  (``into``) and undirected (``any_dir``) sorted neighbour tuples, with
  cliques expanded.  The symmetric relations (duplicated / similar /
  co-existing) share one map for all three directions; dependency gets
  true directed maps when built over a :class:`MalGraph` (the edge
  builders record who depends on whom);
* **node-attribute maps** — every node's merged attributes (the graph's
  seven plus, over a ``MalGraph``, the dataset's ground-truth
  ``campaign`` / ``actor`` / ``family`` / ``archetype`` / ``downloads``
  and the node's ``dg`` / ``deg`` / ``sg`` / ``cg`` group ids);
* **inverted attribute indexes** (:data:`INDEXED_ATTRS`) used by the
  planner to seed traversals from the most selective filter;
* **group-membership maps** — group id ↔ member node ids, with ids
  matching :class:`repro.service.index.IntelIndex` (``SG-0001``, …).

Indexes are cached on the graph object behind a lock (the same
double-checked pattern :meth:`MalGraph.groups` uses) and invalidated by
the graph's mutation counter, so callers may simply call
:func:`graph_indexes` on every query.

The delta engine additionally records an :class:`IndexPatch` journal on
the graph, keyed on the same mutation counter: when a cached snapshot is
stale but an unbroken ``from_version -> to_version`` patch chain covers
the gap, :func:`graph_indexes` patches the snapshot incrementally —
copy-on-write, refreshing only touched nodes — instead of rebuilding
from scratch. Any version gap the journal cannot bridge (direct graph
mutation, journal trimmed) falls back to a full rebuild, so a stale
read is impossible either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.graph import EdgeType, PropertyGraph

#: attributes with an inverted index (equality filters on these seed
#: the traversal instead of scanning every node)
INDEXED_ATTRS = (
    "id",
    "name",
    "ecosystem",
    "sha256",
    "campaign",
    "actor",
    "family",
    "dg",
    "deg",
    "sg",
    "cg",
)

_EMPTY: Tuple[str, ...] = ()


@dataclass
class GraphIndexes:
    """One graph's materialised query indexes (immutable once built)."""

    nodes: Tuple[str, ...]
    attrs: Dict[str, Dict[str, Any]]
    out: Dict[EdgeType, Dict[str, Tuple[str, ...]]]
    into: Dict[EdgeType, Dict[str, Tuple[str, ...]]]
    any_dir: Dict[EdgeType, Dict[str, Tuple[str, ...]]]
    by_attr: Dict[str, Dict[Any, Tuple[str, ...]]]
    group_members: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    groups_of: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    version: int = 0
    enriched: bool = False
    build_seconds: float = 0.0

    # -- lookups ----------------------------------------------------------
    def node_attrs(self, node: str) -> Dict[str, Any]:
        return self.attrs.get(node, {})

    def lookup(self, attr: str, value: Any) -> Tuple[str, ...]:
        """Sorted node ids with ``attr == value`` (indexed attrs only)."""
        return self.by_attr.get(attr, {}).get(value, _EMPTY)

    def direction_map(
        self, edge_type: EdgeType, direction: str
    ) -> Dict[str, Tuple[str, ...]]:
        if direction == "out":
            return self.out[edge_type]
        if direction == "in":
            return self.into[edge_type]
        return self.any_dir[edge_type]

    def neighbors(
        self,
        node: str,
        types: Sequence[EdgeType] = (),
        direction: str = "any",
    ) -> List[str]:
        """Sorted neighbours of ``node`` over the chosen types/direction.

        ``types`` empty means every edge type.
        """
        chosen = tuple(types) if types else tuple(EdgeType)
        if len(chosen) == 1:
            return list(self.direction_map(chosen[0], direction).get(node, _EMPTY))
        merged: set = set()
        for edge_type in chosen:
            merged.update(self.direction_map(edge_type, direction).get(node, _EMPTY))
        return sorted(merged)

    def candidate_count(self, attr: str, value: Any) -> Optional[int]:
        """Selectivity estimate for ``attr == value``; None if unindexed."""
        index = self.by_attr.get(attr)
        if index is None:
            return None
        return len(index.get(value, _EMPTY))


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------

def _adjacency(graph: PropertyGraph) -> Dict[EdgeType, Dict[str, Tuple[str, ...]]]:
    """Undirected neighbour tuples per edge type, cliques expanded."""
    maps: Dict[EdgeType, Dict[str, Tuple[str, ...]]] = {}
    for edge_type in EdgeType:
        per_node: Dict[str, Tuple[str, ...]] = {}
        for node in graph.touched_nodes(edge_type):
            per_node[node] = tuple(sorted(graph.neighbors(node, edge_type)))
        maps[edge_type] = per_node
    return maps


def _directed_dependency(
    malgraph,
) -> Tuple[Dict[str, Tuple[str, ...]], Dict[str, Tuple[str, ...]]]:
    """(out, into) dependency maps from the edge builder's directed pairs."""
    from repro.core.edges import node_id

    forward: Dict[str, set] = {}
    backward: Dict[str, set] = {}
    for entry, target in malgraph.dependency_edges:
        u, v = node_id(entry.package), node_id(target.package)
        forward.setdefault(u, set()).add(v)
        backward.setdefault(v, set()).add(u)
    return (
        {node: tuple(sorted(found)) for node, found in forward.items()},
        {node: tuple(sorted(found)) for node, found in backward.items()},
    )


def build_indexes(
    graph: PropertyGraph, malgraph=None
) -> GraphIndexes:
    """Build a :class:`GraphIndexes` snapshot (no caching; see
    :func:`graph_indexes` for the cached entry point)."""
    started = time.perf_counter()
    attrs: Dict[str, Dict[str, Any]] = {
        node: {"id": node, **graph.node(node)} for node in graph.nodes()
    }

    any_dir = _adjacency(graph)
    out = dict(any_dir)
    into = dict(any_dir)

    group_members: Dict[str, Tuple[str, ...]] = {}
    groups_of: Dict[str, List[str]] = {}
    if malgraph is not None:
        from repro.core.edges import node_id
        from repro.core.groups import GroupKind

        dep_out, dep_in = _directed_dependency(malgraph)
        out[EdgeType.DEPENDENCY] = dep_out
        into[EdgeType.DEPENDENCY] = dep_in

        for entry in malgraph.dataset.entries:
            node = node_id(entry.package)
            held = attrs.get(node)
            if held is None:
                continue
            held["campaign"] = entry.campaign_id
            held["actor"] = entry.actor
            held["family"] = entry.behavior_key
            held["archetype"] = entry.archetype
            held["downloads"] = entry.downloads

        for kind in GroupKind:
            for i, group in enumerate(malgraph.groups(kind)):
                group_id = f"{kind.value}-{i:04d}"
                members = tuple(
                    sorted(node_id(m.package) for m in group.members)
                )
                group_members[group_id] = members
                for member in members:
                    groups_of.setdefault(member, []).append(group_id)
                    if member in attrs:
                        attrs[member][kind.value.lower()] = group_id

    by_attr: Dict[str, Dict[Any, List[str]]] = {}
    for node in sorted(attrs):
        held = attrs[node]
        for attr in INDEXED_ATTRS:
            value = held.get(attr)
            if value is None:
                continue
            by_attr.setdefault(attr, {}).setdefault(value, []).append(node)

    return GraphIndexes(
        nodes=tuple(sorted(attrs)),
        attrs=attrs,
        out=out,
        into=into,
        any_dir=any_dir,
        by_attr={
            attr: {value: tuple(nodes) for value, nodes in buckets.items()}
            for attr, buckets in by_attr.items()
        },
        group_members=group_members,
        groups_of={
            node: tuple(held) for node, held in sorted(groups_of.items())
        },
        version=graph.version,
        enriched=malgraph is not None,
        build_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Incremental patching (fed by the delta engine)
# ---------------------------------------------------------------------------

from typing import FrozenSet  # noqa: E402  (kept near its sole users)

#: journal length bound; a chain the trimmed journal cannot cover simply
#: falls back to a full rebuild
MAX_INDEX_PATCHES = 64


@dataclass(frozen=True)
class IndexPatch:
    """One delta batch's effect on the query indexes."""

    from_version: int
    to_version: int
    removed_nodes: FrozenSet[str]
    refreshed_nodes: FrozenSet[str]
    adjacency_touched: Dict[EdgeType, FrozenSet[str]]
    groups_changed: bool


def record_index_patch(graph: PropertyGraph, patch: IndexPatch) -> None:
    """Append one patch to the graph's journal (no-ops are dropped)."""
    if patch.to_version == patch.from_version:
        return
    journal = getattr(graph, "_index_patch_journal", None)
    if journal is None:
        journal = []
        graph._index_patch_journal = journal  # type: ignore[attr-defined]
    journal.append(patch)
    if len(journal) > MAX_INDEX_PATCHES:
        del journal[: len(journal) - MAX_INDEX_PATCHES]


def _patch_chain(
    graph: PropertyGraph, from_version: int
) -> Optional[List[IndexPatch]]:
    """Contiguous patches covering from_version -> graph.version, or None."""
    journal: List[IndexPatch] = getattr(graph, "_index_patch_journal", None) or []
    chain: List[IndexPatch] = []
    want = from_version
    for patch in journal:
        if patch.from_version == want:
            chain.append(patch)
            want = patch.to_version
    if chain and want == graph.version:
        return chain
    return None


def apply_index_patches(
    held: GraphIndexes,
    graph: PropertyGraph,
    patches: Sequence[IndexPatch],
    malgraph=None,
) -> GraphIndexes:
    """A fresh snapshot equal to ``build_indexes(graph, malgraph)``,
    derived from ``held`` by refreshing only what the patches touched.

    Copy-on-write: untouched attr dicts and neighbour tuples are shared
    with ``held`` (both snapshots are immutable by convention).
    """
    started = time.perf_counter()
    removed_any: set = set()
    refreshed_any: set = set()
    touched: Dict[EdgeType, set] = {t: set() for t in EdgeType}
    groups_changed = False
    for patch in patches:
        removed_any |= patch.removed_nodes
        refreshed_any |= patch.refreshed_nodes
        for edge_type, nodes in patch.adjacency_touched.items():
            touched[edge_type] |= nodes
        groups_changed = groups_changed or patch.groups_changed
    # the final graph resolves remove-then-republish across the chain
    final_removed = {n for n in removed_any if not graph.has_node(n)}
    final_refresh = {
        n for n in (refreshed_any | removed_any) if graph.has_node(n)
    }

    attrs = dict(held.attrs)
    for node in final_removed:
        attrs.pop(node, None)
    entry_of = {}
    if malgraph is not None:
        from repro.core.edges import node_id

        entry_of = {
            node_id(entry.package): entry
            for entry in malgraph.dataset.entries
        }
    for node in final_refresh:
        fresh: Dict[str, Any] = {"id": node, **graph.node(node)}
        entry = entry_of.get(node)
        if entry is not None:
            fresh["campaign"] = entry.campaign_id
            fresh["actor"] = entry.actor
            fresh["family"] = entry.behavior_key
            fresh["archetype"] = entry.archetype
            fresh["downloads"] = entry.downloads
        attrs[node] = fresh

    copied = set(final_refresh)

    def mutable(node: str) -> Dict[str, Any]:
        if node not in copied:
            attrs[node] = dict(attrs[node])
            copied.add(node)
        return attrs[node]

    any_dir: Dict[EdgeType, Dict[str, Tuple[str, ...]]] = {}
    for edge_type in EdgeType:
        per_node = dict(held.any_dir[edge_type])
        for node in touched[edge_type] | final_removed:
            if not graph.has_node(node):
                per_node.pop(node, None)
                continue
            found = graph.neighbors(node, edge_type)
            if found:
                per_node[node] = tuple(sorted(found))
            else:
                per_node.pop(node, None)
        any_dir[edge_type] = per_node
    out = dict(any_dir)
    into = dict(any_dir)

    group_members = held.group_members
    groups_of = held.groups_of
    if malgraph is not None:
        dep_out, dep_in = _directed_dependency(malgraph)
        out[EdgeType.DEPENDENCY] = dep_out
        into[EdgeType.DEPENDENCY] = dep_in
        if groups_changed:
            from repro.core.edges import node_id
            from repro.core.groups import GroupKind

            for group_id, members in held.group_members.items():
                kind_attr = group_id.split("-", 1)[0].lower()
                for member in members:
                    if member in attrs:
                        mutable(member).pop(kind_attr, None)
            group_members = {}
            fresh_groups_of: Dict[str, List[str]] = {}
            for kind in GroupKind:
                for i, group in enumerate(malgraph.groups(kind)):
                    group_id = f"{kind.value}-{i:04d}"
                    members = tuple(
                        sorted(node_id(m.package) for m in group.members)
                    )
                    group_members[group_id] = members
                    for member in members:
                        fresh_groups_of.setdefault(member, []).append(group_id)
                        if member in attrs:
                            mutable(member)[kind.value.lower()] = group_id
            groups_of = {
                node: tuple(ids)
                for node, ids in sorted(fresh_groups_of.items())
            }

    by_attr: Dict[str, Dict[Any, List[str]]] = {}
    for node in sorted(attrs):
        node_held = attrs[node]
        for attr in INDEXED_ATTRS:
            value = node_held.get(attr)
            if value is None:
                continue
            by_attr.setdefault(attr, {}).setdefault(value, []).append(node)

    return GraphIndexes(
        nodes=tuple(sorted(attrs)),
        attrs=attrs,
        out=out,
        into=into,
        any_dir=any_dir,
        by_attr={
            attr: {value: tuple(nodes) for value, nodes in buckets.items()}
            for attr, buckets in by_attr.items()
        },
        group_members=group_members,
        groups_of=groups_of,
        version=graph.version,
        enriched=held.enriched,
        build_seconds=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Per-graph cache
# ---------------------------------------------------------------------------

#: guards creation of the per-graph cache slot itself
_CACHE_SETUP_LOCK = threading.Lock()


def _cache_slot(graph: PropertyGraph) -> Dict:
    """The graph's cache slot ``{"lock": Lock, "plain": ..., "enriched": ...}``."""
    slot = getattr(graph, "_query_index_cache", None)
    if slot is None:
        with _CACHE_SETUP_LOCK:
            slot = getattr(graph, "_query_index_cache", None)
            if slot is None:
                slot = {"lock": threading.Lock()}
                graph._query_index_cache = slot  # type: ignore[attr-defined]
    return slot


def graph_indexes(graph: PropertyGraph, malgraph=None) -> GraphIndexes:
    """The graph's cached :class:`GraphIndexes`, built on first use.

    Double-checked under a per-graph lock (the
    :meth:`MalGraph.groups` memoisation pattern), so concurrent first
    queries — e.g. two HTTP server threads — build the indexes exactly
    once. A mutated graph (version bump) transparently rebuilds.
    """
    key = "enriched" if malgraph is not None else "plain"
    slot = _cache_slot(graph)
    held = slot.get(key)
    if held is not None and held.version == graph.version:
        return held
    with slot["lock"]:
        held = slot.get(key)
        if held is not None and held.version == graph.version:
            return held
        if held is not None:
            chain = _patch_chain(graph, held.version)
            if chain is not None:
                built = apply_index_patches(held, graph, chain, malgraph=malgraph)
                slot[key] = built
                return built
        built = build_indexes(graph, malgraph=malgraph)
        slot[key] = built
        return built
