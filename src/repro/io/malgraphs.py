"""Save / load a built MALGRAPH.

The graph itself (nodes, pairwise edges, cliques) serialises through
:meth:`repro.core.graph.PropertyGraph.to_dict`; the group structures the
:class:`~repro.core.malgraph.MalGraph` facade carries alongside it are
stored as node-id lists and re-linked against the owning dataset's
entries on load. Deserialisation therefore needs the *same* collected
dataset the graph was built from — the pipeline cache guarantees that by
addressing both artifacts with one configuration fingerprint.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import json

import numpy as np

from repro.collection.records import DatasetEntry, MalwareDataset
from repro.core.edges import SimilarBuildResult, node_id
from repro.core.graph import PropertyGraph
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityResult
from repro.errors import DatasetError

PathLike = Union[str, Path]

MALGRAPH_FILENAME = "malgraph.json"


def malgraph_to_dict(malgraph: MalGraph) -> dict:
    """Serialise everything :class:`MalGraph` holds except the dataset."""
    clustering = malgraph.similar.clustering
    return {
        "graph": malgraph.graph.to_dict(),
        "similar": {
            "groups": [
                [node_id(e.package) for e in group]
                for group in malgraph.similar.groups
            ],
            "embedded": [
                node_id(e.package) for e in malgraph.similar.embedded_entries
            ],
            "kmeans_k": clustering.kmeans_k,
            "labels": [int(label) for label in clustering.labels],
        },
        "duplicated_groups": [
            [node_id(e.package) for e in group]
            for group in malgraph.duplicated_groups
        ],
        "dependency_edges": [
            [node_id(a.package), node_id(b.package)]
            for a, b in malgraph.dependency_edges
        ],
        "coexisting_groups": [
            [node_id(e.package) for e in group]
            for group in malgraph.coexisting_groups
        ],
    }


def malgraph_from_dict(raw: dict, dataset: MalwareDataset) -> MalGraph:
    """Re-link a serialised MALGRAPH against its dataset's entries.

    Raises :class:`~repro.errors.DatasetError` when a stored node id has
    no matching dataset entry — the sign of a payload/dataset mismatch,
    which cache readers treat as a corrupt entry and rebuild from.
    """
    by_node: Dict[str, DatasetEntry] = {
        node_id(entry.package): entry for entry in dataset.entries
    }

    def entry_of(node: str) -> DatasetEntry:
        try:
            return by_node[node]
        except KeyError:
            raise DatasetError(
                f"serialised MALGRAPH references unknown package node {node!r}"
            ) from None

    def entries_of(nodes: List[str]) -> List[DatasetEntry]:
        return [entry_of(node) for node in nodes]

    similar_raw = raw["similar"]
    embedded = entries_of(similar_raw["embedded"])
    index_of = {node: i for i, node in enumerate(similar_raw["embedded"])}
    clustering = SimilarityResult(
        groups=[
            sorted(index_of[node] for node in group)
            for group in similar_raw["groups"]
        ],
        labels=np.asarray(similar_raw["labels"], dtype=np.int64),
        kmeans_k=similar_raw["kmeans_k"],
    )
    similar = SimilarBuildResult(
        groups=[entries_of(group) for group in similar_raw["groups"]],
        clustering=clustering,
        embedded_entries=embedded,
    )
    return MalGraph(
        graph=PropertyGraph.from_dict(raw["graph"]),
        dataset=dataset,
        similar=similar,
        duplicated_groups=[
            entries_of(group) for group in raw.get("duplicated_groups", [])
        ],
        dependency_edges=[
            (entry_of(u), entry_of(v))
            for u, v in raw.get("dependency_edges", [])
        ],
        coexisting_groups=[
            entries_of(group) for group in raw.get("coexisting_groups", [])
        ],
    )


def canonical_malgraph_dict(malgraph: MalGraph) -> dict:
    """:func:`malgraph_to_dict` in canonical form.

    A delta-evolved graph holds the same cliques as a cold rebuild but
    in a different insertion order (surgery replaces cliques at the
    end); clique order is the *only* legitimate divergence, so the
    canonical form sorts each edge type's clique list. Everything else —
    nodes, pairwise edges (already sorted), similarity groups, the
    facade's group lists — is order-deterministic by construction.
    """
    raw = malgraph_to_dict(malgraph)
    raw["graph"]["cliques"] = {
        type_name: sorted(cliques)
        for type_name, cliques in raw["graph"]["cliques"].items()
    }
    return raw


def canonical_malgraph_json(malgraph: MalGraph) -> str:
    """Canonical JSON: the delta engine's byte-identity anchor.

    ``apply_delta(base, events)`` and a cold ``MalGraph.build`` over the
    post-events collection must produce identical strings here.
    """
    return json.dumps(canonical_malgraph_dict(malgraph), sort_keys=True)


def save_malgraph_bundle(malgraph: MalGraph, directory: PathLike) -> Path:
    """Dataset + graph in one directory (a delta-evolved graph's dataset
    has no collection fingerprint of its own, so the pair must travel
    together)."""
    from repro.io.datasets import save_dataset

    directory = Path(directory)
    save_dataset(malgraph.dataset, directory)
    save_malgraph(malgraph, directory)
    return directory


def load_malgraph_bundle(directory: PathLike) -> MalGraph:
    """Load a bundle written by :func:`save_malgraph_bundle`."""
    from repro.io.datasets import load_dataset

    dataset = load_dataset(directory)
    return load_malgraph(directory, dataset)


def save_malgraph(malgraph: MalGraph, directory: PathLike) -> Path:
    """Write ``malgraph.json`` under ``directory`` (dataset not included)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / MALGRAPH_FILENAME
    target.write_text(json.dumps(malgraph_to_dict(malgraph), sort_keys=True))
    return directory


def load_malgraph(directory: PathLike, dataset: MalwareDataset) -> MalGraph:
    """Load a MALGRAPH written by :func:`save_malgraph`."""
    payload = (Path(directory) / MALGRAPH_FILENAME).read_text()
    return malgraph_from_dict(json.loads(payload), dataset)
