"""MALGRAPH facade: build the full knowledge graph from a dataset.

This is the paper's primary contribution, assembled: nodes from the
collected dataset, all four edge types, Table II statistics and group
extraction, behind one class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Dict, List, Optional

from repro.collection.records import MalwareDataset
from repro.core.edges import (
    SimilarBuildResult,
    add_dataset_nodes,
    build_coexisting_edges,
    build_dependency_edges,
    build_duplicated_edges,
    build_similar_edges,
)
from repro.core.graph import EdgeType, GraphStats, PropertyGraph
from repro.core.groups import GroupKind, PackageGroup, extract_groups
from repro.core.similarity import SimilarityConfig


@dataclass
class MalGraph:
    """The malicious-package knowledge graph."""

    graph: PropertyGraph
    dataset: MalwareDataset
    similar: SimilarBuildResult
    duplicated_groups: List[List] = field(default_factory=list)
    dependency_edges: List = field(default_factory=list)
    coexisting_groups: List[List] = field(default_factory=list)
    _group_cache: Dict[GroupKind, List[PackageGroup]] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: MalwareDataset,
        similarity: Optional[SimilarityConfig] = None,
        store=None,
    ) -> "MalGraph":
        """Build nodes and all four edge types from a collected dataset.

        ``store`` (an :class:`repro.pipeline.store.ArtifactStore`) turns
        on the persistent embedding cache for the similar-edge stage;
        the built graph is identical with or without it.
        """
        # A SimilarityConfig() default argument would be instantiated once
        # at import time and shared across every build() call.
        similarity = similarity if similarity is not None else SimilarityConfig()
        graph = PropertyGraph()
        add_dataset_nodes(graph, dataset)
        duplicated = build_duplicated_edges(graph, dataset)
        dependency = build_dependency_edges(graph, dataset)
        similar = build_similar_edges(graph, dataset, similarity, store=store)
        coexisting = build_coexisting_edges(graph, dataset)
        return cls(
            graph=graph,
            dataset=dataset,
            similar=similar,
            duplicated_groups=duplicated,
            dependency_edges=dependency,
            coexisting_groups=coexisting,
        )

    # ------------------------------------------------------------------
    def groups(self, kind: GroupKind) -> List[PackageGroup]:
        """Connected-subgraph groups of one kind (memoised)."""
        if kind not in self._group_cache:
            self._group_cache[kind] = extract_groups(self.graph, self.dataset, kind)
        return self._group_cache[kind]

    def table2_stats(self) -> List[GraphStats]:
        """Table II: nodes / edges / degrees per subgraph (DG, DeG, SG, CG)."""
        order = [
            EdgeType.DUPLICATED,
            EdgeType.DEPENDENCY,
            EdgeType.SIMILAR,
            EdgeType.COEXISTING,
        ]
        return [self.graph.stats(edge_type) for edge_type in order]

    @property
    def node_count(self) -> int:
        return self.graph.node_count
