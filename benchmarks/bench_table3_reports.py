"""Table III — sources of security analysis reports.

Regenerates the website/report inventory by category. Paper shape:
technical-community and commercial websites publish the bulk of the
reports; news/individual/official sources contribute a long tail.
"""

from __future__ import annotations


def test_table3_reports(benchmark, artifacts, show):
    inventory = benchmark(artifacts.table3_reports)
    show("Table III: source of security analysis reports",
         inventory.render())

    rows = {row.category: row for row in inventory.rows}
    assert {"Technical Community", "Commercial org."} <= set(rows)
    top_two = sum(
        rows[c].reports for c in ("Technical Community", "Commercial org.")
    )
    total = sum(row.reports for row in inventory.rows)
    assert total > 0
    assert top_two >= total * 0.5, (
        "community + commercial publish most reports (paper: 1,061 / 1,366)"
    )
    assert sum(row.websites for row in inventory.rows) >= 10
