"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper from the
canonical deterministic world (seed=7, scale=1.0). The expensive stages
(world simulation, Section II collection, MALGRAPH build) resolve once
through the shared :mod:`repro.pipeline` artifact store — warmed on
first use (or straight from a ``python -m repro warm`` disk cache) — so
each bench times only the analysis it reproduces; the pipeline stages
themselves, including the warm-vs-cold startup comparison, are timed
separately in ``bench_pipeline_stages.py``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.paper import PaperArtifacts, default_artifacts


@pytest.fixture(scope="session")
def artifacts() -> PaperArtifacts:
    """The canonical warmed artifact bundle shared by all benches."""
    return default_artifacts()


@pytest.fixture(scope="session")
def show():
    """Print a rendered table once, under a banner, so ``--benchmark-only``
    output doubles as the paper-style report."""

    seen = set()

    def _show(title: str, rendered: str) -> None:
        if title in seen:
            return
        seen.add(title)
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{rendered}")

    return _show
