"""Shared fixtures: session-scoped worlds so the expensive pipeline
stages build once per test run."""

from __future__ import annotations

import pytest

from repro.malware.corpus import Corpus, CorpusConfig, build_corpus
from repro.paper import PaperArtifacts, default_artifacts
from repro.world import World, WorldConfig, build_world, collect


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A fast, small ground-truth corpus (~500 releases)."""
    return build_corpus(CorpusConfig(seed=3, scale=0.15))


@pytest.fixture(scope="session")
def small_world() -> World:
    """A fast, small fully-simulated world."""
    return build_world(WorldConfig(seed=3, scale=0.15))


@pytest.fixture(scope="session")
def small_collection(small_world):
    """Collection result over the small world."""
    return collect(small_world)


@pytest.fixture(scope="session")
def small_dataset(small_collection):
    return small_collection.dataset


@pytest.fixture(scope="session")
def paper() -> PaperArtifacts:
    """The canonical full-scale artifacts (warmed once per session)."""
    return default_artifacts(seed=7, scale=1.0)
