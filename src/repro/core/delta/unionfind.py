"""Epoch-rolled incremental connected components.

The group structures (DG/DeG/SG/CG) are connected components of one edge
type's subgraph. Edge additions only ever merge components — a plain
union handles them. Edge *removals* may split a component, which
union-find famously cannot undo; instead of a fully-dynamic structure we
use the batch nature of the delta engine: all removals of one batch are
rolled up into a single *scoped recompute* of just the touched
components, and the structure's ``epoch`` advances once per batch.

The recompute is exact because of a locality argument: let ``T`` be the
surviving members of every component containing a removal touchpoint.
Any final-graph edge from ``T`` to a node outside ``T`` cannot be a base
edge (a base edge would have put both endpoints in one base component,
so the outside endpoint would itself be in ``T``) — it must have been
added this batch, and batch additions are unioned *after* the scoped
recompute. A breadth-first sweep restricted to ``T`` over the final
graph therefore reconstructs exactly the base-minus-removals
connectivity, and the addition unions layer the new edges on top.

Components are tracked as explicit member sets (union by size, smaller
relabels into larger), so membership queries and the scoped reset are
O(component) instead of O(structure).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set


class EpochUnionFind:
    """Incremental connected components over string node ids."""

    def __init__(self) -> None:
        self._comp_of: Dict[str, int] = {}
        self._members: Dict[int, Set[str]] = {}
        self._next_id = 0
        #: advanced once per applied batch (the rollup counter)
        self.epoch = 0

    # -- bootstrap ---------------------------------------------------------
    def seed(self, components: Iterable[Iterable[str]]) -> None:
        """Load the base graph's components (replaces current state)."""
        self._comp_of.clear()
        self._members.clear()
        self._next_id = 0
        for component in components:
            members = set(component)
            if len(members) < 2:
                continue
            self._register(members)

    def fork(self) -> "EpochUnionFind":
        """Independent copy (the delta engine forks base graphs)."""
        dup = EpochUnionFind()
        dup._comp_of = dict(self._comp_of)
        dup._members = {cid: set(members) for cid, members in self._members.items()}
        dup._next_id = self._next_id
        dup.epoch = self.epoch
        return dup

    def _register(self, members: Set[str]) -> int:
        cid = self._next_id
        self._next_id += 1
        self._members[cid] = members
        for node in members:
            self._comp_of[node] = cid
        return cid

    # -- queries -----------------------------------------------------------
    def component_of(self, node: str) -> Optional[Set[str]]:
        cid = self._comp_of.get(node)
        return self._members[cid] if cid is not None else None

    def components(self) -> List[Set[str]]:
        """All components, sorted exactly like
        :meth:`repro.core.graph.PropertyGraph.connected_components`."""
        return sorted(
            (set(members) for members in self._members.values()),
            key=lambda g: (-len(g), min(g)),
        )

    @property
    def component_count(self) -> int:
        return len(self._members)

    # -- mutation ----------------------------------------------------------
    def union(self, a: str, b: str) -> None:
        ca, cb = self._comp_of.get(a), self._comp_of.get(b)
        if ca is not None and ca == cb:
            return
        if ca is None and cb is None:
            self._register({a, b})
            return
        if ca is None:
            self._members[cb].add(a)
            self._comp_of[a] = cb
            return
        if cb is None:
            self._members[ca].add(b)
            self._comp_of[b] = ca
            return
        small, large = (ca, cb) if len(self._members[ca]) < len(self._members[cb]) else (cb, ca)
        for node in self._members[small]:
            self._comp_of[node] = large
        self._members[large].update(self._members.pop(small))

    def apply_batch(
        self,
        removal_touchpoints: Set[str],
        removed_nodes: Set[str],
        added_links: Sequence[Sequence[str]],
        incident: Callable[[str], Iterable[tuple]],
    ) -> None:
        """Roll one event batch into the structure (one epoch).

        ``removal_touchpoints`` are nodes incident to any removed edge or
        clique (including nodes being removed); ``removed_nodes`` leave
        the structure entirely; each of ``added_links`` is a pairwise
        edge or a clique member list added this batch; ``incident``
        reads the *final* (post-mutation) graph, yielding a node's
        adjacency as ``(key, members)`` groups with keys stable across
        calls (see :meth:`PropertyGraph.incident_groups`) — the sweep
        expands each group once, so a k-member clique costs O(k) instead
        of the O(k^2) a per-node neighbour walk would pay.
        """
        self.epoch += 1
        touched = {
            self._comp_of[node]
            for node in removal_touchpoints
            if node in self._comp_of
        }
        if touched:
            scope: Set[str] = set()
            for cid in touched:
                members = self._members.pop(cid)
                for node in members:
                    del self._comp_of[node]
                scope.update(members)
            scope -= removed_nodes
            unvisited = set(scope)
            # expansion is restricted to `unvisited`, so a group visited
            # while growing one component can never contribute to a later
            # one — the expanded set is safely shared across components
            expanded: Set[tuple] = set()
            while unvisited:
                start = unvisited.pop()
                component = {start}
                frontier = [start]
                while frontier:
                    node = frontier.pop()
                    for key, members in incident(node):
                        if key in expanded:
                            continue
                        expanded.add(key)
                        for other in members:
                            if other in unvisited:
                                unvisited.discard(other)
                                component.add(other)
                                frontier.append(other)
                if len(component) >= 2:
                    self._register(component)
                # isolated survivors drop out, matching a fresh
                # connected-components pass over the final graph
        for node in removed_nodes:
            # a removed node with no tracked component never had edges
            cid = self._comp_of.pop(node, None)
            if cid is not None:  # pragma: no cover - covered by touchpoints
                self._members[cid].discard(node)
                if len(self._members[cid]) < 2:
                    for rest in self._members.pop(cid):
                        self._comp_of.pop(rest, None)
        for link in added_links:
            if len(link) < 2:
                continue
            first = link[0]
            for other in link[1:]:
                self.union(first, other)
