"""The delta engine's correctness anchor: byte-identity with cold rebuilds.

``apply_delta(base, events)`` followed by canonical serialisation must
equal a cold ``MalGraph.build`` over the post-events collection — for
every event kind, for chained batches, and for randomized
publish/detect/remove interleavings (including remove-then-republish).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import GraphEvent, apply_events_to_dataset
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.errors import DatasetError
from repro.io.malgraphs import canonical_malgraph_json

from tests.core.helpers import dataset, entry, report

SHARED = "def payload():\n    return 'twin'\n"
VARIANTS = [
    SHARED,
    "def beta():\n    return 2\n",
    "def gamma(x):\n    return x * 3\n",
]


def _base():
    """Duplicated pair + dependency + a report: every edge type live."""
    alpha = entry("alpha", code=SHARED)
    twin = entry("twin", code=SHARED)
    beta = entry("beta", code=VARIANTS[1], dependencies=("alpha",))
    return dataset(
        [alpha, twin, beta],
        [report("r-0", [alpha.package, beta.package])],
    )


def _assert_matches_cold(evolved_graph, base_dataset, events):
    cold = MalGraph.build(apply_events_to_dataset(base_dataset, events))
    assert canonical_malgraph_json(evolved_graph) == canonical_malgraph_json(cold)
    for kind in GroupKind:
        held = [
            sorted(str(m.package) for m in g.members)
            for g in evolved_graph.groups(kind)
        ]
        expected = [
            sorted(str(m.package) for m in g.members) for g in cold.groups(kind)
        ]
        assert held == expected, kind


def test_every_event_kind_matches_cold_rebuild():
    base_ds = _base()
    base = MalGraph.build(base_ds)
    late = entry("late", code=SHARED, dependencies=("beta",))
    events = [
        GraphEvent.package_added(late),
        GraphEvent.package_detected(entry("beta", code=VARIANTS[1],
                                          dependencies=("alpha",), downloads=9)),
        GraphEvent.package_removed(entry("twin").package),
        GraphEvent.report_ingested(report("r-1", [late.package, entry("alpha").package])),
    ]
    evolved, delta = base.apply_delta(events)
    _assert_matches_cold(evolved, base_ds, events)
    assert delta.events == 4
    assert delta.epoch == 1 and evolved.delta_epoch == 1
    assert delta.packages_added == 1
    assert delta.packages_updated == 1
    assert delta.packages_removed == 1
    assert delta.reports_added == 1
    assert evolved.last_delta_at is not None
    assert delta.summary()


def test_base_is_untouched_unless_in_place():
    base_ds = _base()
    base = MalGraph.build(base_ds)
    before = canonical_malgraph_json(base)
    events = [GraphEvent.package_removed(entry("twin").package)]
    evolved, _ = base.apply_delta(events)
    assert evolved is not base
    assert canonical_malgraph_json(base) == before
    assert base.delta_epoch == 0

    same, _ = base.apply_delta(events, in_place=True)
    assert same is base
    assert base.delta_epoch == 1
    assert canonical_malgraph_json(base) == canonical_malgraph_json(evolved)


def test_chained_batches_match_cold_rebuild():
    base_ds = _base()
    graph = MalGraph.build(base_ds)
    first = [
        GraphEvent.package_added(entry("late", code=SHARED)),
        GraphEvent.package_removed(entry("twin").package),
    ]
    graph, _ = graph.apply_delta(first)
    alpha_pid = entry("alpha").package
    second = [
        GraphEvent.package_removed(alpha_pid),
        GraphEvent.package_added(entry("alpha", code=VARIANTS[2], downloads=3)),
        GraphEvent.report_ingested(report("r-2", [alpha_pid, entry("late").package])),
    ]
    graph, delta = graph.apply_delta(second)
    assert delta.epoch == 2
    _assert_matches_cold(graph, base_ds, first + second)


def test_invalid_batch_leaves_base_unchanged():
    base = MalGraph.build(_base())
    before = canonical_malgraph_json(base)
    with pytest.raises(DatasetError):
        base.apply_delta([GraphEvent.package_added(entry("alpha", code=SHARED))])
    assert canonical_malgraph_json(base) == before
    assert base.delta_epoch == 0


# ---------------------------------------------------------------------------
# Randomized interleavings
# ---------------------------------------------------------------------------

_NAMES = [f"pkg{i}" for i in range(5)]

_op = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 4), st.integers(0, 2),
              st.integers(0, 1)),
    st.tuples(st.just("detect"), st.integers(0, 4), st.integers(1, 99)),
    st.tuples(st.just("remove"), st.integers(0, 4)),
    st.tuples(st.just("report"), st.integers(0, 4), st.integers(0, 4)),
)


def _resolve(ops, base_ds, first_report_id=100):
    """Turn abstract ops into a valid event batch against ``base_ds``."""
    live = {e.package.name: e for e in base_ds.entries}
    next_report = first_report_id
    events = []
    for op in ops:
        if op[0] == "add":
            _, idx, code_idx, dep = op
            name = _NAMES[idx]
            if name in live:
                continue
            deps = ()
            if dep and live:
                deps = (sorted(live)[0],)
            held = entry(name, code=VARIANTS[code_idx], dependencies=deps)
            live[name] = held
            events.append(GraphEvent.package_added(held))
        elif op[0] == "detect":
            _, idx, downloads = op
            name = _NAMES[idx]
            if name not in live:
                continue
            prev = live[name]
            held = entry(
                name,
                code=(prev.artifact.files[sorted(prev.artifact.files)[0]]
                      if prev.artifact else None),
                dependencies=(
                    prev.artifact.metadata.dependencies if prev.artifact else ()
                ),
                downloads=downloads,
            )
            live[name] = held
            events.append(GraphEvent.package_detected(held))
        elif op[0] == "remove":
            _, idx = op
            name = _NAMES[idx]
            if name not in live:
                continue
            events.append(GraphEvent.package_removed(live.pop(name).package))
        else:
            _, a, b = op
            names = sorted(live)
            if not names:
                continue
            pids = sorted({live[names[a % len(names)]].package,
                           live[names[b % len(names)]].package})
            events.append(
                GraphEvent.report_ingested(report(f"r-{next_report}", list(pids)))
            )
            next_report += 1
    return events


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=8))
def test_random_event_sequences_match_cold_rebuild(ops):
    base_ds = dataset(
        [
            entry("pkg0", code=SHARED),
            entry("pkg1", code=SHARED),
            entry("pkg2", code=VARIANTS[1], dependencies=("pkg0",)),
        ],
        [report("r-0", [entry("pkg0").package, entry("pkg2").package])],
    )
    events = _resolve(ops, base_ds)
    if not events:
        return
    base = MalGraph.build(base_ds)
    evolved, _ = base.apply_delta(events)
    _assert_matches_cold(evolved, base_ds, events)


@settings(max_examples=8, deadline=None)
@given(
    ops_a=st.lists(_op, min_size=1, max_size=5),
    ops_b=st.lists(_op, min_size=1, max_size=5),
)
def test_random_chained_batches_match_cold_rebuild(ops_a, ops_b):
    base_ds = dataset(
        [entry("pkg0", code=SHARED), entry("pkg1", code=VARIANTS[2])],
        [],
    )
    first = _resolve(ops_a, base_ds)
    if not first:
        return
    graph = MalGraph.build(base_ds)
    graph, _ = graph.apply_delta(first)
    mid = apply_events_to_dataset(base_ds, first)
    second = _resolve(ops_b, mid, first_report_id=200)
    if second:
        graph, _ = graph.apply_delta(second)
    _assert_matches_cold(graph, base_ds, first + second)
