"""Fig. 12 — distribution of changing operations between release attempts.

Paper shape: CN (changing name) is near-universal (98.92%) because a
removed name cannot be reused; CC (changing code) is common (~40%) but
edits are small; CV and CDep are the least popular operations.
"""

from __future__ import annotations

from repro.malware.operations import ChangeOp


def test_fig12_operations(benchmark, artifacts, show):
    dist = benchmark(artifacts.fig12_operations)
    show("Fig. 12: the operation distribution", dist.render())

    pct = dist.percentages
    assert pct[ChangeOp.CN] > 90, "changing the name is near-universal"
    assert pct[ChangeOp.CN] < 100, (
        "a small share of attempts reuse the old name with a new version"
    )
    assert pct[ChangeOp.CC] > 20, "code changes are common (paper: ~40%)"
    assert pct[ChangeOp.CV] < pct[ChangeOp.CN]
    assert pct[ChangeOp.CDEP] < pct[ChangeOp.CN]
    assert min(pct[ChangeOp.CV], pct[ChangeOp.CDEP]) == min(pct.values()), (
        "CV and CDep are the least popular operations"
    )
    assert dist.avg_changed_lines < 40, (
        "code edits between attempts are small (paper: ~3.7 lines)"
    )
    assert dist.attempt_count > 100
