"""Command-line interface.

``python -m repro <command>`` regenerates the paper's evaluation, saves
or publishes datasets, exports the graph, runs queries and scans
packages::

    python -m repro warm                   # build + persist the pipeline cache
    python -m repro tables                 # every table and figure
    python -m repro show table7            # one experiment
    python -m repro cache info             # inspect the artifact cache
    python -m repro dataset --out data/    # save the collected dataset
    python -m repro publish --out site/    # the transparency website
    python -m repro export --out g/ --format graphml
    python -m repro query "MATCH (a)-[:dependency]-(b) RETURN a.name, b.name"
    python -m repro update --graph g/ events.jsonl   # delta-evolve a saved graph
    python -m repro validate               # groups vs ground truth
    python -m repro scan path/to/package/  # detector verdict for a dir

Every dataset-consuming command resolves the expensive stages through
the :mod:`repro.pipeline` artifact store; ``--cache-dir`` points it at a
specific disk cache, ``--no-disk-cache`` keeps it in-memory only, and
``--report`` / ``--report-json`` expose the per-stage hit/miss report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.paper import PaperArtifacts
from repro.world import WorldConfig

#: experiment key -> PaperArtifacts method name
EXPERIMENTS: Dict[str, str] = {
    "table1": "table1_sources",
    "fig2": "fig2_timeline",
    "table2": "table2_malgraph",
    "fig3": "fig3_example_subgraph",
    "table3": "table3_reports",
    "table4": "table4_overlap",
    "fig4": "fig4_dg_cdf",
    "table5": "table5_freshness",
    "table6": "table6_missing",
    "fig5": "fig5_causes",
    "table7": "table7_diversity",
    "fig8": "fig8_campaign",
    "fig9": "fig9_active_periods",
    "fig11": "fig11_downloads",
    "fig12": "fig12_operations",
    "table8": "table8_idn",
}


def _artifacts(args: argparse.Namespace) -> PaperArtifacts:
    # Stage-level memoisation lives in the pipeline store, so a fresh
    # facade per invocation costs nothing beyond the first resolution.
    # --jobs only changes how the similar-edge stage executes (worker
    # processes), never what it produces, so it is excluded from cache
    # fingerprints and safe to vary between invocations.
    similarity = None
    if getattr(args, "jobs", None) is not None:
        from repro.core.similarity import SimilarityConfig

        similarity = SimilarityConfig(jobs=args.jobs)
    return PaperArtifacts(
        WorldConfig(seed=args.seed, scale=args.scale), similarity=similarity
    )


def _render_experiment(artifacts: PaperArtifacts, key: str) -> str:
    result = getattr(artifacts, EXPERIMENTS[key])()
    if result is None:
        return f"{key}: no qualifying data in this world"
    return result.render()


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------

def cmd_tables(args: argparse.Namespace) -> int:
    artifacts = _artifacts(args)
    for key in EXPERIMENTS:
        print(_render_experiment(artifacts, key))
        print()
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    print(_render_experiment(_artifacts(args), args.experiment))
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    from repro.io.datasets import save_dataset

    artifacts = _artifacts(args)
    target = save_dataset(
        artifacts.dataset, args.out, include_artifacts=not args.no_artifacts
    )
    print(f"wrote {len(artifacts.dataset)} entries to {target}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    import json

    from repro.pipeline import PipelineRuntime
    from repro.reliability import FaultPlan, RetryPolicy

    plan = None
    if args.fault_plan is not None:
        if args.fault_plan in FaultPlan.PRESETS:
            plan = FaultPlan.preset(
                args.fault_plan,
                seed=args.fault_seed if args.fault_seed is not None else 0,
            )
        else:
            plan = FaultPlan.from_dict(
                json.loads(Path(args.fault_plan).read_text())
            )
            if args.fault_seed is not None:
                plan = plan.reseeded(args.fault_seed)
    policy = None
    if args.max_retries is not None:
        policy = RetryPolicy().with_max_retries(args.max_retries)

    runtime = PipelineRuntime(
        WorldConfig(seed=args.seed, scale=args.scale),
        fault_plan=plan,
        retry_policy=policy,
        allow_degraded=args.allow_degraded,
    )
    result = runtime.collection()
    stats = result.stats
    print(
        f"collected {len(result.dataset)} entries "
        f"({stats.merged_entries} merged, "
        f"{stats.recovery.recovered}/{stats.recovery.attempted} recovered "
        "from mirrors)"
    )
    if stats.degradation is not None:
        print(stats.degradation.render())
    if args.out is not None:
        from repro.io.datasets import save_dataset

        target = save_dataset(result.dataset, args.out)
        print(f"wrote dataset to {target}")
    if args.degradation_json is not None:
        payload = (
            stats.degradation.to_dict()
            if stats.degradation is not None
            else None
        )
        Path(args.degradation_json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote degradation report to {args.degradation_json}")
    if stats.degraded and not args.allow_degraded:
        # Completed, but gave data up and the caller did not opt in; the
        # artifact was not cached. Distinct exit code for schedulers.
        return 3
    return 0


def cmd_publish(args: argparse.Namespace) -> int:
    from repro.io.publish import publish_dataset

    artifacts = _artifacts(args)
    target = publish_dataset(artifacts.malgraph, args.out)
    print(f"published dataset site to {target}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.core.graph import EdgeType
    from repro.io.export import to_dot, to_graphml, to_neo4j_csv

    artifacts = _artifacts(args)
    graph = artifacts.malgraph.graph
    edge_types = None
    if args.edges:
        edge_types = [EdgeType(name) for name in args.edges.split(",")]
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.format == "graphml":
        path = out / "malgraph.graphml"
        path.write_text(to_graphml(graph, edge_types))
        print(f"wrote {path}")
    elif args.format == "dot":
        path = out / "malgraph.dot"
        path.write_text(to_dot(graph, edge_types))
        print(f"wrote {path}")
    else:
        nodes, edges = to_neo4j_csv(graph, out, edge_types)
        print(f"wrote {nodes} and {edges}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core.query import QueryEngine, QueryError

    artifacts = _artifacts(args)
    # over the full MalGraph (not just the bare graph) so queries see
    # the enriched attributes: campaign, actor, family, group ids, and
    # directed dependency edges
    engine = QueryEngine(artifacts.malgraph)
    try:
        result = engine.run(args.query)
    except QueryError as error:
        print(f"query error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render_table())
        print(f"({result.row_count} rows, {result.elapsed_ms:.2f} ms)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import validate_groups

    artifacts = _artifacts(args)
    print(validate_groups(artifacts.malgraph).render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    artifacts = _artifacts(args)
    sections = [
        "# Evaluation report",
        "",
        f"World: seed={args.seed}, scale={args.scale}. Every table and "
        "figure of the paper's evaluation, regenerated.",
        "",
    ]
    for key in EXPERIMENTS:
        sections.append(f"## {key}")
        sections.append("")
        sections.append("```")
        sections.append(_render_experiment(artifacts, key))
        sections.append("```")
        sections.append("")
    payload = "\n".join(sections)
    if args.out:
        Path(args.out).write_text(payload)
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    from repro.analysis.whatif import compute_defense_sweep

    sweep = compute_defense_sweep(
        scales=tuple(args.scales),
        seed=args.seed,
        corpus_scale=min(args.scale, 0.25),
    )
    print(sweep.render())
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    from repro.analysis.families import compute_family_census

    artifacts = _artifacts(args)
    print(compute_family_census(artifacts.malgraph).render())
    return 0


def cmd_actors(args: argparse.Namespace) -> int:
    from repro.analysis.actors import compute_actor_attribution

    artifacts = _artifacts(args)
    print(compute_actor_attribution(artifacts.dataset).render(top=args.top))
    return 0


def cmd_insights(args: argparse.Namespace) -> int:
    artifacts = _artifacts(args)
    report = artifacts.insights()
    print(report.render())
    return 0 if report.all_hold else 1


def cmd_stability(args: argparse.Namespace) -> int:
    from repro.analysis.stability import compute_stability

    artifacts = _artifacts(args)
    print(compute_stability(artifacts.dataset, snapshots=args.snapshots).render())
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    from repro.detection.scanner import evaluate_on_corpus

    artifacts = _artifacts(args)
    result = evaluate_on_corpus(artifacts.world.corpus, sample=args.sample)
    print(result.render())
    return 0


def cmd_enrich(args: argparse.Namespace) -> int:
    import json

    from repro.service import Indicator, build_service

    if not args.name and not args.sha256:
        print("enrich needs a package name or --sha256", file=sys.stderr)
        return 2
    artifacts = _artifacts(args)
    service = build_service(artifacts.malgraph)
    result = service.enrich(
        Indicator(
            name=args.name,
            version=args.pkg_version,
            sha256=args.sha256,
            ecosystem=args.ecosystem,
        )
    )
    print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 1 if result.verdict == "malicious" else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import WebhookDispatcher, build_service, serve

    artifacts = _artifacts(args)
    webhook = None
    if args.webhook:
        webhook = WebhookDispatcher(args.webhook)
    collection_stats = artifacts.collection.stats
    service = build_service(
        artifacts.malgraph,
        capacity=args.cache,
        degraded=collection_stats.degraded,
        shards=args.shards,
        source_health=collection_stats.source_health,
        webhook=webhook,
    )
    print(
        f"indexed {service.index.package_count} packages "
        f"(seed={args.seed}, scale={args.scale}, "
        f"{service.cache.shard_count} cache shards)"
    )
    if webhook is not None:
        print(f"pushing new detections to {webhook.url}")
    try:
        server = serve(
            service,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            rate_limit=args.rate_limit if args.rate_limit > 0 else None,
            rate_burst=args.burst,
        )
    finally:
        if webhook is not None:
            webhook.flush(timeout=5.0)
            webhook.close()
    return 0 if server is not None else 2


def cmd_feed(args: argparse.Namespace) -> int:
    import json

    from repro.service import build_service

    artifacts = _artifacts(args)
    collection_stats = artifacts.collection.stats
    service = build_service(
        artifacts.malgraph,
        degraded=collection_stats.degraded,
        source_health=collection_stats.source_health,
    )
    if args.cursor is not None or args.limit is not None:
        # One page, exactly as /v1/feed would answer it.
        from repro.service import CursorError, CursorExpired

        try:
            page = service.feed.page(cursor=args.cursor, limit=args.limit)
        except CursorExpired as error:
            print(f"cursor expired: {error}", file=sys.stderr)
            return 2
        except CursorError as error:
            print(f"bad cursor/limit: {error}", file=sys.stderr)
            return 2
        payload = page
    else:
        items = service.feed.walk()
        payload = {
            "generation": service.snapshot.generation,
            "total": len(items),
            "items": items,
        }
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(rendered + "\n")
        print(f"wrote {payload['total']} indicators to {args.out}")
    else:
        print(rendered)
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    from repro.core.delta.events import events_from_jsonl
    from repro.errors import DatasetError, GraphError
    from repro.io.malgraphs import load_malgraph_bundle, save_malgraph_bundle

    bundle = Path(args.graph)
    if not bundle.is_dir():
        print(f"not a bundle directory: {bundle}", file=sys.stderr)
        return 2
    events = events_from_jsonl(args.events)
    if not events:
        print(f"no events in {args.events}", file=sys.stderr)
        return 2
    similarity = None
    if getattr(args, "jobs", None) is not None:
        from repro.core.similarity import SimilarityConfig

        similarity = SimilarityConfig(jobs=args.jobs)
    base = load_malgraph_bundle(bundle)
    try:
        evolved, delta = base.apply_delta(events, similarity=similarity)
    except (DatasetError, GraphError) as error:
        print(f"update error: {error}", file=sys.stderr)
        return 2
    target = save_malgraph_bundle(evolved, args.out or bundle)
    print(delta.summary())
    print(f"wrote updated bundle to {target}")
    return 0


def cmd_warm(args: argparse.Namespace) -> int:
    from repro import pipeline

    artifacts = _artifacts(args)
    artifacts.warm()
    report = pipeline.get_report()
    print(report.render())
    store = pipeline.get_store()
    if store.disk_enabled:
        print(f"disk cache: {store.cache_dir}")
    else:
        print("disk cache: disabled")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro import pipeline

    store = pipeline.get_store()
    if args.action == "clear":
        store.clear_memory()
        removed = store.clear_disk()
        print(f"removed {removed} cache entries from {store.cache_dir}")
        return 0
    entries = store.disk_entries()
    state = "enabled" if store.disk_enabled else "disabled"
    print(f"cache dir: {store.cache_dir} (disk {state})")
    if not entries:
        print("no cached artifacts")
        return 0
    print(f"{'stage':<12} {'fingerprint':<18} {'size':>10}  config")
    for entry in entries:
        world = entry["config"].get("world", {})
        knobs = ", ".join(f"{k}={world[k]}" for k in sorted(world))
        print(
            f"{entry['stage']:<12} {entry['fingerprint']:<18} "
            f"{entry['bytes']:>10}  {knobs}"
        )
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    from repro.detection.detector import Detector
    from repro.ecosystem.package import make_artifact

    root = Path(args.path)
    if not root.is_dir():
        print(f"not a directory: {root}", file=sys.stderr)
        return 2
    files = {
        str(p.relative_to(root)): p.read_text(encoding="utf-8", errors="replace")
        for p in sorted(root.rglob("*.py"))
    }
    if not files:
        print(f"no Python files under {root}", file=sys.stderr)
        return 2
    artifact = make_artifact(args.ecosystem, root.name, "0.0.0", files)
    verdict = Detector().scan(artifact)
    print(verdict.explain())
    return 1 if verdict.malicious else 0


# ---------------------------------------------------------------------------
# Parser wiring
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Analysis of Malicious Packages in "
        "Open-Source Software in the Wild' (DSN 2025)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="world scale factor"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="embedding worker processes for the MALGRAPH build "
        "(0 = one per core; default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="keep pipeline artifacts in memory only",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the pipeline stage report to stderr on exit",
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write the pipeline stage report as JSON to FILE on exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    warm = sub.add_parser(
        "warm", help="build the pipeline stages and persist the cacheable ones"
    )
    # Also accepted after the subcommand (`repro warm --jobs 0`); SUPPRESS
    # keeps an omitted flag from clobbering a global `--jobs` value.
    warm.add_argument(
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="embedding worker processes (0 = one per core)",
    )
    warm.set_defaults(func=cmd_warm)

    cache = sub.add_parser("cache", help="inspect or clear the artifact cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.set_defaults(func=cmd_cache)

    sub.add_parser("tables", help="render every table and figure").set_defaults(
        func=cmd_tables
    )

    show = sub.add_parser("show", help="render one experiment")
    show.add_argument("experiment", choices=sorted(EXPERIMENTS))
    show.set_defaults(func=cmd_show)

    dataset = sub.add_parser("dataset", help="save the collected dataset")
    dataset.add_argument("--out", required=True)
    dataset.add_argument(
        "--no-artifacts", action="store_true", help="names/hashes only"
    )
    dataset.set_defaults(func=cmd_dataset)

    collect = sub.add_parser(
        "collect",
        help="run the Section II collection, optionally under fault injection",
    )
    collect.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="chaos preset ('moderate' / 'heavy') or path to a FaultPlan JSON file",
    )
    collect.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="override the fault plan's seed",
    )
    collect.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="per-operation retry budget (default: RetryPolicy default of 4)",
    )
    collect.add_argument(
        "--allow-degraded",
        action="store_true",
        help="accept (and cache) a degraded collection artifact",
    )
    collect.add_argument(
        "--out", default=None, help="save the collected dataset to this directory"
    )
    collect.add_argument(
        "--degradation-json",
        default=None,
        metavar="FILE",
        help="write the DegradationReport as canonical JSON to FILE",
    )
    collect.set_defaults(func=cmd_collect)

    publish = sub.add_parser("publish", help="write the dataset website")
    publish.add_argument("--out", required=True)
    publish.set_defaults(func=cmd_publish)

    export = sub.add_parser("export", help="export MALGRAPH")
    export.add_argument("--out", required=True)
    export.add_argument(
        "--format", choices=("graphml", "dot", "csv"), default="graphml"
    )
    export.add_argument(
        "--edges", help="comma-separated edge types (default: all)"
    )
    export.set_defaults(func=cmd_export)

    query = sub.add_parser("query", help="run a Cypher-like graph query")
    query.add_argument("query")
    query.add_argument(
        "--json",
        action="store_true",
        help="emit {columns, rows, row_count, elapsed_ms} JSON instead of a table",
    )
    query.set_defaults(func=cmd_query)

    sub.add_parser(
        "validate", help="score groups against ground truth"
    ).set_defaults(func=cmd_validate)

    sub.add_parser(
        "census", help="malware-family census over similarity groups"
    ).set_defaults(func=cmd_census)

    actors = sub.add_parser(
        "actors", help="actor aliases recovered from security reports"
    )
    actors.add_argument("--top", type=int, default=10)
    actors.set_defaults(func=cmd_actors)

    sub.add_parser(
        "insights", help="the paper's four lessons, measured (exit 1 if any fails)"
    ).set_defaults(func=cmd_insights)

    report = sub.add_parser("report", help="write the full evaluation as markdown")
    report.add_argument("--out", default=None, help="output file (default: stdout)")
    report.set_defaults(func=cmd_report)

    whatif = sub.add_parser(
        "whatif", help="defense response-time sweep (attacker yield)"
    )
    whatif.add_argument(
        "--scales",
        type=float,
        nargs="+",
        default=[0.25, 0.5, 1.0, 2.0, 4.0],
        help="detection latency multipliers to sweep",
    )
    whatif.set_defaults(func=cmd_whatif)

    stability = sub.add_parser(
        "stability", help="Section II-D metric stability over snapshots"
    )
    stability.add_argument("--snapshots", type=int, default=6)
    stability.set_defaults(func=cmd_stability)

    detect = sub.add_parser("detect", help="evaluate the detector on the corpus")
    detect.add_argument("--sample", type=int, default=None)
    detect.set_defaults(func=cmd_detect)

    scan = sub.add_parser("scan", help="scan a package directory")
    scan.add_argument("path")
    scan.add_argument("--ecosystem", default="pypi")
    scan.set_defaults(func=cmd_scan)

    enrich = sub.add_parser(
        "enrich", help="threat-intel verdict for an indicator (exit 1 if malicious)"
    )
    enrich.add_argument("name", nargs="?", default=None, help="package name")
    enrich.add_argument(
        "--pkg-version", default=None, help="package version to pin the lookup"
    )
    enrich.add_argument("--sha256", default=None, help="artifact code signature")
    enrich.add_argument("--ecosystem", default=None)
    enrich.set_defaults(func=cmd_enrich)

    update = sub.add_parser(
        "update",
        help="evolve a saved MALGRAPH bundle with an events JSONL (delta, no rebuild)",
    )
    update.add_argument(
        "--graph", required=True, metavar="DIR",
        help="bundle directory written by `repro dataset` + save_malgraph_bundle",
    )
    update.add_argument("events", help="events JSONL file (one GraphEvent per line)")
    update.add_argument(
        "--out", default=None, metavar="DIR",
        help="write the evolved bundle here (default: update --graph in place)",
    )
    update.set_defaults(func=cmd_update)

    serve = sub.add_parser("serve", help="run the enrichment HTTP API")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8742)
    serve.add_argument("--cache", type=int, default=4096, help="LRU capacity")
    serve.add_argument(
        "--shards",
        type=int,
        default=8,
        help="LRU shard count (distinct-key lookups contend per shard, not globally)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="REQ_PER_S",
        help="per-client token-bucket rate limit in requests/second "
        "(429 + Retry-After when exceeded; 0 = no limiting)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=None,
        help="token-bucket burst size (default: the --rate-limit value)",
    )
    serve.add_argument(
        "--webhook",
        default=None,
        metavar="URL",
        help="POST a new-detections event to URL whenever a published "
        "refresh adds packages (retries with backoff; failures land in "
        "the dead-letter book under /v1/metrics)",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log every request and print the metrics summary on shutdown",
    )
    serve.set_defaults(func=cmd_serve)

    feed = sub.add_parser(
        "feed",
        help="export the STIX-ish detection feed (what GET /v1/feed serves)",
    )
    feed.add_argument(
        "--cursor",
        default=None,
        help="resume a paginated walk from this opaque cursor (one page)",
    )
    feed.add_argument(
        "--limit",
        type=int,
        default=None,
        help="page size; with no --cursor, returns just the first page",
    )
    feed.add_argument(
        "--out", default=None, help="write the JSON here instead of stdout"
    )
    feed.set_defaults(func=cmd_feed)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    import json

    from repro import pipeline

    parser = build_parser()
    args = parser.parse_args(argv)
    pipeline.configure(
        cache_dir=args.cache_dir,
        disk_enabled=False if args.no_disk_cache else None,
    )
    pipeline.reset_report()
    try:
        return args.func(args)
    finally:
        report = pipeline.get_report()
        if args.report:
            print(report.render(), file=sys.stderr)
        if args.report_json:
            Path(args.report_json).write_text(
                json.dumps(report.to_dict(), indent=2, sort_keys=True)
            )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
