"""Concurrency hardening: thread hammer on the service, HTTP load with
exact metrics accounting over a real socket. Bounded iterations keep the
whole module inside the tier-1 budget (< 5 s)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.malgraph import MalGraph
from repro.service.cache import EnrichmentService, build_service
from repro.service.enrich import Indicator
from repro.service.refresh import refresh_index
from repro.service.server import create_server, server_address

from tests.core.helpers import dataset, entry

THREADS = 8
ROUNDS = 25


def _mini_service() -> EnrichmentService:
    """A hand-built eight-package service (no world simulation)."""
    entries = [
        entry(f"pkg-{i}", code=f"def payload():\n    return {i}\n")
        for i in range(8)
    ]
    return build_service(MalGraph.build(dataset(entries)), capacity=64)


def test_thread_hammer_mixed_traffic_exact_accounting():
    """N threads x M rounds of enrich/batch/invalidate/refresh: counters
    stay exact (hits + misses == cache probes) and nothing escapes."""
    service = _mini_service()
    extra = dataset(
        [entry("late-pkg", code="def late():\n    return 9\n")]
    )
    failures = []
    probes = threading.Lock()
    expected_probes = [0]
    barrier = threading.Barrier(THREADS)

    def count_probes(n: int) -> None:
        with probes:
            expected_probes[0] += n

    def hammer(worker: int) -> None:
        try:
            barrier.wait(timeout=10)
            for round_no in range(ROUNDS):
                op = (worker + round_no) % 4
                if op == 0:
                    service.enrich(Indicator(name=f"pkg-{round_no % 8}"))
                    count_probes(1)
                elif op == 1:
                    # 3 distinct keys + 1 intra-batch duplicate -> 3 probes
                    batch = [
                        Indicator(name=f"pkg-{(round_no + d) % 8}")
                        for d in range(3)
                    ]
                    results = service.batch_enrich(batch + [batch[0]])
                    assert len(results) == 4
                    count_probes(3)
                elif op == 2:
                    service.invalidate()
                else:
                    refresh_index(service.index, extra, service=service)
        except Exception as failure:  # noqa: BLE001 - the assertion target
            failures.append(failure)

    pool = [
        threading.Thread(target=hammer, args=(worker,))
        for worker in range(THREADS)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=30)
    assert not failures, failures
    stats = service.cache.stats()
    assert stats["hits"] + stats["misses"] == expected_probes[0]
    # the refreshed package is resolvable and the index stayed coherent
    assert service.enrich(Indicator(name="late-pkg")).verdict == "malicious"
    assert service.index.package_count == 9


def test_refresh_under_load_readers_never_see_a_torn_generation():
    """While a writer publishes generation after generation, every batch
    read resolves against exactly one snapshot: the two packages added
    together by one refresh are always both visible or both absent, and
    the shard-summed hit/miss books stay exact throughout."""
    service = _mini_service()
    letters = "abcdef"

    def pair(g: int):
        # letter-tripled stems keep every name pair > edit-distance 2
        # from other generations, so near-miss typosquat verdicts can
        # never blur the present/absent distinction the test relies on
        stem = letters[g] * 3
        return f"{stem}pkg-a", f"{stem}pkg-b"

    stop = threading.Event()
    failures = []
    probes = threading.Lock()
    expected_probes = [0]

    def refresher() -> None:
        try:
            for g in range(len(letters)):
                left, right = pair(g)
                extra = dataset(
                    [
                        entry(left, code=f"def l():\n    return {g}\n"),
                        entry(right, code=f"def r():\n    return {g + 100}\n"),
                    ]
                )
                refresh_index(service.index, extra, service=service)
                time.sleep(0.002)  # let readers overlap each generation
        except Exception as failure:  # noqa: BLE001 - the assertion target
            failures.append(failure)
        finally:
            stop.set()

    def reader(worker: int) -> None:
        try:
            rounds = 0
            while not stop.is_set() and rounds < 5000:
                left, right = pair((worker + rounds) % len(letters))
                got = service.batch_enrich(
                    [Indicator(name=left), Indicator(name=right)]
                )
                verdicts = [r.verdict == "malicious" for r in got]
                assert verdicts[0] == verdicts[1], (
                    f"torn read: {left}={got[0].verdict} "
                    f"{right}={got[1].verdict}"
                )
                with probes:
                    expected_probes[0] += 2
                rounds += 1
        except Exception as failure:  # noqa: BLE001 - the assertion target
            failures.append(failure)

    pool = [threading.Thread(target=refresher)] + [
        threading.Thread(target=reader, args=(worker,)) for worker in range(4)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in pool)
    assert not failures, failures
    stats = service.cache.stats()
    assert stats["hits"] + stats["misses"] == expected_probes[0]
    # once quiet: every generation's pair resolves and nothing was lost
    for g in range(len(letters)):
        for name in pair(g):
            assert service.enrich(Indicator(name=name)).verdict == "malicious"
    assert service.index.package_count == 8 + 2 * len(letters)
    assert service.generation == len(letters)


def test_concurrent_lru_is_exact():
    from repro.service.cache import LRUCache

    cache = LRUCache(capacity=32)
    gets = 500

    def churn(worker: int) -> None:
        for i in range(gets):
            cache.get((worker, i % 64))
            cache.put((worker, i % 64), i)

    pool = [threading.Thread(target=churn, args=(w,)) for w in range(THREADS)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == THREADS * gets
    assert stats["size"] <= 32


# -- over a real socket ------------------------------------------------------

@pytest.fixture()
def fresh_server():
    """A per-test server so metrics start from zero."""
    service = _mini_service()
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.load(response)


def _post(url: str, payload) -> tuple:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


def test_http_load_metrics_sum_to_requests_sent(fresh_server):
    base, _ = fresh_server
    enrich_sent = 24
    batch_sent = 8
    bad_sent = 4

    def one_request(i: int) -> int:
        if i < enrich_sent:
            status, _ = _get(f"{base}/v1/enrich?name=pkg-{i % 8}")
            return status
        if i < enrich_sent + batch_sent:
            status, _ = _post(
                f"{base}/v1/enrich/batch",
                {"indicators": [{"name": f"pkg-{i % 8}"}, {"name": "pkg-0"}]},
            )
            return status
        try:  # malformed item: 400 listing the offending index
            _post(f"{base}/v1/enrich/batch", {"indicators": [{"name": 123}]})
        except urllib.error.HTTPError as failure:
            assert failure.code == 400
            body = json.load(failure)
            assert body["index"] == 0
            assert "name" in body["error"]
            return failure.code
        raise AssertionError("malformed batch item was accepted")

    total = enrich_sent + batch_sent + bad_sent
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        statuses = list(pool.map(one_request, range(total)))
    assert statuses.count(200) == enrich_sent + batch_sent
    assert statuses.count(400) == bad_sent

    status, snap = _get(f"{base}/v1/metrics")
    assert status == 200
    endpoints = snap["endpoints"]
    assert endpoints["/v1/enrich"]["requests"] == enrich_sent
    assert endpoints["/v1/enrich"]["status"] == {"200": enrich_sent}
    batch_row = endpoints["/v1/enrich/batch"]
    assert batch_row["requests"] == batch_sent + bad_sent
    assert batch_row["status"] == {"200": batch_sent, "400": bad_sent}
    assert snap["total_requests"] == total
    for row in (endpoints["/v1/enrich"], batch_row):
        latency = row["latency"]
        assert latency["count"] == row["requests"]
        assert latency["p50_ms"] is not None
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]


def test_metrics_endpoint_counts_itself_on_later_scrapes(fresh_server):
    base, _ = fresh_server
    _get(f"{base}/v1/metrics")
    _, snap = _get(f"{base}/v1/metrics")
    assert snap["endpoints"]["/v1/metrics"]["requests"] == 1
