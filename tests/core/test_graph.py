"""PropertyGraph: nodes, typed edges, clique compression, components,
Table II statistics and JSON persistence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import EdgeType, PropertyGraph
from repro.errors import GraphError, NodeNotFoundError


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph()
    for node in "abcdef":
        g.add_node(node, ecosystem="pypi")
    return g


# -- nodes -------------------------------------------------------------------

def test_add_node_and_lookup(graph):
    assert graph.has_node("a")
    assert graph.node("a") == {"ecosystem": "pypi"}
    assert graph.node_count == 6


def test_add_node_merges_attributes(graph):
    graph.add_node("a", name="left-pad")
    assert graph.node("a") == {"ecosystem": "pypi", "name": "left-pad"}


def test_node_lookup_unknown_raises(graph):
    with pytest.raises(NodeNotFoundError):
        graph.node("nope")


def test_nodes_iterates_all(graph):
    assert sorted(graph.nodes()) == list("abcdef")


# -- pairwise edges ------------------------------------------------------------

def test_add_edge_is_undirected(graph):
    graph.add_edge("a", "b", EdgeType.DEPENDENCY)
    assert graph.has_edge("a", "b", EdgeType.DEPENDENCY)
    assert graph.has_edge("b", "a", EdgeType.DEPENDENCY)


def test_edge_types_are_independent(graph):
    graph.add_edge("a", "b", EdgeType.DEPENDENCY)
    assert not graph.has_edge("a", "b", EdgeType.SIMILAR)
    assert not graph.has_edge("a", "b", EdgeType.DUPLICATED)
    assert not graph.has_edge("a", "b", EdgeType.COEXISTING)


def test_edge_requires_known_nodes(graph):
    with pytest.raises(NodeNotFoundError):
        graph.add_edge("a", "zz", EdgeType.SIMILAR)


def test_self_loop_rejected(graph):
    with pytest.raises(GraphError):
        graph.add_edge("a", "a", EdgeType.SIMILAR)


def test_duplicate_edge_is_idempotent(graph):
    graph.add_edge("a", "b", EdgeType.SIMILAR)
    graph.add_edge("b", "a", EdgeType.SIMILAR)
    assert graph.directed_edge_count(EdgeType.SIMILAR) == 2


def test_neighbors_pairwise(graph):
    graph.add_edge("a", "b", EdgeType.DEPENDENCY)
    graph.add_edge("a", "c", EdgeType.DEPENDENCY)
    assert graph.neighbors("a", EdgeType.DEPENDENCY) == {"b", "c"}
    assert graph.neighbors("b", EdgeType.DEPENDENCY) == {"a"}
    assert graph.neighbors("d", EdgeType.DEPENDENCY) == set()


# -- cliques ------------------------------------------------------------------

def test_clique_implies_all_pairs(graph):
    graph.add_clique(["a", "b", "c"], EdgeType.SIMILAR)
    for u, v in [("a", "b"), ("a", "c"), ("b", "c")]:
        assert graph.has_edge(u, v, EdgeType.SIMILAR)
        assert graph.has_edge(v, u, EdgeType.SIMILAR)


def test_clique_of_duplicate_members_deduplicates(graph):
    graph.add_clique(["a", "b", "a", "b"], EdgeType.SIMILAR)
    assert graph.directed_edge_count(EdgeType.SIMILAR) == 2


def test_singleton_clique_is_noop(graph):
    graph.add_clique(["a"], EdgeType.SIMILAR)
    graph.add_clique([], EdgeType.SIMILAR)
    assert graph.directed_edge_count(EdgeType.SIMILAR) == 0
    assert graph.touched_nodes(EdgeType.SIMILAR) == set()


def test_clique_requires_known_nodes(graph):
    with pytest.raises(NodeNotFoundError):
        graph.add_clique(["a", "zz"], EdgeType.SIMILAR)


def test_neighbors_via_clique_exclude_self(graph):
    graph.add_clique(["a", "b", "c"], EdgeType.COEXISTING)
    assert graph.neighbors("a", EdgeType.COEXISTING) == {"b", "c"}


def test_degree_counts_unique_neighbors(graph):
    graph.add_clique(["a", "b", "c"], EdgeType.SIMILAR)
    graph.add_edge("a", "b", EdgeType.SIMILAR)  # same pair, two forms
    assert graph.degree("a", EdgeType.SIMILAR) == 2


# -- counting ------------------------------------------------------------------

def test_directed_edge_count_matches_clique_formula(graph):
    graph.add_clique(["a", "b", "c", "d"], EdgeType.SIMILAR)
    # n*(n-1) ordered pairs
    assert graph.directed_edge_count(EdgeType.SIMILAR) == 12
    assert graph.directed_edge_count_fast(EdgeType.SIMILAR) == 12


def test_exact_count_handles_clique_edge_overlap(graph):
    graph.add_clique(["a", "b", "c"], EdgeType.SIMILAR)
    graph.add_edge("a", "b", EdgeType.SIMILAR)
    assert graph.directed_edge_count(EdgeType.SIMILAR) == 6  # not 8


def test_fast_count_assumes_disjoint_cliques(graph):
    graph.add_clique(["a", "b"], EdgeType.SIMILAR)
    graph.add_clique(["c", "d"], EdgeType.SIMILAR)
    assert graph.directed_edge_count_fast(EdgeType.SIMILAR) == 4
    assert graph.directed_edge_count(EdgeType.SIMILAR) == 4


def test_stats_symmetry_and_average_degree(graph):
    graph.add_clique(["a", "b", "c"], EdgeType.SIMILAR)
    stats = graph.stats(EdgeType.SIMILAR)
    assert stats.nodes == 3
    assert stats.directed_edges == 6
    assert stats.avg_out_degree == stats.avg_in_degree == pytest.approx(2.0)


def test_stats_empty_type(graph):
    stats = graph.stats(EdgeType.DEPENDENCY)
    assert stats.nodes == 0
    assert stats.directed_edges == 0
    assert stats.avg_out_degree == 0.0


# -- components -----------------------------------------------------------------

def test_components_single_type(graph):
    graph.add_edge("a", "b", EdgeType.DEPENDENCY)
    graph.add_clique(["c", "d", "e"], EdgeType.DEPENDENCY)
    components = graph.connected_components([EdgeType.DEPENDENCY])
    assert components == [{"c", "d", "e"}, {"a", "b"}]


def test_components_exclude_isolated_nodes(graph):
    graph.add_edge("a", "b", EdgeType.SIMILAR)
    components = graph.connected_components([EdgeType.SIMILAR])
    assert {"f"} not in components
    assert sum(len(c) for c in components) == 2


def test_components_union_across_types(graph):
    graph.add_edge("a", "b", EdgeType.DEPENDENCY)
    graph.add_edge("b", "c", EdgeType.SIMILAR)
    merged = graph.connected_components([EdgeType.DEPENDENCY, EdgeType.SIMILAR])
    assert merged == [{"a", "b", "c"}]
    only_dep = graph.connected_components([EdgeType.DEPENDENCY])
    assert only_dep == [{"a", "b"}]


def test_components_sorted_large_first(graph):
    graph.add_clique(["a", "b", "c"], EdgeType.SIMILAR)
    graph.add_edge("d", "e", EdgeType.SIMILAR)
    sizes = [len(c) for c in graph.connected_components([EdgeType.SIMILAR])]
    assert sizes == [3, 2]


# -- persistence ------------------------------------------------------------------

def test_roundtrip_preserves_everything(graph):
    graph.add_node("a", name="x", release_day=12)
    graph.add_edge("a", "b", EdgeType.DEPENDENCY)
    graph.add_clique(["c", "d", "e"], EdgeType.SIMILAR)
    clone = PropertyGraph.loads(graph.dumps())
    assert clone.node("a") == graph.node("a")
    assert clone.has_edge("a", "b", EdgeType.DEPENDENCY)
    assert clone.has_edge("c", "e", EdgeType.SIMILAR)
    assert clone.dumps() == graph.dumps()


def test_roundtrip_empty_graph():
    graph = PropertyGraph()
    assert PropertyGraph.loads(graph.dumps()).node_count == 0


# -- property-based: components are a partition refined by edges ----------------

node_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=2),
    min_size=2,
    max_size=12,
    unique=True,
)
edge_picks = st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=20)


@given(node_names, edge_picks)
@settings(max_examples=80, deadline=None)
def test_components_partition_touched_nodes(names, picks):
    graph = PropertyGraph()
    for name in names:
        graph.add_node(name)
    touched = set()
    for i, j in picks:
        u, v = names[i % len(names)], names[j % len(names)]
        if u == v:
            continue
        graph.add_edge(u, v, EdgeType.SIMILAR)
        touched.update((u, v))
    components = graph.connected_components([EdgeType.SIMILAR])
    flattened = [n for c in components for n in c]
    assert len(flattened) == len(set(flattened)), "components are disjoint"
    assert set(flattened) == touched, "every touched node is in exactly one"


@given(node_names, edge_picks)
@settings(max_examples=80, deadline=None)
def test_endpoints_share_a_component(names, picks):
    graph = PropertyGraph()
    for name in names:
        graph.add_node(name)
    edges = []
    for i, j in picks:
        u, v = names[i % len(names)], names[j % len(names)]
        if u != v:
            graph.add_edge(u, v, EdgeType.COEXISTING)
            edges.append((u, v))
    components = graph.connected_components([EdgeType.COEXISTING])
    locate = {n: idx for idx, c in enumerate(components) for n in c}
    for u, v in edges:
        assert locate[u] == locate[v]


@given(st.lists(st.lists(st.integers(0, 9), min_size=2, max_size=5), max_size=6))
@settings(max_examples=60, deadline=None)
def test_clique_counts_match_pairwise_equivalent(cliques):
    """Compressed cliques count exactly like the expanded pairwise graph."""
    compact, expanded = PropertyGraph(), PropertyGraph()
    for g in (compact, expanded):
        for n in range(10):
            g.add_node(str(n))
    for members in cliques:
        compact.add_clique([str(m) for m in members], EdgeType.SIMILAR)
        unique = sorted({str(m) for m in members})
        for i, u in enumerate(unique):
            for v in unique[i + 1:]:
                expanded.add_edge(u, v, EdgeType.SIMILAR)
    assert compact.directed_edge_count(EdgeType.SIMILAR) == (
        expanded.directed_edge_count(EdgeType.SIMILAR)
    )
    assert compact.connected_components([EdgeType.SIMILAR]) == (
        expanded.connected_components([EdgeType.SIMILAR])
    )


# ---------------------------------------------------------------------------
# Mutation-counter coverage (the query-index cache keys on graph.version)
# ---------------------------------------------------------------------------

def test_every_mutator_bumps_the_version():
    """Audit: each public mutator must advance ``version`` exactly when it
    changes structure, so cached indexes can never serve stale reads."""
    g = PropertyGraph()

    def bumps(action):
        before = g.version
        result = action()
        assert g.version > before, action
        return result

    bumps(lambda: g.add_node("a"))
    bumps(lambda: g.add_node("b"))
    bumps(lambda: g.add_node("c"))
    bumps(lambda: g.add_edge("a", "b", EdgeType.DEPENDENCY))
    index = bumps(lambda: g.add_clique(["a", "b", "c"], EdgeType.SIMILAR))
    bumps(lambda: g.remove_clique_at(EdgeType.SIMILAR, index))
    bumps(lambda: g.remove_edge("a", "b", EdgeType.DEPENDENCY))
    bumps(lambda: g.remove_node("c"))
    bumps(g.touch)

    # idempotent re-adds still count as mutations only when they change
    # something; reads never do
    before = g.version
    g.neighbors("a", EdgeType.SIMILAR)
    g.has_edge("a", "b", EdgeType.DEPENDENCY)
    g.connected_components()
    g.stats(EdgeType.SIMILAR)
    assert g.version == before


def test_clique_indices_are_stable_across_removals():
    g = PropertyGraph()
    for n in ("a", "b", "c"):
        g.add_node(n)
    first = g.add_clique(["a", "b"], EdgeType.SIMILAR)
    second = g.add_clique(["b", "c"], EdgeType.SIMILAR)
    g.remove_clique_at(EdgeType.SIMILAR, first)
    # the surviving clique keeps its index; the freed slot is not reused
    third = g.add_clique(["a", "c"], EdgeType.SIMILAR)
    assert g.clique_at(EdgeType.SIMILAR, second) == frozenset({"b", "c"})
    assert third not in (first, second)
    assert g.add_clique(["a"], EdgeType.SIMILAR) is None  # degenerate


def test_clique_accessors_expose_tombstones():
    g = PropertyGraph()
    for n in ("a", "b", "c", "d"):
        g.add_node(n)
    first = g.add_clique(["a", "b"], EdgeType.COEXISTING)
    second = g.add_clique(["c", "d"], EdgeType.COEXISTING)
    g.remove_clique_at(EdgeType.COEXISTING, first)
    assert g.clique_at(EdgeType.COEXISTING, first) is None
    assert g.clique_at(EdgeType.COEXISTING, second) == frozenset({"c", "d"})
    assert g.clique_at(EdgeType.COEXISTING, 99) is None
    assert g.live_cliques(EdgeType.COEXISTING) == [
        (second, frozenset({"c", "d"}))
    ]
