"""The web crawler (Scrapy substitute).

Section II-B: "The input of our web crawler is the website URL, and the
output is the HTML pages. We used keywords (e.g. 'malicious' and
'malware') to filter out irrelevant HTML pages."

:class:`Spider` walks the simulated web: seeded with website domains, it
reads each site's index, fetches pages, applies the keyword pre-filter
and hands surviving pages to the extractor.

A single unfetchable URL no longer kills the whole crawl: it is counted
in ``CrawlStats.pages_unfetchable`` and the site continues. Only a site
whose index itself is missing raises :class:`~repro.errors.CrawlError`.
Given a :class:`~repro.reliability.ResilienceContext`, the spider also
retries transient fetch faults, trips a per-site circuit breaker, and
quarantines what still fails into the run's degradation report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.crawler.extract import ExtractedReport, extract_report, is_security_report
from repro.errors import CrawlError, TruncatedPageError
from repro.intel.web import SimulatedWeb, WebPage


@dataclass
class CrawlStats:
    """Bookkeeping for one crawl."""

    sites_visited: int = 0
    pages_fetched: int = 0
    pages_filtered_out: int = 0
    reports_extracted: int = 0
    unusable_reports: int = 0
    pages_unfetchable: int = 0


@dataclass
class CrawlResult:
    """Extracted reports plus crawl statistics."""

    reports: List[ExtractedReport]
    stats: CrawlStats


class Spider:
    """Crawl a simulated web from a seed list of sites.

    ``resilience`` (a :class:`repro.reliability.ResilienceContext`) turns
    on retry-with-backoff and per-site circuit breaking for index reads
    and page fetches; without it the spider is the plain fail-soft
    crawler (skip the URL, keep the site).
    """

    def __init__(
        self,
        web: SimulatedWeb,
        max_pages_per_site: int = 10_000,
        resilience=None,
    ):
        self.web = web
        self.max_pages_per_site = max_pages_per_site
        self.resilience = resilience

    def _fetch_checked(self, url: str) -> Optional[WebPage]:
        """Fetch one URL and verify the HTML arrived complete.

        Every rendered page ends with ``</html>``; anything shorter was
        cut off in flight and is worth re-fetching.
        """
        page = self.web.fetch(url)
        if page is not None and not page.html.rstrip().endswith("</html>"):
            raise TruncatedPageError(f"{url} arrived truncated")
        return page

    def _consume(
        self,
        url: str,
        site: str,
        page: WebPage,
        stats: CrawlStats,
        reports: List[ExtractedReport],
    ) -> None:
        """Filter + extract one fetched page into ``reports``."""
        stats.pages_fetched += 1
        if not is_security_report(page.html):
            stats.pages_filtered_out += 1
            return
        report = extract_report(url, site, page.html)
        if report.usable:
            stats.reports_extracted += 1
            reports.append(report)
        else:
            stats.unusable_reports += 1

    def crawl_site(self, site: str, stats: Optional[CrawlStats] = None) -> List[ExtractedReport]:
        """Crawl one website; returns usable extracted reports.

        Raises :class:`CrawlError` only when the site's index itself is
        missing or (in resilient mode) stays unreachable after retries —
        individual bad URLs are counted and skipped.
        """
        stats = stats if stats is not None else CrawlStats()
        stats.sites_visited += 1
        if site not in self.web.sites:
            raise CrawlError(f"site index of {site!r} is missing")
        reports: List[ExtractedReport] = []
        if self.resilience is None:
            for url in self.web.site_index(site)[: self.max_pages_per_site]:
                page = self._fetch_checked(url)
                if page is None:
                    stats.pages_unfetchable += 1
                    continue
                self._consume(url, site, page, stats, reports)
            return reports

        ctx = self.resilience
        breaker = ctx.breaker(f"site:{site}")
        index = ctx.call(
            f"site:{site}", lambda: self.web.site_index(site), breaker=breaker
        )
        if not index.ok:
            raise CrawlError(f"site index of {site!r} is unreachable")
        for url in index.value[: self.max_pages_per_site]:
            outcome = ctx.call(
                f"site:{site}",
                lambda url=url: self._fetch_checked(url),
                breaker=breaker,
            )
            if not outcome.ok:
                stats.pages_unfetchable += 1
                ctx.report.skip_url(url)
                continue
            if outcome.value is None:
                stats.pages_unfetchable += 1
                continue
            self._consume(url, site, outcome.value, stats, reports)
        return reports

    def crawl(self, sites: Sequence[str]) -> CrawlResult:
        """Crawl every seed site.

        In resilient mode a site that stays dark (index unreachable after
        retries, or breaker open) is quarantined into the degradation
        report and the crawl moves on; without a resilience context the
        historical fail-fast behaviour stands.
        """
        stats = CrawlStats()
        reports: List[ExtractedReport] = []
        for site in sites:
            if self.resilience is None:
                reports.extend(self.crawl_site(site, stats))
                continue
            try:
                reports.extend(self.crawl_site(site, stats))
            except CrawlError:
                self.resilience.report.skip_site(site)
        return CrawlResult(reports=reports, stats=stats)

    def discover_sites(self) -> List[str]:
        """All sites of the simulated web (the paper's search-engine
        expansion step that grew the seed list to 68 websites)."""
        return sorted(self.web.sites)
