"""RQ1 overlap analyses: Table IV and Fig. 4.

* Table IV — the 10x10 matrix of package overlap between sources;
* Fig. 4 — CDF of the DG size (how many sources report each package) for
  the three major ecosystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.analysis.render import render_cdf, render_table
from repro.analysis.stats import CdfPoint, cdf_fraction_at, empirical_cdf
from repro.collection.records import MalwareDataset
from repro.ecosystem.package import MAJOR_ECOSYSTEMS
from repro.intel.sources import SOURCE_INDEX, SOURCE_PROFILES, Sector


@dataclass
class OverlapMatrix:
    """Table IV: pairwise package overlap between sources."""

    sources: List[str]  # source keys, Table I order
    totals: Dict[str, int]
    matrix: Dict[Tuple[str, str], int]

    def overlap(self, a: str, b: str) -> int:
        if a == b:
            return self.totals.get(a, 0)
        return self.matrix.get((a, b), self.matrix.get((b, a), 0))

    def sector_block_means(self) -> Dict[Tuple[Sector, Sector], float]:
        """Average overlap within/between sectors (the RQ1 reading aid)."""
        blocks: Dict[Tuple[Sector, Sector], List[int]] = {}
        for a, b in combinations(self.sources, 2):
            sa = SOURCE_INDEX[a].sector
            sb = SOURCE_INDEX[b].sector
            key = tuple(sorted((sa, sb), key=lambda s: s.value))
            blocks.setdefault(key, []).append(self.overlap(a, b))
        return {
            key: (sum(values) / len(values) if values else 0.0)
            for key, values in blocks.items()
        }

    def render(self) -> str:
        headers = [""] + [
            f"{SOURCE_INDEX[s].short} ({self.totals[s]})" for s in self.sources
        ]
        rows = []
        for a in self.sources:
            row = [f"{SOURCE_INDEX[a].short} ({self.totals[a]})"]
            for b in self.sources:
                row.append("" if a == b else self.overlap(a, b))
            rows.append(row)
        return render_table(
            headers, rows, title="Table IV: the overlapping matrix of all sources"
        )


def compute_overlap_matrix(dataset: MalwareDataset) -> OverlapMatrix:
    """Count packages claimed by each pair of sources (Table IV)."""
    sources = [p.key for p in SOURCE_PROFILES]
    totals = {s: 0 for s in sources}
    matrix: Dict[Tuple[str, str], int] = {}
    for entry in dataset.entries:
        claimed = sorted(entry.sources)
        for source in claimed:
            if source in totals:
                totals[source] += 1
        for a, b in combinations(claimed, 2):
            matrix[(a, b)] = matrix.get((a, b), 0) + 1
    return OverlapMatrix(sources=sources, totals=totals, matrix=matrix)


@dataclass
class DgSizeCdf:
    """Fig. 4: CDF of DG size (sources per package) per major ecosystem."""

    per_ecosystem: Dict[str, List[CdfPoint]]
    single_source_fraction: float
    more_than_three_fraction: float

    def render(self) -> str:
        blocks = [
            render_cdf(
                points,
                title=f"Fig. 4 ({ecosystem.upper()}): CDF of DG size",
                value_label="DG size (# reporting sources)",
            )
            for ecosystem, points in self.per_ecosystem.items()
        ]
        blocks.append(
            f"single-source packages: {self.single_source_fraction:.1%}; "
            f"reported by more than three sources: "
            f"{self.more_than_three_fraction:.1%}"
        )
        return "\n\n".join(blocks)


def _columnar_dg_sizes(dataset: MalwareDataset) -> Dict[str, List[int]]:
    """Per-ecosystem DG sizes straight off the claim CSR (row order)."""
    import numpy as np

    columnar = dataset.columnar  # type: ignore[attr-defined]
    counts = columnar.source_counts()
    eco_col = np.asarray(columnar.packages["eco"])
    sizes: Dict[str, List[int]] = {}
    for eco_id in np.unique(eco_col):
        name = columnar.pool.lookup(int(eco_id))
        sizes[name] = counts[eco_col == eco_id].tolist()
    return sizes


def compute_dg_size_cdf(dataset: MalwareDataset) -> DgSizeCdf:
    """DG size = number of distinct sources reporting a package (Fig. 4).

    Columnar corpora count distinct claim sources per row vectorised —
    no entry (or claim) hydration.
    """
    columnar_sizes = (
        _columnar_dg_sizes(dataset)
        if getattr(dataset, "columnar", None) is not None
        else None
    )
    per_ecosystem: Dict[str, List[CdfPoint]] = {}
    all_sizes: List[int] = []
    for ecosystem in MAJOR_ECOSYSTEMS:
        if columnar_sizes is not None:
            sizes = columnar_sizes.get(ecosystem, [])
        else:
            sizes = [
                len(entry.sources) for entry in dataset.for_ecosystem(ecosystem)
            ]
        all_sizes.extend(sizes)
        per_ecosystem[ecosystem] = empirical_cdf(sizes)
    single = cdf_fraction_at(all_sizes, 1)
    more_than_three = 1.0 - cdf_fraction_at(all_sizes, 3)
    return DgSizeCdf(
        per_ecosystem=per_ecosystem,
        single_source_fraction=single,
        more_than_three_fraction=more_than_three,
    )
