"""Lesson 4, operationalised — reports reveal who runs the campaigns.

The paper: "malicious packages often lack context about how and who
released them, [but] security reports disclose the information about
corresponding SSC attack campaigns." Measured: actor aliases recovered
from the crawled report prose attribute a substantial slice of the
dataset, and each alias maps cleanly onto one ground-truth actor.
"""

from __future__ import annotations

import pytest

from repro.analysis.actors import compute_actor_attribution


def test_actor_attribution(benchmark, artifacts, show):
    attribution = benchmark(compute_actor_attribution, artifacts.dataset)
    show("Actor attribution from security reports", attribution.render())

    assert len(attribution.profiles) > 10, "many actors get named"
    assert attribution.mean_purity > 0.95, (
        "an alias almost never mixes two true actors"
    )
    assert attribution.coverage > 0.1, (
        "reports attribute a visible slice of the dataset"
    )
    assert attribution.coverage < 0.9, (
        "most packages still lack actor context — the paper's point"
    )
