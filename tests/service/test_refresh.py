"""Incremental refresh: a merge diff updates the live index in place."""

from __future__ import annotations

import pytest

from repro.collection.records import MalwareDataset
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.service.cache import EnrichmentService, build_service
from repro.service.enrich import (
    VERDICT_MALICIOUS,
    EnrichmentEngine,
    Indicator,
)
from repro.service.index import IntelIndex
from repro.service.refresh import refresh_index

from tests.core.helpers import dataset, entry, report


def _engine(ds) -> EnrichmentEngine:
    return EnrichmentEngine(IntelIndex.build(MalGraph.build(ds)))


def test_added_packages_resolve_after_refresh():
    engine = _engine(dataset([entry("old-pkg")]))
    fresh = entry("new-pkg", code="def other():\n    return 1\n")
    merged, diff, stats = refresh_index(engine.index, dataset([fresh]))
    assert diff.added == [fresh.package]
    assert stats.packages_added == 1
    assert engine.index.dataset is merged
    result = engine.lookup(name="new-pkg", version="1.0")
    assert result.verdict == VERDICT_MALICIOUS
    by_sha = engine.lookup(sha256=fresh.sha256())
    assert by_sha.matches == ["pypi:new-pkg@1.0"]


def test_refresh_links_signature_duplicates_into_family():
    shared = "def payload():\n    return 'dup'\n"
    engine = _engine(dataset([entry("seed-pkg", code=shared)]))
    twin = entry("late-twin", code=shared)
    _, _, stats = refresh_index(engine.index, dataset([twin]))
    assert stats.families_linked == 1
    families = engine.index.families_of(twin.package)
    assert families
    assert engine.index.group_kind(families[0]) is GroupKind.DG
    members = {e.package.name for e in engine.index.lookup_group(families[0])}
    assert members == {"seed-pkg", "late-twin"}
    # and the family is reachable from the enrichment result
    assert engine.lookup(name="late-twin").families == families


def test_refresh_extends_existing_duplicated_group():
    shared = "def payload():\n    return 'trip'\n"
    engine = _engine(dataset([entry("twin-a", code=shared), entry("twin-b", code=shared)]))
    existing = engine.index.families_of(
        engine.index.lookup_name("twin-a")[0].package
    )
    assert existing, "seed world should already hold a DG family"
    third = entry("twin-c", code=shared)
    refresh_index(engine.index, dataset([third]))
    assert set(engine.index.families_of(third.package)) & set(existing)


def test_refresh_registers_new_reports_as_campaigns():
    a, b = entry("pkg-a"), entry("pkg-b", code="def b():\n    return 2\n")
    engine = _engine(dataset([a, b]))
    covering = report("r-new", [a.package, b.package])
    covering.actor_alias = "ShadyActor"
    _, diff, stats = refresh_index(engine.index, dataset([], [covering]))
    assert diff.new_reports == ["r-new"]
    assert stats.campaigns_added == 1
    result = engine.lookup(name="pkg-a")
    assert result.actors == ["ShadyActor"]
    assert any(g.startswith("CG-r") for g in result.campaigns)


def test_refresh_invalidates_wrapped_service():
    ds = dataset([entry("old-pkg")])
    service = build_service(MalGraph.build(ds))
    fresh = entry("fresh-pkg", code="def f():\n    return 3\n")
    # a stale negative sits in the cache before the refresh
    assert service.enrich(Indicator(name="fresh-pkg")).verdict != VERDICT_MALICIOUS
    _, _, stats = refresh_index(service.index, dataset([fresh]), service=service)
    assert stats.cache_cleared
    assert service.enrich(Indicator(name="fresh-pkg")).verdict == VERDICT_MALICIOUS


def test_refresh_merges_claims_for_known_packages():
    held = entry("known-pkg", sources=("snyk",))
    engine = _engine(dataset([held]))
    again = entry("known-pkg", sources=("phylum",))
    merged, diff, stats = refresh_index(engine.index, dataset([again]))
    assert stats.packages_added == 0
    assert diff.new_sources == {held.package: {"phylum"}}
    keys = {row["key"] for row in engine.lookup(name="known-pkg").sources}
    assert keys == {"snyk", "phylum"}


# -- against the simulated world ------------------------------------------

@pytest.fixture(scope="module")
def split_world_service(small_dataset):
    """Index built from half the collected world; other half held back."""
    half = len(small_dataset.entries) // 2
    old = MalwareDataset(
        entries=list(small_dataset.entries[:half]),
        reports=list(small_dataset.reports[: len(small_dataset.reports) // 2]),
    )
    held_back = MalwareDataset(
        entries=list(small_dataset.entries[half:]),
        reports=list(small_dataset.reports[len(small_dataset.reports) // 2 :]),
    )
    return build_service(MalGraph.build(old)), held_back


def test_world_refresh_resolves_every_newly_merged_package(split_world_service):
    service, held_back = split_world_service
    merged, diff, stats = refresh_index(service.index, held_back, service=service)
    assert stats.packages_added == len(diff.added) > 0
    for e in held_back.entries:
        result = service.enrich(
            Indicator(
                name=e.package.name,
                version=e.package.version,
                ecosystem=e.package.ecosystem,
            )
        )
        assert result.verdict == VERDICT_MALICIOUS, str(e.package)
    assert service.index.package_count == len(merged)
