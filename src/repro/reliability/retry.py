"""Resilience primitives: retry with backoff, deadlines, circuit breakers.

All timing runs on a :class:`RetryClock` — a simulated monotonic clock
that ``sleep`` advances instantly — so a chaos run over thousands of
faulted fetches finishes in milliseconds of wall time while still
exercising deadlines and breaker cool-downs, and two runs with the same
seed are bit-reproducible.

The primitives key off the :class:`~repro.errors.TransientError` /
:class:`~repro.errors.PermanentError` split: only transient failures are
retried; a permanent failure is re-raised before the first backoff, so
retrying it is a no-op by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import PermanentError, TransientError


class RetryClock:
    """Simulated monotonic clock: ``sleep`` advances ``now`` instantly."""

    def __init__(self, now: float = 0.0):
        self.now = float(now)
        self.slept = 0.0

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep {seconds}s")
        self.now += seconds
        self.slept += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    ``deadline`` bounds one *operation* (all attempts plus backoff) on
    the simulated clock — a slow fetch that consumes clock budget eats
    into it, so a string of timeouts gives up early instead of backing
    off forever.
    """

    max_retries: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    deadline: float = 60.0
    jitter: float = 0.25

    def backoff(self, retry: int, rng: random.Random) -> float:
        """Delay before the ``retry``-th retry (1-based), jittered."""
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        delay = min(
            self.base_delay * self.multiplier ** (retry - 1), self.max_delay
        )
        return delay * (1.0 + self.jitter * rng.random())

    def with_max_retries(self, max_retries: int) -> "RetryPolicy":
        return replace(self, max_retries=max_retries)


def retry_call(
    fn: Callable[[], object],
    policy: Optional[RetryPolicy] = None,
    clock: Optional[RetryClock] = None,
    rng: Optional[random.Random] = None,
    on_error: Optional[Callable[[TransientError], None]] = None,
):
    """Call ``fn`` through transient failures.

    Retries :class:`TransientError` up to ``policy.max_retries`` times
    with exponential backoff and deterministic jitter drawn from ``rng``;
    gives up early when the next backoff would overrun the per-operation
    ``deadline`` on ``clock``. :class:`PermanentError` (and any
    non-transient exception) propagates immediately — zero retries.

    ``on_error`` observes every transient failure (including the final
    one), which is how the degradation report counts injected faults.
    """
    policy = policy if policy is not None else RetryPolicy()
    clock = clock if clock is not None else RetryClock()
    rng = rng if rng is not None else random.Random(0)
    start = clock.now
    retries = 0
    while True:
        try:
            return fn()
        except PermanentError:
            raise
        except TransientError as failure:
            if on_error is not None:
                on_error(failure)
            retries += 1
            if retries > policy.max_retries:
                raise
            delay = policy.backoff(retries, rng)
            if clock.now - start + delay > policy.deadline:
                raise
            clock.sleep(delay)


#: Circuit-breaker states.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-dependency closed → open → half-open breaker.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses callers (fast-fail, no fault draws).
    After ``cooldown`` simulated seconds the breaker half-opens and lets
    **exactly one** probe through: every other caller keeps fast-failing
    until that probe reports back (``record_success`` closes the
    circuit, ``record_failure`` re-opens it for another cool-down
    window). Admitting the whole queue on the half-open transition would
    stampede a dependency that just proved itself unhealthy — the
    thundering-herd failure mode this gate exists to prevent.
    """

    def __init__(
        self,
        clock: RetryClock,
        name: str = "",
        failure_threshold: int = 5,
        cooldown: float = 120.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.clock = clock
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = STATE_CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0
        #: True while the half-open window's single probe is in flight.
        self._probe_in_flight = False

    def allow(self) -> bool:
        """Whether a caller may attempt the guarded operation now."""
        if self.state == STATE_OPEN:
            if (
                self.opened_at is not None
                and self.clock.now - self.opened_at >= self.cooldown
            ):
                self.state = STATE_HALF_OPEN
                self._probe_in_flight = True
                return True
            return False
        if self.state == STATE_HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self.state = STATE_CLOSED
        self.opened_at = None
        self._probe_in_flight = False

    def record_failure(self) -> bool:
        """Record one operation-level failure; True when this trip opened
        the circuit (transition into the open state)."""
        self._probe_in_flight = False
        self.failures += 1
        should_open = (
            self.state == STATE_HALF_OPEN
            or self.failures >= self.failure_threshold
        )
        if should_open and self.state != STATE_OPEN:
            self.state = STATE_OPEN
            self.opened_at = self.clock.now
            self.trips += 1
            return True
        if should_open:
            self.opened_at = self.clock.now
        return False
