"""Shared fixtures: session-scoped worlds so the expensive pipeline
stages build once per test run, and an isolated artifact cache so tests
never read or write the user's real ``~/.cache/repro``."""

from __future__ import annotations

import os

import pytest

from repro import pipeline
from repro.malware.corpus import Corpus, CorpusConfig, build_corpus
from repro.paper import PaperArtifacts, default_artifacts
from repro.world import World, WorldConfig, build_world, collect


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache(tmp_path_factory):
    """Point the pipeline disk cache at a session-local directory.

    Keeps the disk tier exercised (warm/reuse paths stay real) while
    isolating the suite from — and never polluting — the user's cache.
    """
    cache_dir = tmp_path_factory.mktemp("pipeline-cache")
    previous = os.environ.get(pipeline.store.CACHE_DIR_ENV)
    os.environ[pipeline.store.CACHE_DIR_ENV] = str(cache_dir)
    pipeline.configure(cache_dir=cache_dir)
    yield
    if previous is None:
        os.environ.pop(pipeline.store.CACHE_DIR_ENV, None)
    else:
        os.environ[pipeline.store.CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A fast, small ground-truth corpus (~500 releases)."""
    return build_corpus(CorpusConfig(seed=3, scale=0.15))


@pytest.fixture(scope="session")
def small_world() -> World:
    """A fast, small fully-simulated world."""
    return build_world(WorldConfig(seed=3, scale=0.15))


@pytest.fixture(scope="session")
def small_collection(small_world):
    """Collection result over the small world."""
    return collect(small_world)


@pytest.fixture(scope="session")
def small_dataset(small_collection):
    return small_collection.dataset


@pytest.fixture(scope="session")
def paper() -> PaperArtifacts:
    """The canonical full-scale artifacts (warmed once per session)."""
    return default_artifacts(seed=7, scale=1.0)
