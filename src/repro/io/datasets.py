"""Save / load collected datasets.

The paper publishes its dataset (names, versions, hashes, group labels)
through a repository; this module serialises a collected
:class:`MalwareDataset` the same way — entries (with artifacts inlined
when available) and reports — to a pair of JSONL files.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.ecosystem.package import PackageArtifact, PackageId
from repro.io.jsonl import read_jsonl, write_jsonl

PathLike = Union[str, Path]


def entry_to_dict(entry: DatasetEntry, include_artifact: bool = True) -> dict:
    record = {
        "ecosystem": entry.package.ecosystem,
        "name": entry.package.name,
        "version": entry.package.version,
        "claims": [
            {
                "source": c.source,
                "report_day": c.report_day,
                "shares_artifact": c.shares_artifact,
            }
            for c in entry.claims
        ],
        "artifact_origin": entry.artifact_origin,
        "release_day": entry.release_day,
        "removal_day": entry.removal_day,
        "detection_day": entry.detection_day,
        "downloads": entry.downloads,
        "sha256": entry.sha256(),
        "campaign_id": entry.campaign_id,
        "actor": entry.actor,
        "archetype": entry.archetype,
        "behavior_key": entry.behavior_key,
    }
    if include_artifact and entry.artifact is not None:
        record["artifact"] = entry.artifact.to_dict()
    return record


def entry_from_dict(raw: dict) -> DatasetEntry:
    entry = DatasetEntry(
        package=PackageId(raw["ecosystem"], raw["name"], raw["version"]),
        claims=[
            SourceClaim(
                source=c["source"],
                report_day=c["report_day"],
                shares_artifact=c["shares_artifact"],
            )
            for c in raw.get("claims", [])
        ],
        artifact_origin=raw.get("artifact_origin"),
        release_day=raw.get("release_day"),
        removal_day=raw.get("removal_day"),
        detection_day=raw.get("detection_day"),
        downloads=raw.get("downloads", 0),
        campaign_id=raw.get("campaign_id"),
        actor=raw.get("actor"),
        archetype=raw.get("archetype"),
        behavior_key=raw.get("behavior_key"),
    )
    if "artifact" in raw:
        entry.artifact = PackageArtifact.from_dict(raw["artifact"])
    return entry


def report_to_dict(report: CollectedReport) -> dict:
    return {
        "report_id": report.report_id,
        "url": report.url,
        "site": report.site,
        "category": report.category,
        "source": report.source,
        "publish_day": report.publish_day,
        "packages": [
            {"ecosystem": p.ecosystem, "name": p.name, "version": p.version}
            for p in report.packages
        ],
        "unresolved": [list(item) for item in report.unresolved],
        "actor_alias": report.actor_alias,
    }


def report_from_dict(raw: dict) -> CollectedReport:
    return CollectedReport(
        report_id=raw["report_id"],
        url=raw["url"],
        site=raw["site"],
        category=raw["category"],
        source=raw["source"],
        publish_day=raw.get("publish_day"),
        packages=[
            PackageId(p["ecosystem"], p["name"], p["version"])
            for p in raw.get("packages", [])
        ],
        unresolved=[tuple(item) for item in raw.get("unresolved", [])],
        actor_alias=raw.get("actor_alias"),
    )


def save_dataset(
    dataset: MalwareDataset,
    directory: PathLike,
    include_artifacts: bool = True,
) -> Path:
    """Write entries.jsonl + reports.jsonl under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_jsonl(
        directory / "entries.jsonl",
        (entry_to_dict(e, include_artifacts) for e in dataset.entries),
    )
    write_jsonl(
        directory / "reports.jsonl",
        (report_to_dict(r) for r in dataset.reports),
    )
    return directory


def load_dataset(directory: PathLike) -> MalwareDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    entries = [entry_from_dict(raw) for raw in read_jsonl(directory / "entries.jsonl")]
    reports = [
        report_from_dict(raw) for raw in read_jsonl(directory / "reports.jsonl")
    ]
    return MalwareDataset(entries=entries, reports=reports)
