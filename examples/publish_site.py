#!/usr/bin/env python
"""Publish the dataset the way the paper's transparency website does.

Section II-D: the authors publish every package name with its signature
(hashes) and the manually labelled groups. This example collects a
world, builds MALGRAPH, writes the publication bundle (``index.json``,
``groups.json``, ``index.md``) and the Neo4j/GraphML exports, then
verifies the round trip by re-loading the saved dataset.

Run::

    python examples/publish_site.py [output-dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core.graph import EdgeType
from repro.io.datasets import load_dataset, save_dataset
from repro.io.export import to_neo4j_csv
from repro.io.publish import build_manifest, publish_dataset
from repro.paper import PaperArtifacts
from repro.world import WorldConfig


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.mkdtemp(prefix="repro-site-"))
    )
    print("Building a reduced-scale world and its MALGRAPH ...")
    artifacts = PaperArtifacts(WorldConfig(seed=7, scale=0.4))
    malgraph = artifacts.malgraph

    print(f"Publishing the dataset site to {out} ...")
    publish_dataset(malgraph, out / "site")
    manifest = build_manifest(malgraph)
    print(f"  {manifest.summary['packages']} packages "
          f"({manifest.summary['available']} with artifacts)")
    for kind, groups in manifest.groups.items():
        grouped = sum(len(g['members']) for g in groups)
        print(f"  {kind}: {len(groups)} groups covering {grouped} packages")

    print("Exporting the dependency subgraph for Neo4j ...")
    nodes, edges = to_neo4j_csv(
        malgraph.graph, out / "neo4j", edge_types=[EdgeType.DEPENDENCY]
    )
    print(f"  wrote {nodes.name}, {edges.name}")

    print("Saving and re-loading the raw dataset ...")
    save_dataset(artifacts.dataset, out / "dataset", include_artifacts=False)
    reloaded = load_dataset(out / "dataset")
    assert len(reloaded) == len(artifacts.dataset)
    print(f"  round-trip OK: {len(reloaded)} entries")
    print(f"\nAll artifacts under {out}")


if __name__ == "__main__":
    main()
