"""The graph event model and its reference dataset semantics.

A :class:`GraphEvent` is one observable change in the modelled
ecosystem. Four kinds exist:

* ``package_added`` — a package newly appears in the collection; the
  payload is the full serialised entry. Strict: the key must be new.
* ``package_detected`` — an already-collected package's knowledge
  changed (new source claims, a recovered artifact, detection/removal
  days, download counts); the payload is the full *replacement* entry.
  Strict: the key must exist.
* ``package_removed`` — the package leaves the collection entirely
  (e.g. reclassified as a false positive). A registry takedown that
  keeps the entry in the dataset is a ``package_detected`` update of
  ``removal_day``, not a removal.
* ``report_ingested`` — a new security report; payload is the full
  serialised report. Strict: the report id must be new.

:func:`apply_events_to_dataset` is the *reference semantics*: applying a
batch there defines the post-events collection that a cold
``MalGraph.build`` is compared against. The delta engine must produce a
graph byte-identical (canonically serialised) to that cold rebuild.

Events are hashed (:func:`event_batch_hash`) over their canonical JSON,
which is what the pipeline folds into delta-stage fingerprints, and
round-trip through JSONL for the ``repro update`` CLI.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
)
from repro.ecosystem.package import PackageId
from repro.errors import DatasetError

PathLike = Union[str, Path]


class EventKind(str, Enum):
    """What happened in the ecosystem."""

    PACKAGE_ADDED = "package_added"
    PACKAGE_DETECTED = "package_detected"
    PACKAGE_REMOVED = "package_removed"
    REPORT_INGESTED = "report_ingested"


@dataclass(frozen=True)
class GraphEvent:
    """One ordered ecosystem event; ``payload`` is canonical-JSON-able."""

    kind: EventKind
    payload_json: str  # canonical JSON, so events hash and compare stably

    # -- constructors ------------------------------------------------------
    @classmethod
    def _of(cls, kind: EventKind, payload: dict) -> "GraphEvent":
        return cls(
            kind=kind,
            payload_json=json.dumps(payload, sort_keys=True, separators=(",", ":")),
        )

    @classmethod
    def package_added(cls, entry: DatasetEntry) -> "GraphEvent":
        from repro.io.datasets import entry_to_dict

        return cls._of(EventKind.PACKAGE_ADDED, entry_to_dict(entry))

    @classmethod
    def package_detected(cls, entry: DatasetEntry) -> "GraphEvent":
        """Full replacement of an existing entry's knowledge."""
        from repro.io.datasets import entry_to_dict

        return cls._of(EventKind.PACKAGE_DETECTED, entry_to_dict(entry))

    @classmethod
    def package_removed(cls, package: PackageId) -> "GraphEvent":
        return cls._of(
            EventKind.PACKAGE_REMOVED,
            {
                "ecosystem": package.ecosystem,
                "name": package.name,
                "version": package.version,
            },
        )

    @classmethod
    def report_ingested(cls, report: CollectedReport) -> "GraphEvent":
        from repro.io.datasets import report_to_dict

        return cls._of(EventKind.REPORT_INGESTED, report_to_dict(report))

    # -- payload access ----------------------------------------------------
    @property
    def payload(self) -> dict:
        return json.loads(self.payload_json)

    def package_id(self) -> PackageId:
        """The affected package key (package events only)."""
        raw = self.payload
        return PackageId(raw["ecosystem"], raw["name"], raw["version"])

    def entry(self) -> DatasetEntry:
        from repro.io.datasets import entry_from_dict

        return entry_from_dict(self.payload)

    def report(self) -> CollectedReport:
        from repro.io.datasets import report_from_dict

        return report_from_dict(self.payload)

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": self.kind.value, "payload": self.payload}

    @classmethod
    def from_dict(cls, raw: dict) -> "GraphEvent":
        return cls._of(EventKind(raw["kind"]), raw["payload"])


def event_batch_hash(events: Sequence[GraphEvent]) -> str:
    """SHA256 over the batch's canonical JSON (order-sensitive)."""
    digest = hashlib.sha256()
    for event in events:
        digest.update(event.kind.value.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(event.payload_json.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# JSONL codec (the ``repro update`` interchange format)
# ---------------------------------------------------------------------------

def events_to_jsonl(events: Sequence[GraphEvent], path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def events_from_jsonl(path: PathLike) -> List[GraphEvent]:
    events: List[GraphEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(GraphEvent.from_dict(json.loads(line)))
    return events


# ---------------------------------------------------------------------------
# Reference semantics: events applied to a dataset
# ---------------------------------------------------------------------------

def apply_events_to_dataset(
    dataset: MalwareDataset, events: Sequence[GraphEvent]
) -> MalwareDataset:
    """The post-events collection (inputs are never mutated).

    Entry order is part of the contract (the similarity stage consumes
    entries in order): detected packages keep their position, removed
    packages vacate theirs, added packages append in event order — so a
    remove-then-republish lands at the end, exactly as a re-collection
    that saw the republished package last would place it.
    """
    entries: List[Optional[DatasetEntry]] = list(dataset.entries)
    position: Dict[PackageId, int] = {
        entry.package: i for i, entry in enumerate(dataset.entries)
    }
    reports: List[CollectedReport] = list(dataset.reports)
    report_ids = {report.report_id for report in reports}

    for event in events:
        if event.kind is EventKind.PACKAGE_ADDED:
            entry = event.entry()
            if entry.package in position:
                raise DatasetError(
                    f"package_added for existing package {entry.package}"
                )
            position[entry.package] = len(entries)
            entries.append(entry)
        elif event.kind is EventKind.PACKAGE_DETECTED:
            entry = event.entry()
            held = position.get(entry.package)
            if held is None:
                raise DatasetError(
                    f"package_detected for unknown package {entry.package}"
                )
            entries[held] = entry
        elif event.kind is EventKind.PACKAGE_REMOVED:
            pid = event.package_id()
            held = position.pop(pid, None)
            if held is None:
                raise DatasetError(f"package_removed for unknown package {pid}")
            entries[held] = None
        elif event.kind is EventKind.REPORT_INGESTED:
            report = event.report()
            if report.report_id in report_ids:
                raise DatasetError(
                    f"report_ingested for duplicate report {report.report_id!r}"
                )
            report_ids.add(report.report_id)
            reports.append(report)
        else:  # pragma: no cover - exhaustive over EventKind
            raise DatasetError(f"unknown event kind {event.kind!r}")

    return MalwareDataset(
        entries=[entry for entry in entries if entry is not None],
        reports=reports,
    )


def iter_package_events(
    events: Iterable[GraphEvent],
) -> Iterable[GraphEvent]:
    """The package-level subset of a batch, in order."""
    for event in events:
        if event.kind is not EventKind.REPORT_INGESTED:
            yield event
