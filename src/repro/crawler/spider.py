"""The web crawler (Scrapy substitute).

Section II-B: "The input of our web crawler is the website URL, and the
output is the HTML pages. We used keywords (e.g. 'malicious' and
'malware') to filter out irrelevant HTML pages."

:class:`Spider` walks the simulated web: seeded with website domains, it
reads each site's index, fetches pages, applies the keyword pre-filter
and hands surviving pages to the extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.crawler.extract import ExtractedReport, extract_report, is_security_report
from repro.errors import CrawlError
from repro.intel.web import SimulatedWeb


@dataclass
class CrawlStats:
    """Bookkeeping for one crawl."""

    sites_visited: int = 0
    pages_fetched: int = 0
    pages_filtered_out: int = 0
    reports_extracted: int = 0
    unusable_reports: int = 0


@dataclass
class CrawlResult:
    """Extracted reports plus crawl statistics."""

    reports: List[ExtractedReport]
    stats: CrawlStats


class Spider:
    """Crawl a simulated web from a seed list of sites."""

    def __init__(self, web: SimulatedWeb, max_pages_per_site: int = 10_000):
        self.web = web
        self.max_pages_per_site = max_pages_per_site

    def crawl_site(self, site: str, stats: Optional[CrawlStats] = None) -> List[ExtractedReport]:
        """Crawl one website; returns usable extracted reports."""
        stats = stats if stats is not None else CrawlStats()
        stats.sites_visited += 1
        reports: List[ExtractedReport] = []
        for url in self.web.site_index(site)[: self.max_pages_per_site]:
            page = self.web.fetch(url)
            if page is None:
                raise CrawlError(f"listed URL {url!r} is not fetchable")
            stats.pages_fetched += 1
            if not is_security_report(page.html):
                stats.pages_filtered_out += 1
                continue
            report = extract_report(url, site, page.html)
            if report.usable:
                stats.reports_extracted += 1
                reports.append(report)
            else:
                stats.unusable_reports += 1
        return reports

    def crawl(self, sites: Sequence[str]) -> CrawlResult:
        """Crawl every seed site."""
        stats = CrawlStats()
        reports: List[ExtractedReport] = []
        for site in sites:
            reports.extend(self.crawl_site(site, stats))
        return CrawlResult(reports=reports, stats=stats)

    def discover_sites(self) -> List[str]:
        """All sites of the simulated web (the paper's search-engine
        expansion step that grew the seed list to 68 websites)."""
        return sorted(self.web.sites)
