"""Analyses reproducing every table and figure of the paper."""

from repro.analysis.actors import (
    ActorAttribution,
    ActorProfile,
    compute_actor_attribution,
)
from repro.analysis.campaigns import (
    ActivePeriodCdf,
    CampaignTimeline,
    compute_active_periods,
    pick_example_campaign,
)
from repro.analysis.diversity import (
    DiversityTable,
    GraphStatsTable,
    compute_diversity,
    compute_graph_stats,
)
from repro.analysis.evolution import (
    DownloadEvolution,
    IdnRow,
    OperationDistribution,
    TopIdnTable,
    compute_download_evolution,
    compute_operation_distribution,
    compute_top_idn,
    evolution_groups,
)
from repro.analysis.inventory import (
    ReleaseTimeline,
    ReportInventory,
    SourceInventory,
    compute_release_timeline,
    compute_report_inventory,
    compute_source_inventory,
)
from repro.analysis.overlap import (
    DgSizeCdf,
    OverlapMatrix,
    compute_dg_size_cdf,
    compute_overlap_matrix,
)
from repro.analysis.quality import (
    FreshnessTable,
    MissingRateTable,
    UnavailabilityCauses,
    compute_freshness,
    compute_missing_rates,
    compute_unavailability_causes,
)
from repro.analysis.render import (
    render_bars,
    render_box_series,
    render_cdf,
    render_table,
    render_timeline,
)
from repro.analysis.families import (
    FamilyCensus,
    FamilyRow,
    compute_family_census,
    true_category,
)
from repro.analysis.insights import Insight, InsightReport, compute_insights
from repro.analysis.lifecycle import LifecycleTrends, compute_lifecycle_trends
from repro.analysis.naming import NamingCensus, compute_naming_census
from repro.analysis.subgraph import ExampleSubgraph, compute_example_subgraph
from repro.analysis.stability import (
    StabilitySeries,
    compute_stability,
    snapshot_dataset,
)
from repro.analysis.whatif import (
    DefenseScenario,
    DefenseSweep,
    compute_defense_sweep,
    measure_scenario,
)
from repro.analysis.validation import (
    ValidationReport,
    ValidationScore,
    adjusted_rand_index,
    bcubed,
    validate_groups,
)
from repro.analysis.stats import (
    BoxStats,
    CdfPoint,
    bin_by,
    box_stats,
    cdf_fraction_at,
    empirical_cdf,
    percentage,
    quantile_at_fraction,
)

__all__ = [
    "ActivePeriodCdf",
    "ActorAttribution",
    "ActorProfile",
    "BoxStats",
    "CampaignTimeline",
    "CdfPoint",
    "DefenseScenario",
    "DefenseSweep",
    "DgSizeCdf",
    "DiversityTable",
    "DownloadEvolution",
    "ExampleSubgraph",
    "FamilyCensus",
    "FamilyRow",
    "FreshnessTable",
    "GraphStatsTable",
    "IdnRow",
    "Insight",
    "InsightReport",
    "LifecycleTrends",
    "MissingRateTable",
    "NamingCensus",
    "OperationDistribution",
    "OverlapMatrix",
    "ReleaseTimeline",
    "ReportInventory",
    "SourceInventory",
    "StabilitySeries",
    "TopIdnTable",
    "UnavailabilityCauses",
    "ValidationReport",
    "ValidationScore",
    "adjusted_rand_index",
    "bcubed",
    "bin_by",
    "box_stats",
    "cdf_fraction_at",
    "compute_active_periods",
    "compute_actor_attribution",
    "compute_defense_sweep",
    "compute_dg_size_cdf",
    "compute_diversity",
    "compute_download_evolution",
    "compute_example_subgraph",
    "compute_family_census",
    "compute_freshness",
    "compute_graph_stats",
    "compute_insights",
    "compute_lifecycle_trends",
    "compute_missing_rates",
    "compute_naming_census",
    "compute_operation_distribution",
    "compute_overlap_matrix",
    "compute_release_timeline",
    "compute_report_inventory",
    "compute_source_inventory",
    "compute_stability",
    "compute_top_idn",
    "compute_unavailability_causes",
    "empirical_cdf",
    "evolution_groups",
    "measure_scenario",
    "percentage",
    "pick_example_campaign",
    "quantile_at_fraction",
    "render_bars",
    "render_box_series",
    "render_cdf",
    "render_table",
    "render_timeline",
    "snapshot_dataset",
    "true_category",
    "validate_groups",
]
