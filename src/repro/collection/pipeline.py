"""The collection pipeline (Section II, Fig. 1).

Four stages mirror the paper's methodology:

1. **open datasets** — download records (and artifacts, when shipped)
   from the four academic datasets and DataDog;
2. **web crawl** — spider the website sources' blogs, keyword-filter,
   extract (name, version) records from report pages; crawl the full
   68-site web for the security-report corpus;
3. **SNS** — parse package mentions out of the tweet feed;
4. **mirror recovery** — search mirror registries for every record whose
   artifact no source shared.

A false-positive filter implements the paper's validity rule: "if the
root registry does not remove a package, it is not a malicious package".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.mirrorsearch import RecoveryStats, recover_from_mirrors
from repro.connectors.builtin import OpenDatasetConnector, builtin_registry
from repro.connectors.registry import ConnectorRegistry
from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.crawler.extract import ExtractedReport, extract_tweet
from repro.crawler.spider import CrawlStats, Spider
from repro.ecosystem.mirror import MirrorNetwork
from repro.ecosystem.package import PackageId
from repro.ecosystem.registry import RegistryHub
from repro.errors import PackageNotFoundError
from repro.intel.reports import ReportCorpus, Website
from repro.intel.sns import Tweet
from repro.intel.sources import (
    SOURCE_PROFILES,
    AttributionOutcome,
    SourceKind,
    SourceProfile,
)
from repro.intel.web import SimulatedWeb
from repro.malware.corpus import Corpus
from repro.reliability.report import DegradationReport


@dataclass
class CollectionStats:
    """Bookkeeping across the whole pipeline run."""

    dataset_records: int = 0
    crawl: CrawlStats = field(default_factory=CrawlStats)
    crawled_records: int = 0
    sns_records: int = 0
    false_positives_dropped: int = 0
    unknown_mentions: int = 0
    merged_entries: int = 0
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    #: True when a resilient run gave anything up (see ``degradation``).
    degraded: bool = False
    #: Full quarantine ledger of a resilient run; None for plain runs.
    degradation: Optional[DegradationReport] = None
    #: per-source lifecycle health at end of run (connector key ->
    #: :meth:`repro.connectors.SourceHealth.to_dict`), in Table-I order.
    source_health: Dict[str, dict] = field(default_factory=dict)


@dataclass
class CollectionResult:
    dataset: MalwareDataset
    stats: CollectionStats


class CollectionPipeline:
    """Runs Section II end-to-end against a simulated world."""

    def __init__(
        self,
        registries: RegistryHub,
        mirrors: MirrorNetwork,
        profiles: Sequence[SourceProfile] = tuple(SOURCE_PROFILES),
        resilience=None,
        connectors: Optional[ConnectorRegistry] = None,
    ):
        self.registries = registries
        self.mirrors = mirrors
        self.profiles = list(profiles)
        #: Optional repro.reliability.ResilienceContext — when set, every
        #: fallible stage retries through it and quarantines what still
        #: fails into its DegradationReport instead of raising.
        self.resilience = resilience
        #: the pluggable source catalogue; every stage-1 record flows
        #: through a connector's fetch → parse → validate → normalise
        #: path, and every source's lifecycle health lives here.
        self.connectors = (
            connectors
            if connectors is not None
            else builtin_registry(self.profiles)
        )
        from repro.intel.web import advisory_site

        self._site_to_source = {
            p.website: p.key
            for p in self.profiles
            if p.kind == SourceKind.WEBSITE and p.website
        }
        self._advisory_sites = {
            advisory_site(p): p.key
            for p in self.profiles
            if p.kind == SourceKind.WEBSITE and p.website
        }
        self._site_to_source.update(self._advisory_sites)

    # ------------------------------------------------------------------
    def run(
        self,
        outcome: AttributionOutcome,
        web: SimulatedWeb,
        feed: Sequence[Tweet],
        report_corpus: ReportCorpus,
    ) -> CollectionResult:
        """Execute all four stages and return the merged dataset."""
        stats = CollectionStats()
        entries: Dict[PackageId, DatasetEntry] = {}

        self._collect_open_datasets(outcome, entries, stats)
        crawled_reports = self._collect_websites(web, entries, stats)
        self._collect_sns(feed, entries, stats)

        stats.merged_entries = len(entries)
        dataset_entries = sorted(
            entries.values(), key=lambda e: (e.package.ecosystem, e.package.name, e.package.version)
        )
        self._fill_registry_facts(dataset_entries)
        stats.recovery = recover_from_mirrors(
            dataset_entries, self.mirrors, resilience=self.resilience
        )

        reports = self._resolve_reports(
            crawled_reports, entries, report_corpus.websites, stats
        )
        self._settle_crawl_health()
        stats.source_health = self.connectors.health_snapshot()
        if self.resilience is not None:
            stats.degradation = self.resilience.finalise()
            stats.degraded = stats.degradation.degraded
        dataset = MalwareDataset(entries=dataset_entries, reports=reports)
        return CollectionResult(dataset=dataset, stats=stats)

    # -- stage 1: open datasets -------------------------------------------
    def _collect_open_datasets(
        self,
        outcome: AttributionOutcome,
        entries: Dict[PackageId, DatasetEntry],
        stats: CollectionStats,
    ) -> None:
        dataset_sources = {
            p.key for p in self.profiles if p.kind == SourceKind.DATASET
        }
        records = [r for r in outcome.entries if r.source in dataset_sources]
        surviving = self._fetch_feeds(records)
        # Iterate in the outcome's original order regardless of which feed
        # served each record: claim order (and therefore dataset bytes)
        # must match the fault-free run exactly.
        for record in records:
            if id(record) not in surviving:
                continue
            stats.dataset_records += 1
            entry = self._claim(
                entries,
                record.package,
                record.source,
                record.report_day,
                record.shares_artifact,
            )
            if record.shares_artifact and entry.artifact is None:
                artifact = self._fetch_archived(record.package)
                if artifact is not None:
                    entry.artifact = artifact
                    entry.artifact_origin = f"source:{record.source}"

    def _fetch_feeds(self, records) -> set:
        """Pull each open-dataset connector; identity set of survivors.

        Every source's records are bound to its connector and pulled
        through the fetch → parse → validate → normalise template.
        Without fault injection that is the trivial fast path and every
        record survives (the connectors' ``normalise`` returns the very
        objects attribution produced, so collection output is
        byte-identical). Under a fault plan each pull runs through the
        retry machinery: a feed that stays dark loses its records
        (``skipped_sources``, connector goes dark), one that only ever
        emitted partially degrades to the best partial emission seen
        (``partial_sources``), and drifted records are quarantined
        one-by-one (``quarantined_records``, connector degraded).
        """
        by_source: Dict[str, List] = {}
        for record in records:
            by_source.setdefault(record.source, []).append(record)
        surviving: set = set()
        for source in sorted(by_source):
            connector = self.connectors.maybe(source)
            if connector is None:
                # A profile the registry does not know (custom world
                # with a hand-built registry): give it a builtin shell.
                profile = next(p for p in self.profiles if p.key == source)
                connector = self.connectors.register(
                    OpenDatasetConnector(profile)
                )
            connector.bind(by_source[source])
            pull = connector.pull(self.resilience)
            surviving.update(id(r) for r in pull.records)
        return surviving

    # -- stage 2: web crawl ------------------------------------------------
    def _collect_websites(
        self,
        web: SimulatedWeb,
        entries: Dict[PackageId, DatasetEntry],
        stats: CollectionStats,
    ) -> List[ExtractedReport]:
        spider = Spider(web, resilience=self.resilience)
        result = spider.crawl(spider.discover_sites())
        stats.crawl = result.stats
        for report in result.reports:
            source_key = self._site_to_source.get(report.site)
            if source_key is None:
                continue  # echo site: report-corpus only, no Table-I claims
            for name, version in report.packages:
                package = PackageId(report.ecosystem, name, version)
                if not self._passes_fp_filter(package, stats):
                    continue
                stats.crawled_records += 1
                shares = self._source_shares(source_key, package)
                entry = self._claim(
                    entries,
                    package,
                    source_key,
                    report.publish_day or 0,
                    shares,
                )
                if shares and entry.artifact is None:
                    artifact = self._fetch_archived(package)
                    if artifact is not None:
                        entry.artifact = artifact
                        entry.artifact_origin = f"source:{source_key}"
        return result.reports

    # -- stage 3: SNS --------------------------------------------------------
    def _collect_sns(
        self,
        feed: Sequence[Tweet],
        entries: Dict[PackageId, DatasetEntry],
        stats: CollectionStats,
    ) -> None:
        sns_sources = [p for p in self.profiles if p.kind == SourceKind.SNS]
        if not sns_sources:
            return
        source_key = sns_sources[0].key
        for tweet in feed:
            parsed = extract_tweet(tweet.text)
            if parsed is None:
                continue
            ecosystem, name, version = parsed
            package = PackageId(ecosystem, name, version)
            if not self._passes_fp_filter(package, stats):
                continue
            stats.sns_records += 1
            shares = self._source_shares(source_key, package)
            entry = self._claim(entries, package, source_key, tweet.day, shares)
            if shares and entry.artifact is None:
                artifact = self._fetch_archived(package)
                if artifact is not None:
                    entry.artifact = artifact
                    entry.artifact_origin = f"source:{source_key}"

    def _settle_crawl_health(self) -> None:
        """Fold crawl/SNS outcomes into the connectors' health machines.

        Open-dataset health settles inside each connector's ``pull``;
        website and SNS records arrive via the spider and the tweet
        stream, so their connectors learn the verdict here: a source
        whose site (blog or advisory database) was skipped outright went
        dark, one that lost individual pages degraded, everything else
        pulled clean.
        """
        report = None if self.resilience is None else self.resilience.report
        skipped_sites = set(report.skipped_sites) if report else set()
        lost_hosts = set()
        if report is not None:
            for url in report.skipped_urls:
                rest = url.split("//", 1)[-1]
                lost_hosts.add(rest.split("/", 1)[0])
        for profile in self.profiles:
            connector = self.connectors.maybe(profile.key)
            if connector is None:
                continue
            if profile.kind == SourceKind.WEBSITE:
                from repro.intel.web import advisory_site

                sites = {profile.website, advisory_site(profile)}
                hosts = {site.split("/", 1)[0] for site in sites}
                if sites & skipped_sites:
                    connector.health.record_outage()
                elif hosts & lost_hosts:
                    connector.health.record_partial()
                else:
                    connector.health.record_success()
            elif profile.kind == SourceKind.SNS:
                # The tweet stream has no fault surface (yet): reading
                # it succeeded by the time we got here.
                connector.health.record_success()

    # -- shared helpers ------------------------------------------------------
    def _claim(
        self,
        entries: Dict[PackageId, DatasetEntry],
        package: PackageId,
        source: str,
        report_day: int,
        shares_artifact: bool,
    ) -> DatasetEntry:
        entry = entries.get(package)
        if entry is None:
            entry = DatasetEntry(package=package)
            entries[package] = entry
        if not any(c.source == source for c in entry.claims):
            entry.claims.append(
                SourceClaim(
                    source=source,
                    report_day=report_day,
                    shares_artifact=shares_artifact,
                )
            )
        return entry

    def _passes_fp_filter(self, package: PackageId, stats: CollectionStats) -> bool:
        """Validity rule: a package the root registry never removed is a
        false positive; a package the registry never saw is noise."""
        try:
            record = self.registries.lookup(package)
        except PackageNotFoundError:
            stats.unknown_mentions += 1
            return False
        if record.removal_day is None:
            stats.false_positives_dropped += 1
            return False
        return True

    def _fetch_archived(self, package: PackageId):
        """A source that shares artifacts archived the package when it
        reported it; the bits are identical to what the registry held."""
        try:
            return self.registries.lookup(package).artifact
        except PackageNotFoundError:
            return None

    def _source_shares(self, source_key: str, package: PackageId) -> bool:
        """Whether this source's portal serves the artifact for a crawled
        record (comonotone across sources; see
        :func:`repro.intel.sources.source_shares_package`)."""
        profile = next(p for p in self.profiles if p.key == source_key)
        from repro.intel.sources import source_shares_package

        return source_shares_package(profile, package)

    def _fill_registry_facts(self, entries: List[DatasetEntry]) -> None:
        """Attach public registry metadata (release/removal/downloads).

        The paper reads these from registry APIs and download-stats
        services, which keep serving metadata for removed packages.
        """
        for entry in entries:
            try:
                record = self.registries.lookup(entry.package)
            except PackageNotFoundError:
                continue
            entry.release_day = record.release_day
            entry.removal_day = record.removal_day
            entry.detection_day = record.detection_day
            entry.downloads = record.downloads

    def _resolve_reports(
        self,
        crawled: List[ExtractedReport],
        entries: Dict[PackageId, DatasetEntry],
        websites: Sequence[Website],
        stats: CollectionStats,
    ) -> List[CollectedReport]:
        category_of = {site.domain: site.category for site in websites}
        reports: List[CollectedReport] = []
        # Advisory-database pages are record listings, not analysis
        # reports: they feed claims but not the report corpus.
        crawled = [r for r in crawled if r.site not in self._advisory_sites]
        for idx, report in enumerate(crawled):
            collected = CollectedReport(
                report_id=f"crawl-{idx:05d}",
                url=report.url,
                site=report.site,
                category=category_of.get(report.site, "Other"),
                source=self._site_to_source.get(report.site, "echo"),
                publish_day=report.publish_day,
                actor_alias=report.actor_alias,
            )
            for name, version in report.packages:
                package = PackageId(report.ecosystem, name, version)
                if package in entries:
                    collected.packages.append(package)
                else:
                    collected.unresolved.append((name, version))
            reports.append(collected)
        return reports


def attach_ground_truth(dataset: MalwareDataset, corpus: Corpus) -> None:
    """Label dataset entries with the generating campaign (validation only).

    The pipeline itself never reads these fields; analyses use them to
    score how well MALGRAPH groups recover true campaigns.
    """
    index = {}
    for campaign in corpus.campaigns:
        for release in campaign.releases:
            index[release.artifact.id] = campaign
    for entry in dataset.entries:
        campaign = index.get(entry.package)
        if campaign is not None:
            entry.campaign_id = campaign.id
            entry.actor = campaign.actor
            entry.archetype = campaign.archetype.value
            entry.behavior_key = campaign.behavior_key
