#!/usr/bin/env python
"""Smoke test for deterministic chaos runs across processes.

Runs ``collect --fault-plan heavy`` twice in fresh subprocesses with the
same fault-plan seed and asserts the two DegradationReports are
byte-identical (bit-reproducible chaos), that the run really degraded,
and that its internal accounting balances: every injected fault is
either a recovered or a fatal observed error. Also proves the moderate
plan recovers completely — its collect exits 0 with ``degraded: false``.
Exits nonzero on any failure.

Usage: PYTHONPATH=src python scripts/smoke_chaos.py [--seed N] [--scale F]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*cli_args: str, expect: int = 0) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", *cli_args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=False,
    )
    assert result.returncode == expect, (
        f"repro {' '.join(cli_args)} exited {result.returncode} "
        f"(wanted {expect}):\n{result.stderr}\n{result.stdout}"
    )
    return result.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--fault-seed", type=int, default=17)
    args = parser.parse_args(argv)

    world_args = (
        "--no-disk-cache",
        "--seed", str(args.seed),
        "--scale", str(args.scale),
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        reports = []
        for attempt in ("first", "second"):
            out = Path(tmp) / f"degradation-{attempt}.json"
            run_cli(
                *world_args,
                "collect",
                "--fault-plan", "heavy",
                "--fault-seed", str(args.fault_seed),
                "--allow-degraded",
                "--degradation-json", str(out),
            )
            reports.append(out.read_bytes())
        assert reports[0] == reports[1], (
            "two heavy chaos runs with one seed diverged"
        )
        print("heavy chaos DegradationReport byte-identical across processes")

        report = json.loads(reports[0])
        assert report["degraded"] is True, report
        injected = sum(report["faults_injected"].values())
        observed = sum(report["errors_by_kind"].values())
        booked = report["errors_recovered"] + report["errors_fatal"]
        assert injected == observed == booked, (
            f"accounting broken: injected={injected} observed={observed} "
            f"booked={booked}"
        )
        print(
            f"accounting balanced: {injected} faults = "
            f"{report['errors_recovered']} recovered + "
            f"{report['errors_fatal']} fatal"
        )

        # The moderate plan must recover everything: exit 0, not degraded.
        out = Path(tmp) / "degradation-moderate.json"
        run_cli(
            *world_args,
            "collect",
            "--fault-plan", "moderate",
            "--fault-seed", str(args.fault_seed),
            "--degradation-json", str(out),
        )
        moderate = json.loads(out.read_text())
        assert moderate["degraded"] is False, moderate
        assert moderate["retries"] > 0, moderate
        print(
            f"moderate chaos fully recovered "
            f"({moderate['retries']} retries absorbed)"
        )
        print("smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
