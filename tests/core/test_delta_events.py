"""Graph events: payloads, JSONL, batch hashing, dataset application."""

from __future__ import annotations

import pytest

from repro.collection.merge import events_from_datasets, merge_datasets
from repro.core.delta.events import (
    EventKind,
    GraphEvent,
    apply_events_to_dataset,
    event_batch_hash,
    events_from_jsonl,
    events_to_jsonl,
)
from repro.errors import DatasetError
from repro.io.datasets import entry_to_dict

from tests.core.helpers import dataset, entry, report


def _base():
    return dataset(
        [entry("alpha"), entry("beta", code="def b():\n    return 2\n")],
        [report("r-0", [entry("alpha").package])],
    )


# ---------------------------------------------------------------------------
# Event payloads and serialisation
# ---------------------------------------------------------------------------

def test_event_payload_roundtrips_entries_and_reports():
    held = entry("alpha", downloads=42, dependencies=("beta",))
    added = GraphEvent.package_added(held)
    assert added.kind is EventKind.PACKAGE_ADDED
    assert entry_to_dict(added.entry()) == entry_to_dict(held)

    covering = report("r-1", [held.package])
    ingested = GraphEvent.report_ingested(covering)
    assert ingested.report().report_id == "r-1"
    assert ingested.report().packages == [held.package]

    removed = GraphEvent.package_removed(held.package)
    assert removed.package_id() == held.package


def test_events_jsonl_roundtrip(tmp_path):
    held = entry("alpha")
    events = [
        GraphEvent.package_added(held),
        GraphEvent.package_detected(held),
        GraphEvent.package_removed(held.package),
        GraphEvent.report_ingested(report("r-1", [held.package])),
    ]
    path = events_to_jsonl(events, tmp_path / "events.jsonl")
    loaded = events_from_jsonl(path)
    assert loaded == events
    assert event_batch_hash(loaded) == event_batch_hash(events)


def test_batch_hash_is_order_sensitive():
    a = GraphEvent.package_added(entry("alpha"))
    b = GraphEvent.package_added(entry("beta", code="x = 1\n"))
    assert event_batch_hash([a, b]) != event_batch_hash([b, a])
    assert event_batch_hash([a]) != event_batch_hash([a, a])


# ---------------------------------------------------------------------------
# Dataset application semantics
# ---------------------------------------------------------------------------

def test_apply_events_add_detect_remove_report():
    base = _base()
    fresh = entry("gamma", code="def g():\n    return 3\n")
    richer = entry("alpha", downloads=99)
    events = [
        GraphEvent.package_added(fresh),
        GraphEvent.package_detected(richer),
        GraphEvent.package_removed(base.entries[1].package),
        GraphEvent.report_ingested(report("r-9", [fresh.package])),
    ]
    evolved = apply_events_to_dataset(base, events)
    # base untouched
    assert len(base) == 2 and base.get(richer.package).downloads == 0
    assert evolved.get(fresh.package) is not None
    assert evolved.get(richer.package).downloads == 99
    assert evolved.get(base.entries[1].package) is None
    assert {r.report_id for r in evolved.reports} == {"r-0", "r-9"}


def test_apply_events_updates_in_place_appends_additions():
    base = _base()
    events = [
        GraphEvent.package_detected(entry("beta", code="def b():\n    return 2\n", downloads=7)),
        GraphEvent.package_added(entry("gamma", code="x = 0\n")),
    ]
    evolved = apply_events_to_dataset(base, events)
    names = [e.package.name for e in evolved.entries]
    assert names == ["alpha", "beta", "gamma"]  # detect in place, add appended


def test_remove_then_republish_lands_at_the_end():
    base = _base()
    held = base.entries[0]
    events = [
        GraphEvent.package_removed(held.package),
        GraphEvent.package_added(entry("alpha", downloads=5)),
    ]
    evolved = apply_events_to_dataset(base, events)
    names = [e.package.name for e in evolved.entries]
    assert names == ["beta", "alpha"]
    assert evolved.get(held.package).downloads == 5


@pytest.mark.parametrize(
    "events",
    [
        [GraphEvent.package_added(entry("alpha"))],  # key already present
        [GraphEvent.package_detected(entry("ghost", code="x = 1\n"))],
        [GraphEvent.package_removed(entry("ghost").package)],
        [GraphEvent.report_ingested(report("r-0", []))],  # duplicate id
    ],
)
def test_apply_events_is_strict(events):
    with pytest.raises(DatasetError):
        apply_events_to_dataset(_base(), events)


# ---------------------------------------------------------------------------
# Diffing two collection runs into an event batch
# ---------------------------------------------------------------------------

def test_events_from_datasets_reaches_the_new_contents():
    old = _base()
    merged = merge_datasets(
        old,
        dataset(
            [entry("gamma", code="def g():\n    return 3\n")],
            [report("r-7", [entry("gamma").package])],
        ),
    )
    events = events_from_datasets(old, merged)
    evolved = apply_events_to_dataset(old, events)
    assert {e.package for e in evolved.entries} == {e.package for e in merged.entries}
    for e in merged.entries:
        assert entry_to_dict(evolved.get(e.package)) == entry_to_dict(e)
    assert {r.report_id for r in evolved.reports} == {r.report_id for r in merged.reports}


def test_events_from_datasets_empty_when_nothing_changed():
    base = _base()
    assert events_from_datasets(base, base) == []
    # a re-merge of the same data changes nothing either
    assert events_from_datasets(base, merge_datasets(base, base)) == []


def test_events_from_datasets_orders_removals_first():
    old = _base()
    new = dataset([entry("gamma", code="x = 9\n")], list(old.reports))
    events = events_from_datasets(old, new)
    kinds = [e.kind for e in events]
    assert kinds == [
        EventKind.PACKAGE_REMOVED,
        EventKind.PACKAGE_REMOVED,
        EventKind.PACKAGE_ADDED,
    ]
