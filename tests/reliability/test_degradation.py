"""End-to-end graceful degradation: recovery, accounting, determinism."""

from __future__ import annotations

import json

import pytest

from repro.io.datasets import (
    collection_stats_from_dict,
    collection_stats_to_dict,
    entry_to_dict,
)
from repro.pipeline import ArtifactStore, PipelineReport, PipelineRuntime
from repro.reliability import DegradationReport, FaultPlan, RetryPolicy
from repro.world import WorldConfig, run_collection

PLAN_SEED = 11


def dataset_bytes(result) -> str:
    return json.dumps(
        [entry_to_dict(e) for e in result.dataset.entries], sort_keys=True
    )


def report_bytes(result) -> str:
    return json.dumps(result.stats.degradation.to_dict(), sort_keys=True)


def assert_books_balance(report: DegradationReport) -> None:
    """Every injected fault surfaced as exactly one observed error, and
    every observed error was retried away or booked as fatal."""
    injected = sum(report.faults_injected.values())
    observed = sum(report.errors_by_kind.values())
    assert injected == observed == report.errors_recovered + report.errors_fatal


def test_null_plan_is_exactly_collect(small_world, small_collection):
    result = run_collection(small_world, plan=None)
    assert dataset_bytes(result) == dataset_bytes(small_collection)
    assert result.stats.degradation is None


def test_moderate_plan_recovers_the_full_dataset(small_world, small_collection):
    """Retries absorb every moderate fault: the merged dataset — and the
    Table-II-feeding stats — are byte-identical to the fault-free run."""
    result = run_collection(small_world, plan=FaultPlan.moderate(PLAN_SEED))
    assert not result.stats.degraded
    assert dataset_bytes(result) == dataset_bytes(small_collection)
    assert result.stats.crawl == small_collection.stats.crawl
    assert result.stats.recovery == small_collection.stats.recovery
    report = result.stats.degradation
    assert report.retries > 0  # chaos actually happened
    assert not report.degraded
    assert report.skipped_urls == []
    assert_books_balance(report)


def test_heavy_plan_completes_degraded_with_exact_accounting(small_world):
    plan = FaultPlan.heavy(PLAN_SEED)
    result = run_collection(small_world, plan=plan)  # must not raise
    stats = result.stats
    assert stats.degraded
    report = stats.degradation
    assert_books_balance(report)
    # every quarantined URL is both counted and listed, exactly once each
    assert stats.crawl.pages_unfetchable == len(report.skipped_urls)
    assert len(set(report.skipped_urls)) == len(report.skipped_urls)
    # every abandoned mirror scan is mirrored in the recovery stats
    assert stats.recovery.skipped == report.mirror_lookups_skipped
    # the two dark sources never answered
    assert set(plan.dark_sources) <= set(report.skipped_sources)
    assert report.fault_plan == plan.to_dict()
    # heavy chaos nevertheless collected a usable (if smaller) dataset
    assert result.dataset.entries


def test_same_seed_gives_byte_identical_reports(small_world):
    one = run_collection(small_world, plan=FaultPlan.heavy(PLAN_SEED))
    two = run_collection(small_world, plan=FaultPlan.heavy(PLAN_SEED))
    assert report_bytes(one) == report_bytes(two)
    assert dataset_bytes(one) == dataset_bytes(two)


def test_different_seed_gives_different_chaos(small_world):
    one = run_collection(small_world, plan=FaultPlan.heavy(PLAN_SEED))
    two = run_collection(small_world, plan=FaultPlan.heavy(PLAN_SEED + 1))
    assert report_bytes(one) != report_bytes(two)


def test_tiny_retry_budget_loses_more(small_world):
    plan = FaultPlan.heavy(PLAN_SEED)
    generous = run_collection(small_world, plan=plan)
    stingy = run_collection(
        small_world, plan=plan, policy=RetryPolicy().with_max_retries(0)
    )
    assert len(stingy.dataset.entries) <= len(generous.dataset.entries)
    assert stingy.stats.degradation.retries == 0


def test_degradation_report_round_trips(small_world):
    report = run_collection(
        small_world, plan=FaultPlan.heavy(PLAN_SEED)
    ).stats.degradation
    clone = DegradationReport.from_dict(report.to_dict())
    assert clone.to_dict() == report.to_dict()
    assert clone.degraded == report.degraded


def test_collection_stats_serialise_degradation(small_world):
    stats = run_collection(small_world, plan=FaultPlan.heavy(PLAN_SEED)).stats
    raw = collection_stats_to_dict(stats)
    clone = collection_stats_from_dict(raw)
    assert clone.degraded is True
    assert clone.crawl.pages_unfetchable == stats.crawl.pages_unfetchable
    assert clone.recovery.skipped == stats.recovery.skipped
    assert clone.degradation.to_dict() == stats.degradation.to_dict()
    # fault-free stats keep a clean wire format
    clean = collection_stats_from_dict(
        collection_stats_to_dict(type(stats)())
    )
    assert clean.degraded is False and clean.degradation is None


# -- pipeline-runtime quarantine --------------------------------------------

TINY = WorldConfig(seed=3, scale=0.05)


def runtime(tmp_path, **kwargs) -> PipelineRuntime:
    return PipelineRuntime(
        TINY,
        store=ArtifactStore(cache_dir=tmp_path / "cache", disk_enabled=True),
        report=PipelineReport(),
        **kwargs,
    )


def test_degraded_artifact_is_not_cached_by_default(tmp_path):
    rt = runtime(tmp_path, fault_plan=FaultPlan.heavy(PLAN_SEED))
    first = rt.collection()
    assert first.stats.degraded
    assert rt.store.get_memory("collection", rt.fingerprint("collection")) is None
    assert not rt.store.has_disk("collection", rt.fingerprint("collection"))
    rt.collection()
    assert rt.report.counts()["collection"]["misses"] == 2  # rebuilt, not hit


def test_allow_degraded_opts_into_caching(tmp_path):
    rt = runtime(
        tmp_path, fault_plan=FaultPlan.heavy(PLAN_SEED), allow_degraded=True
    )
    first = rt.collection()
    assert first.stats.degraded
    assert rt.store.has_disk("collection", rt.fingerprint("collection"))
    rt.collection()
    counts = rt.report.counts()["collection"]
    assert counts == {"hits": 1, "misses": 1}
    # and the persisted stats survive a disk round trip, flag intact
    fresh = runtime(
        tmp_path, fault_plan=FaultPlan.heavy(PLAN_SEED), allow_degraded=True
    )
    fresh.store.cache_dir = rt.store.cache_dir
    reloaded = fresh.collection()
    assert reloaded.stats.degraded
    assert reloaded.stats.degradation is not None


def test_fault_plan_is_part_of_the_fingerprint(tmp_path):
    clean = runtime(tmp_path)
    chaotic = runtime(
        tmp_path, fault_plan=FaultPlan.moderate(PLAN_SEED)
    )
    assert clean.fingerprint("collection") != chaotic.fingerprint("collection")
    assert clean.fingerprint("world") == chaotic.fingerprint("world")
    rebudgeted = runtime(
        tmp_path,
        fault_plan=FaultPlan.moderate(PLAN_SEED),
        retry_policy=RetryPolicy().with_max_retries(1),
    )
    assert rebudgeted.fingerprint("collection") != chaotic.fingerprint("collection")


def test_moderate_chaos_collection_matches_clean_artifact(tmp_path):
    """The moderate-chaos artifact (cacheable: not degraded) carries the
    same dataset bytes as the clean artifact under its own fingerprint."""
    clean = runtime(tmp_path).collection()
    chaotic = runtime(
        tmp_path, fault_plan=FaultPlan.moderate(PLAN_SEED)
    ).collection()
    assert not chaotic.stats.degraded
    assert dataset_bytes(chaotic) == dataset_bytes(clean)
