#!/usr/bin/env python
"""What-if: how fast must defenders be?

RQ4's insight is that malicious packages barely get downloaded because
registries remove them within days. This example runs the
counterfactual the paper cannot: replay the same multi-year attack
campaign population with defenders 4x faster to 4x slower, and compare
attacker yield.

Run::

    python examples/defense_whatif.py
"""

from __future__ import annotations

from repro.analysis.whatif import compute_defense_sweep


def main() -> None:
    print("Replaying the campaign population under five defender speeds ...\n")
    sweep = compute_defense_sweep(
        scales=(0.25, 0.5, 1.0, 2.0, 4.0), seed=7, corpus_scale=0.25
    )
    print(sweep.render())

    baseline = sweep.scenario(1.0)
    fast = sweep.scenario(0.25)
    slow = sweep.scenario(4.0)
    saved = baseline.total_downloads - fast.total_downloads
    cost = slow.total_downloads - baseline.total_downloads
    print(
        f"\nAgainst the historical baseline ({baseline.total_downloads:,} "
        "malicious downloads):"
    )
    print(
        f"  defenders 4x faster would have prevented {saved:,} downloads "
        f"({saved / baseline.total_downloads:.0%})"
    )
    print(
        f"  defenders 4x slower would have handed attackers {cost:,} more "
        f"({cost / baseline.total_downloads:.0%})"
    )
    print(
        "\nThe campaign population is identical in every scenario — only "
        "the defenders' scan latency changes."
    )


if __name__ == "__main__":
    main()
