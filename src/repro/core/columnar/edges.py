"""Vectorised edge census over columnar corpora.

Reimplements the *countable* relationship discovery of
:mod:`repro.core.edges` — duplicated signature groups, dependency pairs,
co-existing report groups — as array programs over a
:class:`ColumnarDataset`, with two contracts:

* **row-group parity** — the row-index groups returned here, hydrated in
  order, are exactly the entry groups the dataclass builders produce
  (same group order, same member order), so `MalGraph.build` can consume
  them and emit a byte-identical graph;
* **stats parity** — the :class:`GraphStats` computed here match
  `PropertyGraph.stats` for the same corpus: nodes = touched nodes,
  directed edges = ``2 × |unique pairs|`` for pairwise types and
  ``Σ n·(n−1)`` per clique for clique types (counted per clique even
  when cliques overlap, mirroring ``directed_edge_count_fast``).

Similar edges stay on the clustering pipeline — k-means over embeddings
is not a corpus scan and gains nothing from this layer.

Keys are packed as raw void views over int64 pool-id columns: memcmp
gives a consistent total order (all the joins need), without the
overflow risk of arithmetic key packing at 100× pool sizes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.columnar.tables import ColumnarDataset, _first_occurrence_mask, _offsets
from repro.core.graph import EdgeType, GraphStats


def void_keys(*cols: np.ndarray) -> np.ndarray:
    """Pack parallel int64 columns into one equality/ordering-comparable
    void column (memcmp order — consistent, not lexicographic)."""
    stacked = np.column_stack([np.asarray(c, dtype=np.int64) for c in cols])
    width = 8 * stacked.shape[1]
    return np.ascontiguousarray(stacked).view(np.dtype((np.void, width))).reshape(-1)


# ---------------------------------------------------------------------------
# Duplicated
# ---------------------------------------------------------------------------

def duplicated_row_groups(col: ColumnarDataset) -> List[np.ndarray]:
    """Row-index signature groups (>= 2 sharers), groups in
    first-occurrence order of the signature among available rows,
    members in row order — the order ``duplicated_groups_of`` emits."""
    avail_rows = np.nonzero(col.available_mask())[0]
    if len(avail_rows) == 0:
        return []
    sha = col.packages["sha"][avail_rows]
    uniq, inv, counts = np.unique(sha, return_inverse=True, return_counts=True)
    first = np.full(len(uniq), len(sha), dtype=np.int64)
    np.minimum.at(first, inv, np.arange(len(sha), dtype=np.int64))
    member_order = np.argsort(inv, kind="stable")
    bounds = _offsets(counts)
    groups: List[np.ndarray] = []
    for g in np.argsort(first, kind="stable"):
        if counts[g] < 2:
            continue
        members = avail_rows[member_order[bounds[g] : bounds[g + 1]]]
        groups.append(members)
    return groups


def duplicated_stats(col: ColumnarDataset) -> GraphStats:
    avail = col.packages["sha"][col.available_mask()]
    nodes = 0
    edges = 0
    if len(avail):
        _, counts = np.unique(avail, return_counts=True)
        big = counts[counts >= 2].astype(np.int64)
        nodes = int(big.sum())
        edges = int((big * (big - 1)).sum())
    return _stats(EdgeType.DUPLICATED, nodes, edges)


# ---------------------------------------------------------------------------
# Dependency
# ---------------------------------------------------------------------------

def dependency_pair_rows(col: ColumnarDataset) -> Tuple[np.ndarray, np.ndarray]:
    """(source row, target row) dependency pairs in the dataclass
    builder's order: entry order × declared-dependency order × target
    entry order, self-pairs excluded."""
    pkgs = col.packages
    n = col.n_packages
    empty = np.zeros(0, dtype=np.int64)
    if n == 0 or len(col.dep) == 0:
        return empty, empty
    name_keys = void_keys(pkgs["eco"], pkgs["name"])
    row_order = np.argsort(name_keys, kind="stable")
    sorted_keys = name_keys[row_order]
    dep_counts = col.dep_offsets[1:] - col.dep_offsets[:-1]
    src_of_dep = np.repeat(np.arange(n, dtype=np.int64), dep_counts)
    dep_keys = void_keys(pkgs["eco"][src_of_dep], col.dep)
    lo = np.searchsorted(sorted_keys, dep_keys, side="left")
    hi = np.searchsorted(sorted_keys, dep_keys, side="right")
    match_counts = hi - lo
    out_off = _offsets(match_counts)
    total = int(out_off[-1])
    idx = np.repeat(lo - out_off[:-1], match_counts) + np.arange(
        total, dtype=np.int64
    )
    tgt = row_order[idx]
    src = np.repeat(src_of_dep, match_counts)
    keep = src != tgt
    return src[keep], tgt[keep]


def dependency_stats(col: ColumnarDataset) -> GraphStats:
    src, tgt = dependency_pair_rows(col)
    if len(src) == 0:
        return _stats(EdgeType.DEPENDENCY, 0, 0)
    pairs = void_keys(np.minimum(src, tgt), np.maximum(src, tgt))
    unique_pairs = len(np.unique(pairs))
    nodes = len(np.unique(np.concatenate([src, tgt])))
    return _stats(EdgeType.DEPENDENCY, nodes, 2 * unique_pairs)


# ---------------------------------------------------------------------------
# Co-existing
# ---------------------------------------------------------------------------

def _resolved_report_members(
    col: ColumnarDataset,
) -> Tuple[np.ndarray, np.ndarray]:
    """(report index, package row) for every resolvable report-package
    mention, deduplicated to first occurrence within each report."""
    n = col.n_packages
    empty = np.zeros(0, dtype=np.int64)
    if n == 0 or len(col.rpkg_eco) == 0:
        return empty, empty
    pkgs = col.packages
    pkg_keys = void_keys(pkgs["eco"], pkgs["name"], pkgs["version"])
    order = np.argsort(pkg_keys, kind="stable")
    sorted_keys = pkg_keys[order]
    rep_counts = col.rpkg_offsets[1:] - col.rpkg_offsets[:-1]
    rep_of = np.repeat(np.arange(col.n_reports, dtype=np.int64), rep_counts)
    want = void_keys(col.rpkg_eco, col.rpkg_name, col.rpkg_ver)
    pos = np.searchsorted(sorted_keys, want, side="left")
    pos_clipped = np.minimum(pos, n - 1)
    found = (pos < n) & (sorted_keys[pos_clipped] == want)
    rep_idx = rep_of[found]
    rows = order[pos_clipped[found]]
    uniq_mask = _first_occurrence_mask(rep_idx * np.int64(n + 1) + rows)
    return rep_idx[uniq_mask], rows[uniq_mask]


def coexisting_row_groups(col: ColumnarDataset) -> List[np.ndarray]:
    """Qualifying (>= 2 unique resolved members) report groups in report
    order, members in first-occurrence order — matching
    ``coexisting_groups_of``."""
    rep_idx, rows = _resolved_report_members(col)
    groups: List[np.ndarray] = []
    if len(rep_idx) == 0:
        return groups
    # rep_idx is nondecreasing (mentions are CSR-ordered by report)
    starts = np.nonzero(
        np.concatenate([[True], rep_idx[1:] != rep_idx[:-1]])
    )[0]
    bounds = np.concatenate([starts, [len(rep_idx)]])
    for a, b in zip(bounds[:-1], bounds[1:]):
        if b - a >= 2:
            groups.append(rows[a:b])
    return groups


def coexisting_stats(col: ColumnarDataset) -> GraphStats:
    rep_idx, rows = _resolved_report_members(col)
    if len(rep_idx) == 0:
        return _stats(EdgeType.COEXISTING, 0, 0)
    sizes = np.bincount(rep_idx, minlength=col.n_reports).astype(np.int64)
    big = sizes[sizes >= 2]
    edges = int((big * (big - 1)).sum())
    member_of_qualifying = sizes[rep_idx] >= 2
    nodes = len(np.unique(rows[member_of_qualifying]))
    return _stats(EdgeType.COEXISTING, nodes, edges)


# ---------------------------------------------------------------------------
# Census
# ---------------------------------------------------------------------------

def census(col: ColumnarDataset) -> Dict[EdgeType, GraphStats]:
    """Table II rows for the three corpus-scan edge types (similar edges
    require the clustering pipeline and are computed there)."""
    return {
        EdgeType.DUPLICATED: duplicated_stats(col),
        EdgeType.DEPENDENCY: dependency_stats(col),
        EdgeType.COEXISTING: coexisting_stats(col),
    }


def _stats(edge_type: EdgeType, nodes: int, edges: int) -> GraphStats:
    avg = edges / nodes if nodes else 0.0
    return GraphStats(
        edge_type=edge_type,
        nodes=nodes,
        directed_edges=edges,
        avg_out_degree=avg,
        avg_in_degree=avg,
    )
