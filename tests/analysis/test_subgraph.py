"""Fig. 3 example-subgraph picker."""

from __future__ import annotations

import pytest

from repro.analysis.subgraph import compute_example_subgraph
from repro.core.graph import EdgeType
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig

from tests.core.helpers import dataset, entry, report


def _rich_malgraph():
    """Three same-code packages that also share a report."""
    code = "def payload():\n    return 'fig3'\n"
    a = entry("fig-a", code=code, release_day=1)
    b = entry("fig-b", code=code, release_day=2)
    c = entry("fig-c", code=code, release_day=3)
    return MalGraph.build(
        dataset([a, b, c], [report("r1", [a.package, b.package, c.package])]),
        SimilarityConfig(seed=0, max_k=2),
    )


def test_example_subgraph_mixes_edge_kinds():
    excerpt = compute_example_subgraph(_rich_malgraph())
    assert excerpt is not None
    assert len(excerpt.nodes) == 3
    kinds = set(excerpt.edge_kinds)
    assert EdgeType.SIMILAR in kinds
    assert EdgeType.DUPLICATED in kinds  # identical code
    assert EdgeType.COEXISTING in kinds  # shared report


def test_example_subgraph_render_and_dot():
    excerpt = compute_example_subgraph(_rich_malgraph())
    out = excerpt.render()
    assert "Fig. 3" in out
    assert "fig-a" in out
    dot = excerpt.to_dot()
    assert '"fig-a" -- "fig-b"' in dot or '"fig-a" -- "fig-c"' in dot


def test_example_subgraph_requires_group_of_three():
    code = "def tiny():\n    return 1\n"
    two = dataset([entry("x", code=code), entry("y", code=code)])
    malgraph = MalGraph.build(two, SimilarityConfig(seed=0, max_k=1))
    assert compute_example_subgraph(malgraph) is None


def test_example_subgraph_caps_nodes():
    code = "def big():\n    return 'grp'\n"
    entries = [entry(f"m-{i}", code=code, release_day=i) for i in range(20)]
    malgraph = MalGraph.build(dataset(entries), SimilarityConfig(seed=0, max_k=1))
    excerpt = compute_example_subgraph(malgraph, max_nodes=5)
    assert len(excerpt.nodes) == 5


def test_world_fig3(paper):
    excerpt = paper.fig3_example_subgraph()
    assert excerpt is not None
    assert len(excerpt.edge_kinds) >= 2
