"""Property tests on mirror sync semantics (hypothesis).

The two mirror behaviours drive Fig. 5's unavailability causes, so
their invariants matter: archival mirrors never lose a captured
package; lagging mirrors equal the upstream live set right after a
sync; and anything any mirror serves was genuinely live at some sync
point.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecosystem.mirror import MirrorRegistry
from repro.ecosystem.package import make_artifact
from repro.ecosystem.registry import Registry

# A compact event script: publish / remove / sync actions over time.
actions = st.lists(
    st.tuples(
        st.sampled_from(["publish", "remove", "sync"]),
        st.integers(0, 5),  # package index
    ),
    min_size=1,
    max_size=25,
)


def _replay(script, archival: bool):
    registry = Registry("pypi")
    mirror = MirrorRegistry(
        name="m", upstream=registry, sync_interval=1, archival=archival
    )
    day = 0
    published = set()
    removed = set()
    live_at_sync = []
    captured_history = set()
    for verb, idx in script:
        day += 1
        name = f"pkg-{idx}"
        if verb == "publish" and name not in published:
            registry.publish(
                make_artifact("pypi", name, "1.0", {"m/a.py": f"V = {idx}\n"}),
                day=day,
                malicious=True,
            )
            published.add(name)
        elif verb == "remove" and name in published and name not in removed:
            registry.mark_detected(name, "1.0", day)
            registry.remove(name, "1.0", day)
            removed.add(name)
        elif verb == "sync":
            mirror.sync(day)
            live = {key[0] for key in registry.live_snapshot()}
            live_at_sync.append(live)
            captured_history |= live
    return mirror, live_at_sync, captured_history


@given(actions)
@settings(max_examples=80, deadline=None)
def test_archival_mirror_accumulates(script):
    mirror, live_at_sync, captured = _replay(script, archival=True)
    held = {name for name, _v in mirror._store}
    assert held == captured, "archival mirror = union of all sync snapshots"


@given(actions)
@settings(max_examples=80, deadline=None)
def test_lagging_mirror_equals_last_snapshot(script):
    mirror, live_at_sync, _captured = _replay(script, archival=False)
    held = {name for name, _v in mirror._store}
    expected = live_at_sync[-1] if live_at_sync else set()
    assert held == expected


@given(actions)
@settings(max_examples=60, deadline=None)
def test_mirror_never_serves_never_live_packages(script):
    for archival in (True, False):
        mirror, _snaps, captured = _replay(script, archival=archival)
        for idx in range(6):
            hit = mirror.lookup(f"pkg-{idx}", "1.0")
            if hit is not None:
                assert f"pkg-{idx}" in captured


@given(actions)
@settings(max_examples=60, deadline=None)
def test_archival_dominates_lagging(script):
    """Whatever a lagging mirror still holds, the archival twin holds."""
    lagging, _s, _c = _replay(script, archival=False)
    archival, _s2, _c2 = _replay(script, archival=True)
    lagging_keys = set(lagging._store)
    archival_keys = set(archival._store)
    assert lagging_keys <= archival_keys
