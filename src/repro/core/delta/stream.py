"""Tick-log event streaming: from the simulator's registries straight to
:class:`GraphEvent` batches, skipping the full-corpus diff pass.

:func:`repro.collection.merge.events_from_datasets` compares *every*
entry present on both sides through canonical serialisation — O(corpus)
per window, which dominates a scale-100 incremental run where a tick
window touches a handful of packages. But the simulator already knows
what it touched: every ``Registry`` appends a
:class:`~repro.ecosystem.registry.RegistryEvent` to its tick log on
publish / detect / remove. This module turns that log into the
``touched`` hint ``events_from_datasets`` accepts:

* :func:`registry_touched_keys` — one window's touched
  :class:`PackageId`s from the registry logs;
* :class:`RegistryTickStream` — a cursor over the logs, so successive
  windows each drain only the events appended since the last drain
  (O(delta), no day-range rescans);
* :func:`graph_events_between` — the end-to-end wrapper: drain (or
  compute) the touched set, then emit exactly the batch the full diff
  would have produced.

The contract is equivalence, not approximation: because additions and
removals are always detected from the key sets, and the registry log by
construction covers every key whose lifecycle changed, the emitted batch
is identical to ``events_from_datasets(old, new)`` — property-tested in
``tests/core/test_delta_stream.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.ecosystem.package import PackageId


def registry_touched_keys(
    registries: Iterable,
    since_day: int = 0,
    until_day: Optional[int] = None,
) -> Set[PackageId]:
    """Packages with a registry lifecycle event in ``[since_day,
    until_day]`` (inclusive; ``until_day=None`` means the log's end)."""
    touched: Set[PackageId] = set()
    for registry in registries:
        for event in registry.events:
            if event.day < since_day:
                continue
            if until_day is not None and event.day > until_day:
                continue
            touched.add(event.package)
    return touched


class RegistryTickStream:
    """Cursor over the registries' append-only tick logs.

    Each :meth:`drain` returns the packages touched by events appended
    since the previous drain and advances the cursor — a scale-100
    service loop pays O(events this window), never O(log). The registry
    logs are append-only (the simulator only ever ``append``s), which is
    what makes a plain per-registry offset a correct cursor.
    """

    def __init__(self, registries: Iterable) -> None:
        self._registries = list(registries)
        self._offsets: Dict[int, int] = {id(r): 0 for r in self._registries}

    def drain(self) -> Set[PackageId]:
        """Touched packages since the last drain (advances the cursor)."""
        touched: Set[PackageId] = set()
        for registry in self._registries:
            log = registry.events
            start = self._offsets[id(registry)]
            for event in log[start:]:
                touched.add(event.package)
            self._offsets[id(registry)] = len(log)
        return touched

    def pending(self) -> int:
        """Events appended since the last drain (without draining)."""
        return sum(
            len(r.events) - self._offsets[id(r)] for r in self._registries
        )


def graph_events_between(
    old,
    new,
    touched: Optional[Iterable[PackageId]] = None,
    registries: Optional[Iterable] = None,
    since_day: int = 0,
    until_day: Optional[int] = None,
) -> List["GraphEvent"]:
    """The event batch carrying ``old`` to ``new``, diffing only what the
    tick log says changed.

    ``touched`` (e.g. a :meth:`RegistryTickStream.drain` result) wins
    when given; otherwise it is computed from ``registries`` and the day
    window; otherwise this degrades to the full
    :func:`events_from_datasets` diff.
    """
    from repro.collection.merge import events_from_datasets

    if touched is None and registries is not None:
        touched = registry_touched_keys(registries, since_day, until_day)
    return events_from_datasets(old, new, touched=touched)
