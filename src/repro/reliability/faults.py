"""Seeded, deterministic fault injection for the collection substrate.

A :class:`FaultPlan` describes *what can go wrong* (rates per fault
kind); a :class:`FaultInjector` turns the plan into concrete draws.
Every draw comes from ``random.Random`` seeded with
``plan.seed | scope | key | probe-number`` — string seeding hashes
through SHA-512, so the sequence is stable across processes and
``PYTHONHASHSEED`` values, independent draws per target, and a *retry*
of the same target sees a fresh draw (probe numbers advance). Two runs
with the same plan therefore inject bit-identical fault sequences.

The wrappers are drop-in facades over the real substrate:

* :class:`FaultyWeb` wraps :class:`~repro.intel.web.SimulatedWeb` —
  unreachable pages, slow fetches that consume simulated-clock budget,
  truncated HTML, whole-site index outages;
* :class:`FaultyMirrorNetwork` wraps
  :class:`~repro.ecosystem.mirror.MirrorNetwork` — a mirror down for a
  sync window aborts the sequential scan (inconclusive, retryable);
* :class:`FaultyFeed` wraps one open-dataset source's record stream —
  source outages, sources dark for the whole run, partial emissions.

Every injected fault surfaces as exactly one
:class:`~repro.errors.TransientError` of the matching ``kind``, which is
the invariant the degradation report's accounting check rests on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ecosystem.mirror import MirrorNetwork, MirrorRegistry
from repro.errors import (
    ConfigError,
    FeedTruncatedError,
    FetchTimeoutError,
    FetchUnreachableError,
    MirrorDownError,
    SiteOutageError,
    SourceOutageError,
)
from repro.intel.web import SimulatedWeb, WebPage
from repro.reliability.retry import RetryClock


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject into one collection run.

    Rates are per *probe* (one fetch attempt, one mirror consultation,
    one feed pull), so a retry re-rolls the dice — which is exactly what
    lets a retry budget recover from transient faults deterministically.
    """

    seed: int = 0
    #: web fetches: P(page unreachable) / P(fetch times out) / P(HTML
    #: arrives truncated) per attempt. Mutually exclusive per draw.
    fetch_unreachable_rate: float = 0.0
    fetch_timeout_rate: float = 0.0
    fetch_truncate_rate: float = 0.0
    #: simulated seconds a timed-out fetch burns before failing.
    slow_fetch_cost: float = 5.0
    #: P(a site's index page is unreachable) per read.
    site_outage_rate: float = 0.0
    #: P(one mirror is down) per consultation during a search scan.
    mirror_down_rate: float = 0.0
    #: open-dataset feeds: P(no answer) / P(partial emission) per pull.
    feed_outage_rate: float = 0.0
    feed_truncate_rate: float = 0.0
    #: format drift, per *record* of a feed's finally-contributed
    #: emission: P(the record arrives malformed — wrong field types) /
    #: P(a field arrives renamed). A drifted record always fails the
    #: connector's wire-schema validation and is quarantined
    #: record-by-record (never aborting the source), so under a
    #: drift-only plan ``sum(injected record_*) == records quarantined``
    #: exactly. Mutually exclusive per draw.
    record_malform_rate: float = 0.0
    record_rename_rate: float = 0.0
    #: sources that never answer, for the whole run (heavy chaos).
    dark_sources: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name.endswith("_rate"):
                value = getattr(self, spec.name)
                if not 0.0 <= value <= 1.0:
                    raise ConfigError(
                        f"{spec.name} must be in [0, 1], got {value}"
                    )
        combined = (
            self.fetch_unreachable_rate
            + self.fetch_timeout_rate
            + self.fetch_truncate_rate
        )
        if combined > 1.0:
            raise ConfigError(
                f"fetch fault rates sum to {combined:.3f} > 1"
            )
        drift = self.record_malform_rate + self.record_rename_rate
        if drift > 1.0:
            raise ConfigError(
                f"record drift rates sum to {drift:.3f} > 1"
            )

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.fetch_unreachable_rate == 0.0
            and self.fetch_timeout_rate == 0.0
            and self.fetch_truncate_rate == 0.0
            and self.site_outage_rate == 0.0
            and self.mirror_down_rate == 0.0
            and self.feed_outage_rate == 0.0
            and self.feed_truncate_rate == 0.0
            and self.record_malform_rate == 0.0
            and self.record_rename_rate == 0.0
            and not self.dark_sources
        )

    # -- presets -----------------------------------------------------------
    @classmethod
    def moderate(cls, seed: int = 0) -> "FaultPlan":
        """Flaky-but-recoverable: the default retry budget absorbs every
        fault, so the merged dataset matches the fault-free run."""
        return cls(
            seed=seed,
            fetch_unreachable_rate=0.08,
            fetch_timeout_rate=0.01,
            fetch_truncate_rate=0.02,
            site_outage_rate=0.02,
            mirror_down_rate=0.01,
            feed_outage_rate=0.15,
            feed_truncate_rate=0.10,
        )

    @classmethod
    def drifting(cls, seed: int = 0) -> "FaultPlan":
        """Moderate chaos plus format drift: feeds answer (eventually)
        but some records arrive malformed or with renamed fields, which
        the connectors quarantine record-by-record — the run completes
        degraded with exact per-record books."""
        return replace(
            cls.moderate(seed),
            record_malform_rate=0.06,
            record_rename_rate=0.05,
        )

    @classmethod
    def heavy(cls, seed: int = 0) -> "FaultPlan":
        """Half the web unreachable and two open datasets dark: the run
        must complete degraded, not die."""
        return cls(
            seed=seed,
            fetch_unreachable_rate=0.50,
            fetch_timeout_rate=0.15,
            fetch_truncate_rate=0.20,
            site_outage_rate=0.25,
            mirror_down_rate=0.45,
            feed_outage_rate=0.40,
            feed_truncate_rate=0.30,
            dark_sources=("maloss", "datadog"),
        )

    PRESETS = ("moderate", "drifting", "heavy")

    @classmethod
    def preset(cls, name: str, seed: int = 0) -> "FaultPlan":
        if name == "moderate":
            return cls.moderate(seed)
        if name == "drifting":
            return cls.drifting(seed)
        if name == "heavy":
            return cls.heavy(seed)
        raise ConfigError(
            f"unknown fault plan {name!r}; choose from {cls.PRESETS}"
        )

    def reseeded(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- (de)serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name != "dark_sources"
        }
        payload["dark_sources"] = list(self.dark_sources)
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        known = {spec.name for spec in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(f"unknown fault-plan keys: {sorted(unknown)}")
        kwargs = dict(raw)
        if "dark_sources" in kwargs:
            kwargs["dark_sources"] = tuple(kwargs["dark_sources"])
        return cls(**kwargs)


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-probe draws.

    Tracks how many times each (scope, key) target was probed — the
    probe number feeds the seed so retries re-roll — and counts every
    fault it fires into ``injected``, the ledger the degradation report
    reconciles against.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.injected: Dict[str, int] = {}
        self._probes: Dict[Tuple[str, str], int] = {}

    def uniform(self, scope: str, key: str) -> float:
        """One deterministic U[0,1) draw for this probe of (scope, key)."""
        probe = self._probes.get((scope, key), 0)
        self._probes[(scope, key)] = probe + 1
        return random.Random(
            f"{self.plan.seed}|{scope}|{key}|{probe}"
        ).random()

    def count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- per-substrate draws ----------------------------------------------
    def fetch_fault(self, url: str) -> Optional[str]:
        """The fault kind (if any) for this fetch attempt of ``url``."""
        plan = self.plan
        if (
            plan.fetch_unreachable_rate == 0.0
            and plan.fetch_timeout_rate == 0.0
            and plan.fetch_truncate_rate == 0.0
        ):
            return None
        draw = self.uniform("fetch", url)
        edge = plan.fetch_unreachable_rate
        if draw < edge:
            self.count("fetch_unreachable")
            return "fetch_unreachable"
        edge += plan.fetch_timeout_rate
        if draw < edge:
            self.count("fetch_timeout")
            return "fetch_timeout"
        edge += plan.fetch_truncate_rate
        if draw < edge:
            self.count("fetch_truncated")
            return "fetch_truncated"
        return None

    def site_outage(self, site: str) -> bool:
        if self.plan.site_outage_rate == 0.0:
            return False
        if self.uniform("site", site) < self.plan.site_outage_rate:
            self.count("site_outage")
            return True
        return False

    def mirror_down(self, mirror_name: str) -> bool:
        if self.plan.mirror_down_rate == 0.0:
            return False
        if self.uniform("mirror", mirror_name) < self.plan.mirror_down_rate:
            self.count("mirror_down")
            return True
        return False

    def feed_fault(self, source: str) -> Optional[str]:
        """The fault kind (if any) for this pull of ``source``'s feed."""
        plan = self.plan
        if source in plan.dark_sources:
            self.count("feed_outage")
            return "feed_outage"
        if plan.feed_outage_rate == 0.0 and plan.feed_truncate_rate == 0.0:
            return None
        draw = self.uniform("feed", source)
        if draw < plan.feed_outage_rate:
            self.count("feed_outage")
            return "feed_outage"
        if draw < plan.feed_outage_rate + plan.feed_truncate_rate:
            self.count("feed_truncated")
            return "feed_truncated"
        return None

    def record_fault(self, source: str, record_key: str) -> Optional[str]:
        """The drift kind (if any) for one record of ``source``'s feed.

        Drawn once per record of the *finally contributed* emission
        (full fetch or best partial) — never during retries — so the
        same record re-served by a later scheduled pull re-rolls, but a
        single collection run draws exactly once per surviving record.
        """
        plan = self.plan
        if plan.record_malform_rate == 0.0 and plan.record_rename_rate == 0.0:
            return None
        draw = self.uniform("record", f"{source}|{record_key}")
        if draw < plan.record_malform_rate:
            self.count("record_malformed")
            return "record_malformed"
        if draw < plan.record_malform_rate + plan.record_rename_rate:
            self.count("record_renamed")
            return "record_renamed"
        return None

    def feed_cut(self, source: str, size: int) -> int:
        """How many records a partial emission of ``source`` keeps."""
        fraction = random.Random(
            f"{self.plan.seed}|feedcut|{source}|{self._probes.get(('feed', source), 0)}"
        ).uniform(0.3, 0.9)
        return max(1, int(size * fraction)) if size else 0


def corrupt_wire(wire: dict, kind: str) -> dict:
    """Apply one drift ``kind`` to a wire record (returns a new dict).

    * ``record_malformed`` — field *types* go wrong (a stringly-typed
      ``report_day``, a ``"yes"`` where a boolean belongs): the shape a
      feed takes when an upstream serializer changes under it;
    * ``record_renamed`` — the ``name`` field ships under a new key, the
      classic breaking schema migration.

    Either way the record can no longer pass the connectors' wire-schema
    validation — corruption is total by construction, which is what
    keeps ``injected == quarantined`` an exact invariant. The private
    ``_fault`` tag carries the kind to the quarantine books.
    """
    bad = dict(wire)
    if kind == "record_malformed":
        bad["report_day"] = "unknown"
        bad["shares_artifact"] = "yes"
    elif kind == "record_renamed":
        bad["package_name"] = bad.pop("name", None)
    else:  # pragma: no cover - defensive
        raise ConfigError(f"unknown record drift kind {kind!r}")
    bad["_fault"] = kind
    return bad


class FaultyWeb:
    """Drop-in :class:`SimulatedWeb` facade that injects fetch faults.

    Unreachable and timed-out fetches raise (timeouts first burn
    ``slow_fetch_cost`` simulated seconds off the caller's deadline
    budget); truncated fetches return the page with its HTML cut in
    half, leaving detection to the crawler — exactly like a real
    connection dropped mid-body. Missing URLs still return ``None``
    (permanently absent, never retried).
    """

    def __init__(
        self,
        web: SimulatedWeb,
        injector: FaultInjector,
        clock: Optional[RetryClock] = None,
    ):
        self._web = web
        self.injector = injector
        self.clock = clock if clock is not None else RetryClock()

    @property
    def pages(self) -> Dict[str, WebPage]:
        return self._web.pages

    @property
    def sites(self) -> Dict[str, List[str]]:
        return self._web.sites

    def __len__(self) -> int:
        return len(self._web)

    def site_index(self, site: str) -> List[str]:
        if self.injector.site_outage(site):
            raise SiteOutageError(f"index of {site!r} is unreachable")
        return self._web.site_index(site)

    def fetch(self, url: str) -> Optional[WebPage]:
        page = self._web.fetch(url)
        if page is None:
            return None
        kind = self.injector.fetch_fault(url)
        if kind == "fetch_unreachable":
            raise FetchUnreachableError(f"{url} is unreachable")
        if kind == "fetch_timeout":
            self.clock.sleep(self.injector.plan.slow_fetch_cost)
            raise FetchTimeoutError(
                f"{url} timed out after "
                f"{self.injector.plan.slow_fetch_cost:.1f}s"
            )
        if kind == "fetch_truncated":
            return WebPage(
                url=page.url,
                html=page.html[: len(page.html) // 2],
                site=page.site,
                is_report=page.is_report,
            )
        return page


class FaultyMirrorNetwork(MirrorNetwork):
    """Mirror fleet where individual mirrors can be down for a probe.

    A down mirror aborts the sequential scan with
    :class:`MirrorDownError` instead of being silently skipped: skipping
    would let a later mirror answer and change ``artifact_origin``
    relative to the fault-free run. Retrying the whole scan (against
    fresh draws) reproduces the fault-free lookup order exactly.
    """

    def __init__(self, network: MirrorNetwork, injector: FaultInjector):
        super().__init__(network)
        self.injector = injector

    def probe(self, mirror: MirrorRegistry, name: str, version: str):
        if self.injector.mirror_down(mirror.name):
            raise MirrorDownError(
                f"mirror {mirror.name!r} is down for this sync window"
            )
        return super().probe(mirror, name, version)


class FaultyFeed:
    """One open-dataset source's record stream, with outages and partial
    emissions. Keeps the best partial emission seen so exhausted retries
    can degrade to it instead of losing the source entirely."""

    def __init__(
        self, source: str, records: Sequence, injector: FaultInjector
    ):
        self.source = source
        self._records = list(records)
        self.injector = injector
        self.best_partial: List = []

    def fetch(self) -> List:
        kind = self.injector.feed_fault(self.source)
        if kind == "feed_outage":
            raise SourceOutageError(f"source {self.source!r} is dark")
        if kind == "feed_truncated":
            keep = self.injector.feed_cut(self.source, len(self._records))
            partial = self._records[:keep]
            if len(partial) > len(self.best_partial):
                self.best_partial = partial
            raise FeedTruncatedError(
                f"feed of {self.source!r} emitted only "
                f"{keep}/{len(self._records)} records",
                partial=partial,
            )
        return list(self._records)
