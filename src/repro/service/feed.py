"""STIX-ish detection feed with refresh-stable cursor pagination.

``GET /v1/feed`` exports every collected detection as a STIX-flavoured
indicator object. The interesting problem is pagination *under live
refresh*: a client walking the feed page by page must see every item
exactly once even while :mod:`repro.service.refresh` publishes new index
generations between its requests. Offsets into a mutating list cannot
give that guarantee, so the exporter snapshots instead:

* the first page materialises the current generation's items as one
  immutable tuple, cached per generation;
* every cursor is **generation-tagged** — base64url JSON
  ``{"g": generation, "o": offset}`` — so follow-up pages keep slicing
  the *same* tuple the walk started on, no matter how many refreshes
  landed since: zero duplicates, zero misses, by construction;
* the exporter retains the last ``keep_generations`` snapshots; a
  cursor whose generation has been evicted (or that predates this
  process) answers :class:`CursorExpired`, which the server maps to
  ``410 Gone`` plus a restart hint — the honest answer once the pages
  the cursor referred to no longer exist.

Cursors are opaque to clients but deterministic: the same walk over the
same generation issues byte-identical cursors.
"""

from __future__ import annotations

import base64
import binascii
import json
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.collection.records import DatasetEntry

DEFAULT_PAGE_SIZE = 100
MAX_PAGE_SIZE = 1000
#: Index generations whose item snapshots stay servable after a refresh.
KEEP_GENERATIONS = 3


class CursorError(ValueError):
    """The cursor is not one this exporter could ever have issued (400)."""


class CursorExpired(ValueError):
    """The cursor's generation has been evicted (410 Gone + restart)."""

    def __init__(self, generation: int, current: int):
        self.generation = generation
        self.current = current
        super().__init__(
            f"cursor generation {generation} has expired "
            f"(current generation is {current}); restart the walk from "
            "/v1/feed without a cursor"
        )


def feed_item(entry: DatasetEntry) -> Dict:
    """One detection as a STIX-ish indicator object (JSON-safe)."""
    package = entry.package
    coordinate = f"{package.ecosystem}/{package.name}@{package.version}"
    return {
        "type": "indicator",
        "id": f"indicator--{package.ecosystem}--{package.name}--{package.version}",
        "name": f"Malicious package {coordinate}",
        "labels": ["malicious-activity"],
        "pattern": (
            f"[package:ecosystem = '{package.ecosystem}' AND "
            f"package:name = '{package.name}' AND "
            f"package:version = '{package.version}']"
        ),
        "pattern_type": "package-coordinate",
        "valid_from_day": entry.release_day,
        "detected_day": entry.detection_day,
        "removed_day": entry.removal_day,
        "sha256": entry.sha256(),
        "external_references": [
            {
                "source_name": claim.source,
                "report_day": claim.report_day,
                "shares_artifact": claim.shares_artifact,
            }
            for claim in entry.claims
        ],
    }


def encode_cursor(generation: int, offset: int) -> str:
    raw = json.dumps(
        {"g": generation, "o": offset}, separators=(",", ":")
    ).encode("ascii")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_cursor(cursor: str) -> Tuple[int, int]:
    """(generation, offset) out of an opaque cursor, or CursorError."""
    padded = cursor + "=" * (-len(cursor) % 4)
    try:
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (binascii.Error, ValueError, UnicodeError):
        raise CursorError(f"malformed cursor {cursor!r}") from None
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("g"), int)
        or not isinstance(payload.get("o"), int)
        or isinstance(payload.get("g"), bool)
        or isinstance(payload.get("o"), bool)
        or payload["o"] < 0
        or payload["g"] < 0
    ):
        raise CursorError(f"malformed cursor {cursor!r}")
    return payload["g"], payload["o"]


class FeedExporter:
    """Paginates a service's detections across index generations."""

    def __init__(
        self,
        service,
        page_size: int = DEFAULT_PAGE_SIZE,
        keep_generations: int = KEEP_GENERATIONS,
    ):
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.service = service
        self.page_size = page_size
        self.keep_generations = keep_generations
        self._lock = threading.Lock()
        #: generation -> immutable item tuple, oldest first.
        self._snapshots: "OrderedDict[int, Tuple[Dict, ...]]" = OrderedDict()
        self.pages_served = 0
        self.cursors_expired = 0

    def _items_for(self, snapshot) -> Tuple[Dict, ...]:
        """The generation's immutable item tuple (built on first use).

        Entries are materialised in the dataset's canonical
        (ecosystem, name, version) order, so two walks over one
        generation see identical pages.
        """
        generation = snapshot.generation
        with self._lock:
            held = self._snapshots.get(generation)
            if held is not None:
                return held
        items = tuple(
            feed_item(entry) for entry in snapshot.index.dataset.entries
        )
        with self._lock:
            # Another thread may have built it first; keep the earlier
            # tuple so cursors in flight stay pointed at one object.
            held = self._snapshots.setdefault(generation, items)
            while len(self._snapshots) > self.keep_generations:
                self._snapshots.popitem(last=False)
            return held

    def page(
        self, cursor: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict:
        """One feed page: items plus the cursor for the next page.

        No cursor starts a fresh walk on the currently published
        generation; a cursor continues its own walk's generation. Raises
        :class:`CursorError` for garbage and :class:`CursorExpired` for
        an evicted generation.
        """
        size = self.page_size if limit is None else limit
        if size < 1 or size > MAX_PAGE_SIZE:
            raise CursorError(
                f"limit must be between 1 and {MAX_PAGE_SIZE}, got {size}"
            )
        current = self.service.snapshot
        if cursor is None:
            generation = current.generation
            offset = 0
            items = self._items_for(current)
        else:
            generation, offset = decode_cursor(cursor)
            with self._lock:
                items = self._snapshots.get(generation)
            if items is None:
                if generation == current.generation:
                    # First touch of a fresh generation through a cursor
                    # (e.g. another process issued it): materialise now.
                    items = self._items_for(current)
                else:
                    self.cursors_expired += 1
                    raise CursorExpired(generation, current.generation)
        page_items = list(items[offset : offset + size])
        next_offset = offset + len(page_items)
        next_cursor = (
            encode_cursor(generation, next_offset)
            if next_offset < len(items)
            else None
        )
        self.pages_served += 1
        return {
            "generation": generation,
            "total": len(items),
            "offset": offset,
            "count": len(page_items),
            "items": page_items,
            "next_cursor": next_cursor,
        }

    def walk(self, limit: Optional[int] = None) -> List[Dict]:
        """Every item of one complete walk (convenience for CLI/tests)."""
        items: List[Dict] = []
        cursor: Optional[str] = None
        while True:
            page = self.page(cursor=cursor, limit=limit)
            items.extend(page["items"])
            cursor = page["next_cursor"]
            if cursor is None:
                return items

    def stats(self) -> Dict:
        """Gauges for the ``connectors``/feed sections of /v1/metrics."""
        with self._lock:
            generations = list(self._snapshots)
        return {
            "generations_cached": generations,
            "pages_served": self.pages_served,
            "cursors_expired": self.cursors_expired,
        }
