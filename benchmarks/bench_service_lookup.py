"""Enrichment-service lookup throughput (not a paper table).

Builds the default-world :class:`IntelIndex` once, then measures the
serving layer on ~10k mixed hit/miss indicators: cold single enrich
(engine, no cache), LRU-warm single enrich (cache hit path), and
``batch_enrich`` throughput in lookups/sec. The acceptance bar — warm at
least 10x faster than cold — is asserted directly so a cache regression
fails the bench run.
"""

from __future__ import annotations

import itertools
import random
import time

import pytest

from repro.service.cache import EnrichmentService, build_service
from repro.service.enrich import Indicator

INDICATOR_COUNT = 10_000


@pytest.fixture(scope="session")
def service(artifacts) -> EnrichmentService:
    return build_service(artifacts.malgraph, capacity=4 * INDICATOR_COUNT)


@pytest.fixture(scope="session")
def indicators(artifacts):
    """~10k deterministic indicators, roughly half hits, half misses.

    Hits rotate name-only, name+version and SHA256 shapes; misses mix
    single-edit mutations of collected names (the suspicious path, the
    most expensive miss) with fabricated clean names.
    """
    rng = random.Random(7)
    entries = artifacts.dataset.entries
    available = artifacts.dataset.available_entries()
    mixed = []
    for i in range(INDICATOR_COUNT):
        shape = i % 4
        if shape == 0:
            e = rng.choice(entries)
            mixed.append(Indicator(name=e.package.name))
        elif shape == 1:
            e = rng.choice(entries)
            mixed.append(
                Indicator(
                    name=e.package.name,
                    version=e.package.version,
                    ecosystem=e.package.ecosystem,
                )
            )
        elif shape == 2:
            e = rng.choice(available)
            mixed.append(Indicator(sha256=e.sha256()))
        elif i % 8 == 3:
            name = rng.choice(entries).package.name
            mutated = name[:-1] + ("x" if name[-1] != "x" else "y")
            mixed.append(Indicator(name=mutated))
        else:
            mixed.append(
                Indicator(name=f"no-such-package-{i}-{rng.randrange(1_000_000)}")
            )
    return mixed


def test_enrich_cold(benchmark, service, indicators):
    """Single enrich straight through the engine (no cache)."""
    stream = itertools.cycle(indicators)
    result = benchmark(lambda: service.engine.enrich(next(stream)))
    assert result.verdict in ("malicious", "suspicious", "unknown")


def test_enrich_warm(benchmark, service, indicators):
    """Single enrich served from a warmed LRU."""
    for indicator in indicators:
        service.enrich(indicator)
    stream = itertools.cycle(indicators)
    result = benchmark(lambda: service.enrich(next(stream)))
    assert result.verdict in ("malicious", "suspicious", "unknown")


def test_batch_enrich_throughput(benchmark, service, show, indicators):
    """Full 10k-indicator batch; prints lookups/sec cold vs warm."""
    cold = EnrichmentService(service.engine, capacity=4 * INDICATOR_COUNT)

    start = time.perf_counter()
    cold.batch_enrich(indicators)
    cold_elapsed = time.perf_counter() - start

    results = benchmark(service.batch_enrich, indicators)
    assert len(results) == len(indicators)

    start = time.perf_counter()
    service.batch_enrich(indicators)
    warm_elapsed = time.perf_counter() - start
    show(
        "Service lookup throughput",
        f"batch of {len(indicators)} indicators\n"
        f"  cold: {len(indicators) / cold_elapsed:12.0f} lookups/sec\n"
        f"  warm: {len(indicators) / warm_elapsed:12.0f} lookups/sec",
    )


def test_warm_is_10x_faster_than_cold(service, indicators, show):
    """The acceptance bar: LRU-warm enrich >= 10x faster than cold."""
    engine = service.engine

    start = time.perf_counter()
    for indicator in indicators:
        engine.enrich(indicator)
    cold_elapsed = time.perf_counter() - start

    warmed = EnrichmentService(engine, capacity=4 * INDICATOR_COUNT)
    warmed.batch_enrich(indicators)
    start = time.perf_counter()
    for indicator in indicators:
        warmed.enrich(indicator)
    warm_elapsed = time.perf_counter() - start

    speedup = cold_elapsed / warm_elapsed
    show(
        "LRU speedup",
        f"cold {cold_elapsed:.3f}s vs warm {warm_elapsed:.3f}s "
        f"over {len(indicators)} lookups -> {speedup:.1f}x",
    )
    assert speedup >= 10.0, f"LRU-warm enrich only {speedup:.1f}x faster than cold"
