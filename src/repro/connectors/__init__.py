"""Pluggable intel-connector framework (fetch → parse → normalise).

One connector per online source: a wire-schema'd ingestion path with
per-source schedules on the simulated clock, a four-state lifecycle
health machine (healthy → degraded → dark → recovering), and
record-by-record quarantine of format drift. The ten Table-I sources
ship as builtin connectors; custom sources subclass
:class:`Connector` and register alongside them (docs/TUTORIAL.md walks
through one).
"""

from repro.connectors.base import (
    WIRE_SCHEMA,
    Connector,
    ConnectorSchedule,
    PullResult,
    encode_wire,
    record_key,
    validate_wire,
)
from repro.connectors.builtin import (
    AdvisoryWebConnector,
    OpenDatasetConnector,
    ProfileConnector,
    SNSFeedConnector,
    builtin_connector,
    builtin_registry,
    health_for,
    schedule_for,
)
from repro.connectors.health import (
    HEALTH_DARK,
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    HEALTH_RECOVERING,
    HEALTH_RELIABILITY_FACTOR,
    HEALTH_STATES,
    SourceHealth,
)
from repro.connectors.registry import ConnectorRegistry
from repro.connectors.scheduler import ConnectorScheduler

__all__ = [
    "WIRE_SCHEMA",
    "Connector",
    "ConnectorSchedule",
    "PullResult",
    "encode_wire",
    "record_key",
    "validate_wire",
    "AdvisoryWebConnector",
    "OpenDatasetConnector",
    "ProfileConnector",
    "SNSFeedConnector",
    "builtin_connector",
    "builtin_registry",
    "health_for",
    "schedule_for",
    "HEALTH_DARK",
    "HEALTH_DEGRADED",
    "HEALTH_HEALTHY",
    "HEALTH_RECOVERING",
    "HEALTH_RELIABILITY_FACTOR",
    "HEALTH_STATES",
    "SourceHealth",
    "ConnectorRegistry",
    "ConnectorScheduler",
]
