"""SimClock and day/date conversion."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.ecosystem.clock import (
    DEFAULT_HORIZON_DAYS,
    EPOCH,
    STUDY_HORIZON_DAYS,
    SimClock,
    date_to_day,
    day_to_date,
    day_to_month,
    day_to_year,
)
from repro.errors import ClockError


def test_epoch_is_day_zero():
    assert day_to_date(0) == EPOCH
    assert date_to_day(EPOCH) == 0


def test_horizons_ordered():
    assert 0 < STUDY_HORIZON_DAYS < DEFAULT_HORIZON_DAYS


@given(st.integers(min_value=0, max_value=DEFAULT_HORIZON_DAYS))
def test_day_date_roundtrip(day):
    assert date_to_day(day_to_date(day)) == day


def test_month_and_year_labels():
    day = date_to_day(datetime.date(2023, 8, 9))
    assert day_to_month(day) == "2023-08"
    assert day_to_year(day) == 2023


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(5) == 5
    assert clock.today == 5
    assert clock.date == day_to_date(5)


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ClockError):
        clock.advance(-1)


def test_watchers_fire_on_advance():
    clock = SimClock()
    seen = []
    clock.on_advance(seen.append)
    clock.advance(1)
    clock.advance(2)
    assert seen == [1, 3]


def test_run_to_horizon():
    clock = SimClock(horizon=4)
    clock.run_to_horizon()
    assert clock.today == 4
    assert clock.finished
