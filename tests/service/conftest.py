"""Service-layer fixtures: one graph/index/engine per session over the
small simulated world, plus a fresh cache per test."""

from __future__ import annotations

import pytest

from repro.core.malgraph import MalGraph
from repro.service.cache import EnrichmentService
from repro.service.enrich import EnrichmentEngine
from repro.service.index import IntelIndex


@pytest.fixture(scope="session")
def service_malgraph(small_dataset) -> MalGraph:
    return MalGraph.build(small_dataset)


@pytest.fixture(scope="session")
def intel_index(service_malgraph) -> IntelIndex:
    return IntelIndex.build(service_malgraph)


@pytest.fixture(scope="session")
def engine(intel_index) -> EnrichmentEngine:
    return EnrichmentEngine(intel_index)


@pytest.fixture()
def service(engine) -> EnrichmentService:
    """A fresh cache per test so hit/miss counters start at zero."""
    return EnrichmentService(engine, capacity=1024)
