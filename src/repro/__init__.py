"""repro: a reproduction of "An Analysis of Malicious Packages in
Open-Source Software in the Wild" (DSN 2025).

The library has three layers:

* **substrates** — a deterministic simulated OSS supply-chain world:
  registries and mirrors (:mod:`repro.ecosystem`), threat actors and
  campaign life cycles (:mod:`repro.malware`), intel sources, security
  reports and a simulated web (:mod:`repro.intel`), a crawler
  (:mod:`repro.crawler`), the Section-II collection pipeline
  (:mod:`repro.collection`) and a rule-based detector
  (:mod:`repro.detection`);
* **MALGRAPH** (:mod:`repro.core`) — the paper's knowledge graph:
  signatures, AST embeddings, growing-k K-Means, the four edge types and
  group extraction;
* **analyses** (:mod:`repro.analysis`, :mod:`repro.paper`) — every table
  and figure of the evaluation section.

Quickstart::

    from repro.paper import default_artifacts

    paper = default_artifacts()
    print(paper.table7_diversity().render())
"""

from repro.collection.records import DatasetEntry, MalwareDataset
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.groups import GroupKind, PackageGroup
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.detection.detector import Detector, Verdict
from repro.ecosystem.package import PackageArtifact, PackageId
from repro.malware.corpus import Corpus, CorpusConfig, build_corpus
from repro.paper import PaperArtifacts, default_artifacts
from repro.pipeline import (
    ArtifactStore,
    PipelineReport,
    PipelineRuntime,
)
from repro.service import (
    EnrichmentEngine,
    EnrichmentResult,
    EnrichmentService,
    Indicator,
    IntelIndex,
    build_service,
    refresh_index,
)
from repro.world import (
    World,
    WorldConfig,
    build_world,
    collect,
    default_collection,
    default_dataset,
    default_world,
)

__version__ = "1.0.0"

__all__ = [
    "ArtifactStore",
    "Corpus",
    "CorpusConfig",
    "DatasetEntry",
    "Detector",
    "EdgeType",
    "EnrichmentEngine",
    "EnrichmentResult",
    "EnrichmentService",
    "GroupKind",
    "Indicator",
    "IntelIndex",
    "MalGraph",
    "MalwareDataset",
    "PackageArtifact",
    "PackageGroup",
    "PackageId",
    "PaperArtifacts",
    "PipelineReport",
    "PipelineRuntime",
    "PropertyGraph",
    "SimilarityConfig",
    "Verdict",
    "World",
    "WorldConfig",
    "build_corpus",
    "build_service",
    "build_world",
    "collect",
    "refresh_index",
    "default_artifacts",
    "default_collection",
    "default_dataset",
    "default_world",
    "__version__",
]
