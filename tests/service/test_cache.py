"""LRU bounds, hit/miss accounting and batch deduplication."""

from __future__ import annotations

import pytest

from repro.service.cache import LRUCache
from repro.service.enrich import Indicator


def test_lru_rejects_silly_capacity():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_lru_evicts_least_recently_used():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a; b is now oldest
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("b") is None
    assert cache.evictions == 1
    assert len(cache) == 2


def test_lru_counters():
    cache = LRUCache(capacity=4)
    cache.put("k", "v")
    assert cache.get("k") == "v"
    assert cache.get("missing") is None
    assert cache.stats() == {
        "size": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
    }


def test_service_hit_accounting(service, small_dataset):
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    first = service.enrich(indicator)
    second = service.enrich(indicator)
    assert first is second  # served from cache, not recomputed
    assert service.cache.hits == 1
    assert service.cache.misses == 1


def test_cache_key_is_case_insensitive(service, small_dataset):
    name = small_dataset.entries[0].package.name
    service.enrich(Indicator(name=name))
    service.enrich(Indicator(name=name.upper()))
    assert service.cache.hits == 1


def test_batch_deduplicates_within_request(service, small_dataset):
    first = small_dataset.entries[0].package.name
    other = next(
        e.package.name
        for e in small_dataset.entries
        if e.package.name.lower() != first.lower()
    )
    a = Indicator(name=first)
    b = Indicator(name=other)
    results = service.batch_enrich([a, a, b, a])
    assert len(results) == 4
    assert results[0] is results[1] is results[3]
    # each distinct indicator resolved exactly once; intra-batch
    # duplicates never touch the cache counters
    assert service.cache.misses == 2
    assert service.cache.hits == 0


def test_batch_reuses_cache_across_requests(service, small_dataset):
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    service.batch_enrich([indicator])
    service.batch_enrich([indicator, indicator])
    assert service.cache.misses == 1
    assert service.cache.hits == 1


def test_invalidate_clears_but_keeps_counters(service, small_dataset):
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    service.enrich(indicator)
    service.invalidate()
    assert len(service.cache) == 0
    service.enrich(indicator)
    assert service.cache.misses == 2


def test_capacity_bounds_service_cache(engine, small_dataset):
    from repro.service.cache import EnrichmentService

    bounded = EnrichmentService(engine, capacity=8)
    for entry in small_dataset.entries[:20]:
        bounded.enrich(Indicator(name=entry.package.name))
    assert len(bounded.cache) <= 8
    assert bounded.cache.evictions > 0


def test_stats_merges_cache_and_index(service):
    stats = service.stats()
    assert set(stats) == {"cache", "index", "generation", "collection"}
    assert stats["index"]["packages"] == service.index.package_count
    assert stats["generation"] == 0
    assert stats["collection"] == {"degraded": False}


# -- sharding ---------------------------------------------------------------


def test_sharded_cache_counters_sum_exactly():
    from repro.service.cache import ShardedLRUCache

    cache = ShardedLRUCache(capacity=64, shards=8)
    assert cache.shard_count == 8
    for i in range(40):
        cache.get(("key", i))  # 40 misses spread over shards
        cache.put(("key", i), i)
    for i in range(40):
        assert cache.get(("key", i)) == i  # 40 hits
    stats = cache.stats()
    assert stats["hits"] == 40
    assert stats["misses"] == 40
    assert stats["hits"] + stats["misses"] == 80  # == total gets
    assert stats["shards"] == 8
    assert len(cache) == 40


def test_sharded_cache_bounds_total_capacity():
    from repro.service.cache import ShardedLRUCache

    cache = ShardedLRUCache(capacity=16, shards=4)
    for i in range(200):
        cache.put(i, i)
    assert len(cache) <= 16
    assert cache.evictions >= 200 - 16


def test_sharded_cache_never_hands_a_shard_zero_capacity():
    from repro.service.cache import ShardedLRUCache

    cache = ShardedLRUCache(capacity=3, shards=8)
    assert cache.shard_count == 3  # clamped to capacity
    for i in range(10):
        cache.put(i, i)
    assert 1 <= len(cache) <= 3


def test_sharded_cache_rejects_silly_arguments():
    from repro.service.cache import ShardedLRUCache

    with pytest.raises(ValueError):
        ShardedLRUCache(0)
    with pytest.raises(ValueError):
        ShardedLRUCache(16, shards=0)


def test_service_shard_knob(engine):
    from repro.service.cache import EnrichmentService

    service = EnrichmentService(engine, capacity=64, shards=2)
    assert service.cache.shard_count == 2


# -- snapshot generations ---------------------------------------------------


def test_read_path_takes_no_service_lock(service, small_dataset):
    """The writer lock is never touched by enrich/batch/stats."""
    acquired = service.lock.acquire(blocking=False)
    assert acquired  # nobody holds it at rest
    try:
        indicator = Indicator(name=small_dataset.entries[0].package.name)
        # another thread must be able to read while the writer lock is
        # held by us (RLock would mask that on this thread)
        import threading

        outcome = {}

        def read():
            outcome["result"] = service.enrich(indicator)
            outcome["stats"] = service.stats()
            outcome["batch"] = service.batch_enrich([indicator])

        thread = threading.Thread(target=read)
        thread.start()
        thread.join(timeout=10)
        assert not thread.is_alive(), "read path blocked on the writer lock"
        assert outcome["result"].verdict
    finally:
        service.lock.release()


def test_publish_bumps_generation_and_swaps_snapshot(service):
    before = service.snapshot
    published = service.publish(before.index.clone())
    assert service.snapshot is published
    assert published.generation == before.generation + 1
    assert published.engine is not before.engine
    assert published.engine.squat_index is before.engine.squat_index


def test_stale_generation_results_never_poison_the_new_one(service, small_dataset):
    """A straggler writing under generation g misses for g+1 readers."""
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    old_snapshot = service.snapshot
    service.publish(old_snapshot.index.clone())  # generation g+1 is live
    # a straggler thread still holding generation g stores its result
    stale = service._enrich_in(old_snapshot, indicator)
    assert stale.verdict == "malicious"
    # a fresh read resolves against g+1 keys: the stale entry is invisible
    misses_before = service.cache.misses
    fresh = service.enrich(indicator)
    assert service.cache.misses == misses_before + 1  # not a hit
    assert fresh is not stale
