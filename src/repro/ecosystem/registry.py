"""Root package registry.

One :class:`Registry` per ecosystem models the authoritative index (PyPI,
the npm registry, RubyGems.org, ...). It supports the life-cycle the paper
describes in Fig. 6: packages are *published*, accumulate *downloads*, are
*detected* and finally *removed* by the administrator. Removal is
permanent — the same (name, version) cannot be re-published, which is the
mechanism that forces attackers into the {changing -> release} loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    DuplicatePackageError,
    PackageNotFoundError,
    PackageRemovedError,
)
from repro.ecosystem.package import PackageArtifact, PackageId


class EventKind(str, Enum):
    """Registry life-cycle events (Fig. 6 phases 2-4)."""

    PUBLISH = "publish"
    DETECT = "detect"
    REMOVE = "remove"


@dataclass(frozen=True)
class RegistryEvent:
    """One timestamped life-cycle event for a package."""

    kind: EventKind
    package: PackageId
    day: int
    detail: str = ""


@dataclass
class PublishedPackage:
    """Registry-side record of one published package version."""

    artifact: PackageArtifact
    release_day: int
    removal_day: Optional[int] = None
    detection_day: Optional[int] = None
    downloads: int = 0
    malicious: bool = False  # ground-truth flag, set by the world builder

    @property
    def live(self) -> bool:
        return self.removal_day is None

    @property
    def persist_days(self) -> Optional[int]:
        """Days the package stayed live; None while still live."""
        if self.removal_day is None:
            return None
        return self.removal_day - self.release_day


class Registry:
    """The root registry of one ecosystem."""

    def __init__(self, ecosystem: str):
        self.ecosystem = ecosystem
        self._packages: Dict[Tuple[str, str], PublishedPackage] = {}
        self._retired_names: Dict[str, int] = {}
        self.events: List[RegistryEvent] = []

    # -- queries ------------------------------------------------------------
    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def get(self, name: str, version: str) -> PublishedPackage:
        """Return the record for (name, version), live or removed."""
        try:
            return self._packages[(name, version)]
        except KeyError:
            raise PackageNotFoundError(
                f"{self.ecosystem}:{name}@{version} was never published"
            ) from None

    def fetch(self, name: str, version: str) -> PackageArtifact:
        """Download the artifact; raises if removed (the root registry
        no longer serves removed packages — that is why mirrors matter)."""
        record = self.get(name, version)
        if not record.live:
            raise PackageRemovedError(
                f"{self.ecosystem}:{name}@{version} was removed on day "
                f"{record.removal_day}"
            )
        return record.artifact

    def name_taken(self, name: str) -> bool:
        """True if any version of ``name`` was ever published."""
        if name in self._retired_names:
            return True
        return any(n == name for (n, _v) in self._packages)

    def live_packages(self) -> Iterable[PublishedPackage]:
        return (r for r in self._packages.values() if r.live)

    def all_packages(self) -> Iterable[PublishedPackage]:
        return self._packages.values()

    def live_snapshot(self) -> Dict[Tuple[str, str], PackageArtifact]:
        """Mapping of live (name, version) -> artifact; used by mirror sync."""
        return {
            key: record.artifact
            for key, record in self._packages.items()
            if record.live
        }

    # -- life cycle -----------------------------------------------------------
    def publish(
        self, artifact: PackageArtifact, day: int, malicious: bool = False
    ) -> PublishedPackage:
        """Publish a new package version (Fig. 6 phase 2)."""
        if artifact.ecosystem != self.ecosystem:
            raise DuplicatePackageError(
                f"artifact ecosystem {artifact.ecosystem!r} does not match "
                f"registry {self.ecosystem!r}"
            )
        key = (artifact.name, artifact.version)
        if key in self._packages:
            raise DuplicatePackageError(
                f"{self.ecosystem}:{artifact.name}@{artifact.version} "
                "already published; removed packages cannot be re-published"
            )
        record = PublishedPackage(
            artifact=artifact, release_day=day, malicious=malicious
        )
        self._packages[key] = record
        self.events.append(RegistryEvent(EventKind.PUBLISH, artifact.id, day))
        return record

    def mark_detected(self, name: str, version: str, day: int, by: str = "") -> None:
        """Record the first detection of a package (Fig. 6 phase 3)."""
        record = self.get(name, version)
        if record.detection_day is None:
            record.detection_day = day
            self.events.append(
                RegistryEvent(EventKind.DETECT, record.artifact.id, day, detail=by)
            )

    def remove(self, name: str, version: str, day: int) -> None:
        """Remove a package (Fig. 6 phase 4). Idempotent per version."""
        record = self.get(name, version)
        if record.removal_day is not None:
            return
        record.removal_day = day
        self._retired_names[name] = day
        self.events.append(RegistryEvent(EventKind.REMOVE, record.artifact.id, day))

    def record_downloads(self, name: str, version: str, count: int) -> None:
        """Add ``count`` downloads to a live package."""
        record = self.get(name, version)
        if record.live and count > 0:
            record.downloads += count


class RegistryHub:
    """All root registries of the simulated world, keyed by ecosystem."""

    def __init__(self, ecosystems: Iterable[str]):
        self._registries = {eco: Registry(eco) for eco in ecosystems}

    def __getitem__(self, ecosystem: str) -> Registry:
        try:
            return self._registries[ecosystem]
        except KeyError:
            raise PackageNotFoundError(f"unknown ecosystem {ecosystem!r}") from None

    def __iter__(self):
        return iter(self._registries.values())

    @property
    def ecosystems(self) -> List[str]:
        return list(self._registries)

    def lookup(self, package: PackageId) -> PublishedPackage:
        return self[package.ecosystem].get(package.name, package.version)

    def total_packages(self) -> int:
        return sum(len(reg) for reg in self)
