"""Threat-intelligence source profiles and detection attribution.

The paper collects malicious packages from ten online sources (Table I):
four academic open datasets, five industry feeds and an individual
blog/SNS cluster. Each source is modelled as a :class:`SourceProfile`
capturing what drives Tables I, IV, V and VI:

* **who detects** — industry sources are primary detectors with
  per-ecosystem coverage and activity windows; academia does not detect,
  it *aggregates* industry results as of a snapshot cutoff (exactly the
  paper's explanation for the academia-heavy overlap in Table IV);
* **who shares artifacts** — dataset sources ship packages
  (missing rate ~0%), report-only sources ship names/versions
  (missing rate 55-100%, Table VI);
* **who talks to whom** — a pairwise co-reporting affinity reproduces the
  sparse industry-industry overlap (Tianwen-Phylum 539 being the largest).

:class:`AttributionEngine` walks every detected release of the corpus and
produces per-source :class:`SourceEntry` records.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ecosystem.clock import date_to_day
from repro.ecosystem.package import PackageArtifact, PackageId
from repro.malware.campaigns import Campaign, ReleaseAttempt
from repro.malware.corpus import Corpus


class Sector(str, Enum):
    """Where a source sits in Table I's category column."""

    ACADEMIA = "academia"
    INDUSTRY = "industry"
    INDIVIDUAL = "individual"


class SourceKind(str, Enum):
    """How the collection pipeline obtains the source's records."""

    DATASET = "dataset"  # downloadable open dataset
    WEBSITE = "website"  # security reports crawled from the web
    SNS = "sns"  # tweets


def _day(year: int, month: int, dom: int = 1) -> int:
    return date_to_day(datetime.date(year, month, dom))


@dataclass(frozen=True)
class SourceProfile:
    """Static description of one online source."""

    key: str
    label: str
    short: str  # Table IV column header abbreviation
    sector: Sector
    kind: SourceKind
    active_from: int
    last_update: int
    update_interval_days: int  # Table V cadence; 0 = never updated again
    share_artifacts: float  # fraction of entries shipped with the package
    detection_share: float  # weight when drawing the primary reporter
    ecosystems: Optional[Tuple[str, ...]] = None  # None = all
    aggregates: bool = False  # academia: builds its dataset retrospectively
    #: academia composition: how strongly the dataset pulls from (a) other,
    #: earlier academic datasets, (b) the industry-reported pool, and
    #: (c) the "dark" pool of removals no source reported publicly (the
    #: dataset's own registry scanning). Table IV's structure — huge
    #: academia-academia overlap, moderate academia-industry, sparse
    #: industry-industry — falls out of these three rates.
    import_rate: float = 0.0
    industry_rate: float = 0.0
    dark_rate: float = 0.0
    #: industry: fraction of a tracked campaign's releases the source
    #: actually writes up; the rest join the dark pool (this is what keeps
    #: 80% of packages single-source, Fig. 4).
    report_coverage: float = 1.0
    website: str = ""
    category: str = ""  # Table III website category

    def covers(self, ecosystem: str) -> bool:
        return self.ecosystems is None or ecosystem in self.ecosystems

    def active_at(self, day: int) -> bool:
        return self.active_from <= day <= self.last_update


#: The ten sources of Table I. Activity windows and cadences follow
#: Table V; artifact-sharing follows the availability pattern of Table VI.
SOURCE_PROFILES: List[SourceProfile] = [
    SourceProfile(
        key="backstabber-knife",
        label="Backstabber-Knife",
        short="B.K",
        sector=Sector.ACADEMIA,
        kind=SourceKind.DATASET,
        active_from=_day(2018, 1),
        last_update=_day(2020, 5),
        update_interval_days=0,  # "Never update"
        share_artifacts=0.21,
        detection_share=0.0,
        aggregates=True,
        industry_rate=0.65,
        dark_rate=0.92,
    ),
    SourceProfile(
        key="maloss",
        label="Maloss",
        short="M.",
        sector=Sector.ACADEMIA,
        kind=SourceKind.DATASET,
        active_from=_day(2019, 1),
        last_update=_day(2023, 8),
        update_interval_days=90,  # "one per 3 month"
        share_artifacts=0.998,
        detection_share=0.0,
        aggregates=True,
        import_rate=0.45,
        industry_rate=0.05,
        dark_rate=0.22,
    ),
    SourceProfile(
        key="mal-pypi",
        label="Mal-PyPI",
        short="M.D",
        sector=Sector.ACADEMIA,
        kind=SourceKind.DATASET,
        active_from=_day(2022, 6),
        last_update=_day(2023, 8),
        update_interval_days=0,  # "Never update"
        share_artifacts=1.0,
        detection_share=0.0,
        ecosystems=("pypi",),
        aggregates=True,
        import_rate=0.75,
        industry_rate=0.05,
        dark_rate=0.50,
    ),
    SourceProfile(
        key="github-advisory",
        label="GitHub Advisory",
        short="G.A",
        sector=Sector.INDUSTRY,
        kind=SourceKind.WEBSITE,
        active_from=_day(2019, 6),
        last_update=_day(2023, 10),
        update_interval_days=180,  # "one per 6 month"
        share_artifacts=0.07,
        detection_share=0.35,
        report_coverage=0.9,
        website="github.com/advisories",
        category="Official",
    ),
    SourceProfile(
        key="snyk",
        label="Snyk.io",
        short="S.i",
        sector=Sector.INDUSTRY,
        kind=SourceKind.WEBSITE,
        active_from=_day(2018, 1),
        last_update=_day(2023, 12),
        update_interval_days=60,  # "one per 2 month"
        share_artifacts=0.25,
        detection_share=1.4,
        report_coverage=0.78,
        website="snyk.io/blog",
        category="Commercial org.",
    ),
    SourceProfile(
        key="tianwen",
        label="Tianwen",
        short="T.",
        sector=Sector.INDUSTRY,
        kind=SourceKind.WEBSITE,
        active_from=_day(2020, 3),
        last_update=_day(2023, 12),
        update_interval_days=60,  # "one per 2 month"
        share_artifacts=0.45,
        detection_share=2.6,
        report_coverage=0.84,
        website="tianwen.qianxin.com",
        category="Commercial org.",
    ),
    SourceProfile(
        key="datadog",
        label="DataDog",
        short="D.D",
        sector=Sector.INDUSTRY,
        kind=SourceKind.DATASET,
        active_from=_day(2022, 4),
        last_update=_day(2023, 5),
        update_interval_days=0,  # "Never update"
        share_artifacts=1.0,
        detection_share=1.3,
        report_coverage=0.88,
        ecosystems=("pypi", "npm"),
        website="github.com/datadog",
        category="Commercial org.",
    ),
    SourceProfile(
        key="phylum",
        label="Phylum",
        short="P.",
        sector=Sector.INDUSTRY,
        kind=SourceKind.WEBSITE,
        active_from=_day(2021, 3),
        last_update=_day(2023, 11),
        update_interval_days=30,  # "one per 1 month"
        share_artifacts=0.09,
        detection_share=4.2,
        report_coverage=0.9,
        ecosystems=("pypi", "npm", "rust"),
        website="blog.phylum.io",
        category="Commercial org.",
    ),
    SourceProfile(
        key="socket",
        label="Socket",
        short="So.",
        sector=Sector.INDUSTRY,
        kind=SourceKind.WEBSITE,
        active_from=_day(2022, 5),
        last_update=_day(2023, 12),
        update_interval_days=30,  # "one per 1 month"
        share_artifacts=0.0,
        detection_share=0.6,
        report_coverage=0.8,
        ecosystems=("npm", "pypi"),
        website="socket.dev/blog",
        category="Commercial org.",
    ),
    SourceProfile(
        key="blogs",
        label="SNS/Blogs",
        short="I.B",
        sector=Sector.INDIVIDUAL,
        kind=SourceKind.SNS,
        active_from=_day(2018, 1),
        last_update=_day(2023, 12),
        update_interval_days=45,
        share_artifacts=0.05,
        detection_share=0.12,
        report_coverage=0.85,
        website="iamakulov.com",
        category="Individual",
    ),
]

SOURCE_INDEX: Dict[str, SourceProfile] = {p.key: p for p in SOURCE_PROFILES}

#: Pairwise co-reporting affinity between industry sources: probability
#: that the second source independently also reports a package primarily
#: found by the first. Calibrated to Table IV's sparse lower-right block
#: (Tianwen-Phylum largest, then Snyk-Tianwen, everything else tiny).
CO_REPORT_AFFINITY: Dict[Tuple[str, str], float] = {
    ("tianwen", "phylum"): 0.11,
    ("snyk", "tianwen"): 0.10,
    ("tianwen", "socket"): 0.004,
    ("snyk", "phylum"): 0.008,
    ("phylum", "datadog"): 0.006,
    ("github-advisory", "blogs"): 0.03,
    ("maloss", "blogs"): 0.002,
}


def co_report_rate(primary: str, other: str) -> float:
    """Symmetric lookup into :data:`CO_REPORT_AFFINITY`."""
    return CO_REPORT_AFFINITY.get(
        (primary, other), CO_REPORT_AFFINITY.get((other, primary), 0.0015)
    )


def package_share_uniform(package: PackageId) -> float:
    """A stable per-package uniform in [0, 1) controlling archivability.

    Whether a package's artifact survived is mostly a property of the
    *package* (was it archived anywhere before removal?), not of who
    reported it — the paper observes that "an unavailable malicious
    package cannot be found from a different source". Sources therefore
    share comonotonically: source with sharing rate ``s`` ships the
    artifact iff this uniform is below ``s``.
    """
    import hashlib

    key = f"{package.ecosystem}|{package.name}|{package.version}"
    digest = int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:6], "big")
    return (digest % 1_000_003) / 1_000_003.0


def source_shares_package(profile: SourceProfile, package: PackageId) -> bool:
    """Comonotone artifact-sharing decision for (source, package)."""
    return package_share_uniform(package) < profile.share_artifacts


@dataclass(frozen=True)
class SourceEntry:
    """One package record held by one source."""

    source: str
    package: PackageId
    report_day: int
    shares_artifact: bool
    campaign_id: str
    release_day: int
    primary: bool  # True if this source was the original discoverer


@dataclass
class DetectionCase:
    """A detected release plus every source that reported it."""

    campaign: Campaign
    release: ReleaseAttempt
    primary_source: str
    reporters: List[str] = field(default_factory=list)


@dataclass
class AttributionOutcome:
    """Everything the intel layer knows after attribution."""

    entries: List[SourceEntry]
    cases: List[DetectionCase]
    #: the profiles the engine actually attributed with — consumers
    #: (bucketing, web rendering, collection) resolve sources against
    #: these, never against the module-global Table-I list, so an engine
    #: run over custom/connector-registered sources stays coherent.
    profiles: List[SourceProfile] = field(
        default_factory=lambda: list(SOURCE_PROFILES)
    )

    def entries_by_source(self) -> Dict[str, List[SourceEntry]]:
        grouped: Dict[str, List[SourceEntry]] = {p.key: [] for p in self.profiles}
        for entry in self.entries:
            grouped.setdefault(entry.source, []).append(entry)
        return grouped


class AttributionEngine:
    """Assigns every detected release to the sources that report it."""

    def __init__(
        self,
        profiles: Sequence[SourceProfile] = tuple(SOURCE_PROFILES),
        seed: int = 11,
    ):
        self.profiles = list(profiles)
        self.profile_index: Dict[str, SourceProfile] = {
            p.key: p for p in self.profiles
        }
        self.rng = random.Random(seed)

    # -- industry ---------------------------------------------------------
    def _industry_candidates(self, ecosystem: str, day: int) -> List[SourceProfile]:
        return [
            p
            for p in self.profiles
            if p.detection_share > 0 and p.covers(ecosystem) and p.active_at(day)
        ]

    def attribute(self, corpus: Corpus) -> AttributionOutcome:
        """Run attribution over every detected release of the corpus."""
        entries: List[SourceEntry] = []
        cases: List[DetectionCase] = []
        dark: List[Tuple[Campaign, ReleaseAttempt]] = []
        # The same campaign tends to be tracked by the same primary source
        # (an analyst follows the actor), so draw per campaign first and
        # only occasionally switch.
        for campaign in corpus.campaigns:
            tracked: Optional[str] = None
            for release in sorted(campaign.releases, key=lambda r: r.release_day):
                if release.detection_day is None:
                    continue
                day = release.detection_day
                candidates = self._industry_candidates(campaign.ecosystem, day)
                if not candidates:
                    # Detected and removed by the registry alone: no public
                    # write-up, but academia's own registry scanning may
                    # still pick it up later (the dark pool).
                    dark.append((campaign, release))
                    continue
                if tracked is None or self.rng.random() < 0.12 or not any(
                    c.key == tracked for c in candidates
                ):
                    weights = [c.detection_share for c in candidates]
                    tracked = self.rng.choices(candidates, weights=weights)[0].key
                if self.rng.random() >= self.profile_index[tracked].report_coverage:
                    # The tracking analyst never wrote this attempt up.
                    dark.append((campaign, release))
                    continue
                case = DetectionCase(
                    campaign=campaign, release=release, primary_source=tracked
                )
                case.reporters.append(tracked)
                entries.append(self._entry(tracked, campaign, release, day, True))
                # Independent co-reports from the rest of the industry.
                for other in candidates:
                    if other.key == tracked:
                        continue
                    if self.rng.random() < co_report_rate(tracked, other.key):
                        lag = self.rng.randrange(0, 21)
                        if other.active_at(day + lag):
                            case.reporters.append(other.key)
                            entries.append(
                                self._entry(
                                    other.key, campaign, release, day + lag, False
                                )
                            )
                cases.append(case)
        entries.extend(self._aggregate_academia(entries, dark))
        return AttributionOutcome(
            entries=entries, cases=cases, profiles=list(self.profiles)
        )

    def _entry(
        self,
        source_key: str,
        campaign: Campaign,
        release: ReleaseAttempt,
        day: int,
        primary: bool,
    ) -> SourceEntry:
        profile = self.profile_index[source_key]
        return SourceEntry(
            source=source_key,
            package=release.artifact.id,
            report_day=day,
            shares_artifact=source_shares_package(profile, release.artifact.id),
            campaign_id=campaign.id,
            release_day=release.release_day,
            primary=primary,
        )

    # -- academia -----------------------------------------------------------
    def _aggregate_academia(
        self,
        industry_entries: List[SourceEntry],
        dark: List[Tuple[Campaign, ReleaseAttempt]],
    ) -> List[SourceEntry]:
        """Academic datasets are built retrospectively from three pools.

        * **import** — re-packaging earlier academic datasets (Mal-PyPI
          ships most of Backstabber-Knife's PyPI slice); this is what makes
          the academia block of Table IV so dense;
        * **industry** — sampling publicly reported packages (the paper's
          "academia reuses the detection result from the industry");
        * **dark** — the dataset's own registry scanning, which also
          catches removals nobody wrote up. These packages are exclusive
          to academia, keeping overall cross-source overlap low (Fig. 4).

        Profiles are processed in declaration order, so later datasets can
        import from earlier ones.
        """
        aggregated: List[SourceEntry] = []
        # Pool item: package -> (detection day, campaign id, release day,
        # reported-by-industry?, taken-by-academia-before?)
        pool: Dict[PackageId, Dict] = {}
        for entry in industry_entries:
            item = pool.get(entry.package)
            if item is None or entry.report_day < item["day"]:
                pool[entry.package] = {
                    "day": entry.report_day,
                    "campaign": entry.campaign_id,
                    "release_day": entry.release_day,
                    "industry": True,
                    "academia": False,
                }
        for campaign, release in dark:
            if release.detection_day is None or release.artifact.id in pool:
                continue
            pool[release.artifact.id] = {
                "day": release.detection_day,
                "campaign": campaign.id,
                "release_day": release.release_day,
                "industry": False,
                "academia": False,
            }
        for profile in self.profiles:
            if not profile.aggregates:
                continue
            for package, item in pool.items():
                if not profile.covers(package.ecosystem):
                    continue
                if item["day"] > profile.last_update:
                    continue
                if item["academia"]:
                    rate = profile.import_rate
                elif item["industry"]:
                    rate = profile.industry_rate
                else:
                    rate = profile.dark_rate
                if self.rng.random() >= rate:
                    continue
                item["academia"] = True
                snapshot_day = min(
                    item["day"] + self.rng.randrange(10, 120),
                    profile.last_update,
                )
                aggregated.append(
                    SourceEntry(
                        source=profile.key,
                        package=package,
                        report_day=snapshot_day,
                        shares_artifact=source_shares_package(profile, package),
                        campaign_id=item["campaign"],
                        release_day=item["release_day"],
                        primary=False,
                    )
                )
        return aggregated
