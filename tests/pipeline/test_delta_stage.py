"""The delta stage: advance() chains content addresses across batches."""

from __future__ import annotations

from repro.core.delta import GraphEvent, apply_events_to_dataset
from repro.core.malgraph import MalGraph
from repro.io.malgraphs import canonical_malgraph_json
from repro.pipeline import ArtifactStore, PipelineReport, PipelineRuntime
from repro.pipeline.stages import STAGE_DELTA
from repro.world import WorldConfig

from tests.core.helpers import entry, report

SMALL = WorldConfig(seed=3, scale=0.05)


def _runtime(tmp_path, store=None) -> PipelineRuntime:
    store = store or ArtifactStore(cache_dir=tmp_path / "cache", disk_enabled=True)
    return PipelineRuntime(SMALL, store=store, report=PipelineReport())


def _batch(dataset):
    fresh = entry("delta-added-pkg", code="def added():\n    return 41\n")
    return [
        GraphEvent.package_removed(dataset.entries[0].package),
        GraphEvent.package_added(fresh),
    ]


def test_advance_builds_once_then_hits_cache_tiers(tmp_path):
    runtime = _runtime(tmp_path)
    events = _batch(runtime.dataset())
    first = runtime.advance(events)
    counts = runtime.report.counts()
    assert counts[STAGE_DELTA]["misses"] == 1

    # same store, fresh runtime: memory tier serves the artifact
    warm = _runtime(tmp_path, store=runtime.store)
    assert warm.advance(events) is first
    assert warm.report.counts()[STAGE_DELTA]["hits"] == 1
    assert warm.report.counts()[STAGE_DELTA]["misses"] == 0

    # fresh store over the same cache dir: a cold process, disk tier
    cold = _runtime(tmp_path)
    reloaded = cold.advance(events)
    assert reloaded is not first
    assert canonical_malgraph_json(reloaded) == canonical_malgraph_json(first)
    assert cold.report.counts()[STAGE_DELTA]["hits"] == 1


def test_advance_matches_cold_rebuild_and_chains(tmp_path):
    runtime = _runtime(tmp_path)
    base_ds = runtime.dataset()
    first = _batch(base_ds)
    mid = runtime.advance(first)
    mid_ds = apply_events_to_dataset(base_ds, first)
    assert canonical_malgraph_json(mid) == canonical_malgraph_json(
        MalGraph.build(mid_ds)
    )

    second = [
        GraphEvent.package_detected(
            entry("delta-added-pkg", code="def added():\n    return 41\n",
                  downloads=5)
        ),
        GraphEvent.report_ingested(
            report("r-delta", [entry("delta-added-pkg").package])
        ),
    ]
    head = runtime.advance(second)
    assert head.delta_epoch == 2
    final_ds = apply_events_to_dataset(mid_ds, second)
    assert canonical_malgraph_json(head) == canonical_malgraph_json(
        MalGraph.build(final_ds)
    )
    # two delta resolutions recorded, each with its own chained address
    runs = [r for r in runtime.report.runs if r.stage == STAGE_DELTA]
    assert len(runs) == 2
    assert runs[0].fingerprint != runs[1].fingerprint
    # each build recorded its apply_delta substage with a summary line
    subs = [s for s in runtime.report.substages if s.stage == STAGE_DELTA]
    assert len(subs) == 2 and all(s.name == "apply_delta" for s in subs)
