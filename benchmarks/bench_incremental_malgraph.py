"""Incremental MALGRAPH: delta apply cost vs full rebuild.

Standalone script (not a pytest bench) so CI can run it in fast mode:

    PYTHONPATH=src python benchmarks/bench_incremental_malgraph.py --fast

For each world scale it:

1. cold-builds the MALGRAPH (the rebuild baseline);
2. applies a realistic event batch (removals + detections + publishes +
   one report, capped at ~1% of the corpus) through the delta engine —
   the *first* apply also pays the one-time ``DeltaState`` bootstrap
   (embedding the whole corpus into the per-SHA cache), reported
   separately because a live service pays it once per process;
3. applies a second batch at steady state — the number that matters for
   a continuously-ingesting service;
4. cold-rebuilds from the post-events collection and byte-compares the
   canonical serialisations.

The equivalence gate (byte-identity with a cold rebuild, after every
batch) always runs. At scales >= 10 the steady-state delta apply must
additionally be >= 10x faster than the full rebuild it replaces.

``--record FILE`` appends the numbers to a JSON trajectory file
(``BENCH_incremental.json`` at the repo root holds the reference run).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path

from repro.collection.records import CollectedReport, DatasetEntry, SourceClaim
from repro.core.delta import GraphEvent, apply_events_to_dataset
from repro.core.malgraph import MalGraph
from repro.ecosystem.package import PackageId, make_artifact
from repro.io.malgraphs import canonical_malgraph_json
from repro.world import WorldConfig, build_world, collect

#: required delta-over-rebuild advantage at scales >= SPEEDUP_AT_SCALE
SPEEDUP_FLOOR = 10.0
SPEEDUP_AT_SCALE = 10.0

#: event batches stay below this fraction of the corpus
BATCH_FRACTION = 0.01


def _clone_with_downloads(entry: DatasetEntry, downloads: int) -> DatasetEntry:
    return DatasetEntry(
        package=entry.package,
        claims=list(entry.claims),
        artifact=entry.artifact,
        artifact_origin=entry.artifact_origin,
        release_day=entry.release_day,
        removal_day=entry.removal_day,
        detection_day=entry.detection_day,
        downloads=downloads,
        campaign_id=entry.campaign_id,
        actor=entry.actor,
        archetype=entry.archetype,
        behavior_key=entry.behavior_key,
    )


def _published_entry(template: DatasetEntry, name: str) -> DatasetEntry:
    """A newly published package reusing an existing payload (so the
    batch exercises duplicated and similar surgery, not just node adds)."""
    eco = template.package.ecosystem
    artifact = make_artifact(eco, name, "1.0", dict(template.artifact.files))
    return DatasetEntry(
        package=PackageId(eco, name, "1.0"),
        claims=[SourceClaim(source="snyk", report_day=30, shares_artifact=True)],
        artifact=artifact,
        artifact_origin="source:delta-bench",
        release_day=28,
        downloads=3,
    )


def _batch(dataset, rng: random.Random, round_no: int):
    """One realistic event batch: k removals, k detections, k publishes
    and a report, with k sized so the batch stays <= ~1% of the corpus."""
    entries = list(dataset.entries)
    k = max(1, len(entries) // 2000)
    available = [e for e in entries if e.artifact is not None]
    picks = rng.sample(available, min(3 * k, len(available)))
    removed, detected, templates = picks[:k], picks[k : 2 * k], picks[2 * k :]
    events = []
    for held in removed:
        events.append(GraphEvent.package_removed(held.package))
    for held in detected:
        events.append(
            GraphEvent.package_detected(
                _clone_with_downloads(held, held.downloads + 10)
            )
        )
    published = []
    for i, template in enumerate(templates or available[:1]):
        fresh = _published_entry(template, f"delta-pkg-{round_no}-{i}")
        published.append(fresh)
        events.append(GraphEvent.package_added(fresh))
    survivors = [e for e in detected if e not in removed] + published
    if len(survivors) >= 2:
        events.append(
            GraphEvent.report_ingested(
                CollectedReport(
                    report_id=f"r-delta-{round_no}",
                    url=f"https://intel.example/r-delta-{round_no}",
                    site="intel.example",
                    category="Security org.",
                    source="snyk",
                    publish_day=31,
                    packages=[e.package for e in survivors[:2]],
                )
            )
        )
    return events


def bench_scale(scale: float, record: list) -> None:
    print(f"\n== scale {scale:g} ==")
    rng = random.Random(13)
    world = build_world(WorldConfig(seed=7, scale=scale))
    dataset = collect(world).dataset
    print(f"dataset: {len(dataset.entries)} entries")

    started = time.perf_counter()
    base = MalGraph.build(dataset)
    cold_s = time.perf_counter() - started
    print(f"cold build: {cold_s:8.2f} s")

    # -- first batch: pays the one-time DeltaState bootstrap ---------------
    batch1 = _batch(dataset, rng, 1)
    fraction = len(batch1) / max(1, len(dataset.entries))
    assert fraction <= max(BATCH_FRACTION, 5 / len(dataset.entries)), fraction
    started = time.perf_counter()
    evolved, delta1 = base.apply_delta(batch1)
    bootstrap_s = time.perf_counter() - started
    print(
        f"delta apply #1: {bootstrap_s:6.2f} s  "
        f"({len(batch1)} events, {fraction * 100:.2f}% of corpus; "
        "includes one-time bootstrap)"
    )
    mid_dataset = apply_events_to_dataset(dataset, batch1)
    assert canonical_malgraph_json(evolved) == canonical_malgraph_json(
        MalGraph.build(mid_dataset)
    ), "batch 1: delta apply diverged from the cold rebuild"

    # -- second batch: steady state (what a live service pays; the
    # service refresh path applies in place, so the bench does too) --------
    batch2 = _batch(mid_dataset, rng, 2)
    started = time.perf_counter()
    head, delta2 = evolved.apply_delta(batch2, in_place=True)
    delta_s = time.perf_counter() - started
    final_dataset = apply_events_to_dataset(mid_dataset, batch2)
    started = time.perf_counter()
    rebuilt = MalGraph.build(final_dataset)
    rebuild_s = time.perf_counter() - started
    assert canonical_malgraph_json(head) == canonical_malgraph_json(rebuilt), (
        "batch 2: delta apply diverged from the cold rebuild"
    )
    speedup = rebuild_s / delta_s if delta_s > 0 else float("inf")
    print(
        f"delta apply #2: {delta_s:6.2f} s  ({len(batch2)} events, steady state)"
    )
    print(f"full rebuild:   {rebuild_s:6.2f} s   speedup {speedup:6.1f}x")
    print("equivalence gate: byte-identical after both batches  OK")

    record.append(
        {
            "scale": scale,
            "entries": len(dataset.entries),
            "batch_events": len(batch2),
            "batch_fraction": round(len(batch2) / len(dataset.entries), 5),
            "cold_build_s": round(cold_s, 4),
            "bootstrap_apply_s": round(bootstrap_s, 4),
            "delta_apply_s": round(delta_s, 4),
            "rebuild_s": round(rebuild_s, 4),
            "speedup": round(speedup, 2),
            "equivalent": True,
        }
    )

    if scale >= SPEEDUP_AT_SCALE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"delta apply only {speedup:.1f}x faster than a full rebuild "
            f"at scale {scale:g} (need >= {SPEEDUP_FLOOR:g}x)"
        )
        print(f"speedup gate: {speedup:.1f}x >= {SPEEDUP_FLOOR:g}x  OK")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        type=float,
        nargs="+",
        default=[1.0, 10.0],
        help="world scales to bench (default: 1 and 10)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI mode: small scale (equivalence gates only)",
    )
    parser.add_argument(
        "--record",
        default=None,
        metavar="FILE",
        help="write the measurements to this JSON trajectory file",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.scales = [0.15]

    print(f"scales={args.scales}")
    record: list = []
    for scale in args.scales:
        bench_scale(scale, record)
    if args.record:
        Path(args.record).write_text(
            json.dumps({"bench": "incremental_malgraph", "runs": record},
                       indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote {args.record}")
    print("\nall correctness gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
