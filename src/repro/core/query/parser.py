"""Recursive-descent parser for the MALGRAPH query language.

Grammar (case-insensitive keywords)::

    query       := match_query | call_query
    match_query := MATCH pattern [WHERE bool_expr] RETURN items
                   [ORDER BY item [ASC|DESC]] [LIMIT int]
    call_query  := CALL word '(' [literal (',' literal)*] ')' [LIMIT int]
    pattern     := node (edge node)*
    node        := '(' var ['{' word ':' literal (',' ...)* '}'] ')'
    edge        := ('-'|'<-') '[' [':'] [types] [hops] ']' ('-'|'->')
    types       := type ('|' type)*
    hops        := '*' [int] ['..' [int]]
    bool_expr   := and_expr (OR and_expr)*
    and_expr    := unit (AND unit)*
    unit        := [NOT] var '.' attr (op literal | IS [NOT] NULL
                   | CONTAINS literal)
                 | '(' bool_expr ')'
    items       := item (',' item)*
    item        := COUNT '(' '*' ')' | var ['.' attr]

Every failure raises :class:`~repro.core.query.ast.QuerySyntaxError`
carrying the source offset and a caret-annotated message; semantic
failures (unbound variables, COUNT mixed with projections) raise
:class:`~repro.core.query.ast.QueryError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.graph import EdgeType
from repro.core.query.ast import (
    BoolExpr,
    CallQuery,
    Comparison,
    EdgePattern,
    Literal,
    MatchQuery,
    NodePattern,
    QueryAst,
    QueryError,
    QuerySyntaxError,
    ReturnItem,
)
from repro.core.query.lexer import KEYWORDS, Token, tokenize, unescape_string

#: procedures the executor implements (checked at parse time so typos
#: fail with a caret instead of an empty result)
PROCEDURES = ("neighborhood", "shortest_path")


class Parser:
    """One-shot recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token stream helpers ---------------------------------------------
    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError(
                "unexpected end of query", self.text, len(self.text)
            )
        self.pos += 1
        return token

    def expect(self, value: str) -> Token:
        token = self.next()
        if token.value.lower() != value.lower():
            raise QuerySyntaxError(
                f"expected {value!r}, got {token.value!r}", self.text, token.pos
            )
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.is_word and token.lowered() == word

    def at_value(self, value: str) -> bool:
        token = self.peek()
        return token is not None and token.value == value

    # -- entry point ------------------------------------------------------
    def parse(self) -> QueryAst:
        if self.at_keyword("call"):
            return self._call_query()
        self.expect("match")
        nodes, edges = self._pattern()
        where = None
        if self.at_keyword("where"):
            self.next()
            where = self._bool_expr()
        self.expect("return")
        returns = self._return_items()
        order_by, order_desc = None, False
        if self.at_keyword("order"):
            self.next()
            self.expect("by")
            order_by = self._return_item()
            if self.at_keyword("desc"):
                self.next()
                order_desc = True
            elif self.at_keyword("asc"):
                self.next()
        limit = self._limit_clause()
        self._expect_end()
        query = MatchQuery(
            nodes=tuple(nodes),
            edges=tuple(edges),
            where=where,
            returns=tuple(returns),
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
        )
        self._check_semantics(query)
        return query

    def _expect_end(self) -> None:
        if self.peek() is not None:
            token = self.peek()
            raise QuerySyntaxError(
                f"trailing input at {token.value!r}", self.text, token.pos
            )

    def _limit_clause(self) -> Optional[int]:
        if not self.at_keyword("limit"):
            return None
        self.next()
        token = self.next()
        if token.kind != "number" or "." in token.value or "-" in token.value:
            raise QuerySyntaxError(
                f"LIMIT needs a non-negative integer, got {token.value!r}",
                self.text,
                token.pos,
            )
        return int(token.value)

    # -- CALL --------------------------------------------------------------
    def _call_query(self) -> CallQuery:
        self.expect("call")
        name = self.next()
        if not name.is_word:
            raise QuerySyntaxError(
                f"expected procedure name, got {name.value!r}", self.text, name.pos
            )
        if name.lowered() not in PROCEDURES:
            raise QuerySyntaxError(
                f"unknown procedure {name.value!r}; expected one of "
                f"{list(PROCEDURES)}",
                self.text,
                name.pos,
            )
        self.expect("(")
        args: List[Literal] = []
        if not self.at_value(")"):
            args.append(self._literal())
            while self.at_value(","):
                self.next()
                args.append(self._literal())
        self.expect(")")
        limit = self._limit_clause()
        self._expect_end()
        return CallQuery(procedure=name.lowered(), args=tuple(args), limit=limit)

    # -- pattern -----------------------------------------------------------
    def _pattern(self) -> Tuple[List[NodePattern], List[EdgePattern]]:
        nodes = [self._node()]
        edges: List[EdgePattern] = []
        seen = {nodes[0].var}
        while self.at_value("-") or (
            self.peek() is not None and self.peek().kind == "arrow"
        ):
            edges.append(self._edge())
            node = self._node()
            if node.var in seen:
                raise QueryError(
                    f"variable {node.var!r} is bound twice in the pattern"
                )
            seen.add(node.var)
            nodes.append(node)
        return nodes, edges

    def _node(self) -> NodePattern:
        self.expect("(")
        token = self.next()
        if not token.is_word or token.lowered() in KEYWORDS:
            raise QuerySyntaxError(
                f"bad variable name {token.value!r}", self.text, token.pos
            )
        props: List[Tuple[str, Literal]] = []
        if self.at_value("{"):
            self.next()
            props.append(self._prop())
            while self.at_value(","):
                self.next()
                props.append(self._prop())
            self.expect("}")
        self.expect(")")
        return NodePattern(var=token.value, props=tuple(props))

    def _prop(self) -> Tuple[str, Literal]:
        key = self.next()
        if not key.is_word:
            raise QuerySyntaxError(
                f"expected attribute name, got {key.value!r}", self.text, key.pos
            )
        self.expect(":")
        return key.value, self._literal()

    def _edge(self) -> EdgePattern:
        direction = "any"
        lead = self.next()  # "-" or "<-"
        if lead.kind == "arrow":
            if lead.value != "<-":
                raise QuerySyntaxError(
                    "edge cannot start with '->'", self.text, lead.pos
                )
            direction = "in"
        elif lead.value != "-":
            raise QuerySyntaxError(
                f"expected edge, got {lead.value!r}", self.text, lead.pos
            )
        self.expect("[")
        if self.at_value(":"):  # legacy `[:type]` spelling
            self.next()
        types = self._edge_types()
        min_hops, max_hops = self._hops()
        self.expect("]")
        tail = self.next()  # "-" or "->"
        if tail.kind == "arrow":
            if tail.value != "->":
                raise QuerySyntaxError(
                    "edge cannot end with '<-'", self.text, tail.pos
                )
            if direction == "in":
                raise QuerySyntaxError(
                    "edge cannot be directed both ways", self.text, tail.pos
                )
            direction = "out"
        elif tail.value != "-":
            raise QuerySyntaxError(
                f"expected '-' or '->' after ']', got {tail.value!r}",
                self.text,
                tail.pos,
            )
        return EdgePattern(
            types=tuple(types),
            direction=direction,
            min_hops=min_hops,
            max_hops=max_hops,
        )

    def _edge_types(self) -> List[EdgeType]:
        token = self.peek()
        if token is None or not token.is_word:
            return []
        types = [self._edge_type()]
        while self.at_value("|"):
            self.next()
            types.append(self._edge_type())
        return types

    def _edge_type(self) -> EdgeType:
        token = self.next()
        try:
            return EdgeType(token.value.lower())
        except ValueError:
            raise QuerySyntaxError(
                f"unknown edge type {token.value!r}; expected one of "
                f"{[t.value for t in EdgeType]}",
                self.text,
                token.pos,
            ) from None

    def _hops(self) -> Tuple[int, Optional[int]]:
        if not self.at_value("*"):
            return 1, 1
        star = self.next()
        lo: Optional[int] = None
        hi: Optional[int] = None
        token = self.peek()
        if token is not None and token.kind == "number":
            lo = self._hop_count(self.next())
        if self.peek() is not None and self.peek().kind == "range":
            self.next()
            token = self.peek()
            if token is not None and token.kind == "number":
                hi = self._hop_count(self.next())
        elif lo is not None:
            hi = lo  # `*n` means exactly n hops
        if lo is None and hi is None and not (
            self.peek() is not None and self.peek().value == "]"
        ):
            raise QuerySyntaxError(
                "bad hop range after '*'", self.text, star.pos
            )
        lo = 1 if lo is None else lo
        if hi is not None and hi < lo:
            raise QuerySyntaxError(
                f"hop range {lo}..{hi} is empty", self.text, star.pos
            )
        return lo, hi

    def _hop_count(self, token: Token) -> int:
        if "." in token.value or "-" in token.value:
            raise QuerySyntaxError(
                f"hop counts must be positive integers, got {token.value!r}",
                self.text,
                token.pos,
            )
        count = int(token.value)
        if count < 1:
            raise QuerySyntaxError(
                "hop counts must be >= 1", self.text, token.pos
            )
        return count

    # -- WHERE -------------------------------------------------------------
    def _bool_expr(self) -> BoolExpr:
        parts: List[Union[BoolExpr, Comparison]] = [self._and_expr()]
        while self.at_keyword("or"):
            self.next()
            parts.append(self._and_expr())
        if len(parts) == 1 and isinstance(parts[0], BoolExpr):
            return parts[0]
        return BoolExpr(op="or", parts=tuple(parts))

    def _and_expr(self) -> BoolExpr:
        parts: List[Union[BoolExpr, Comparison]] = [self._unit()]
        while self.at_keyword("and"):
            self.next()
            parts.append(self._unit())
        return BoolExpr(op="and", parts=tuple(parts))

    def _unit(self) -> Union[BoolExpr, Comparison]:
        if self.at_value("("):
            self.next()
            inner = self._bool_expr()
            self.expect(")")
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison:
        negated = False
        if self.at_keyword("not"):
            self.next()
            negated = True
        var = self.next()
        if not var.is_word:
            raise QuerySyntaxError(
                f"expected variable, got {var.value!r}", self.text, var.pos
            )
        self.expect(".")
        attr = self.next()
        if not attr.is_word:
            raise QuerySyntaxError(
                f"expected attribute, got {attr.value!r}", self.text, attr.pos
            )
        op_token = self.next()
        if op_token.is_word and op_token.lowered() == "is":
            if self.at_keyword("not"):
                self.next()
                negated = not negated
            self.expect("null")
            return Comparison(
                var=var.value, attr=attr.value, op="is-null", negated=negated
            )
        if op_token.is_word and op_token.lowered() == "contains":
            op = "contains"
        elif op_token.kind == "op":
            op = op_token.value
        else:
            raise QuerySyntaxError(
                f"expected comparison operator, got {op_token.value!r}",
                self.text,
                op_token.pos,
            )
        literal = self._literal()
        return Comparison(
            var=var.value, attr=attr.value, op=op, literal=literal, negated=negated
        )

    def _literal(self) -> Literal:
        token = self.next()
        if token.kind == "string":
            return unescape_string(token.value)
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        raise QuerySyntaxError(
            f"expected literal, got {token.value!r}", self.text, token.pos
        )

    # -- RETURN ------------------------------------------------------------
    def _return_items(self) -> List[ReturnItem]:
        items = [self._return_item()]
        while self.at_value(","):
            self.next()
            items.append(self._return_item())
        return items

    def _return_item(self) -> ReturnItem:
        token = self.next()
        if token.is_word and token.lowered() == "count":
            self.expect("(")
            self.expect("*")
            self.expect(")")
            return ReturnItem(var=None, attr=None, is_count=True)
        if not token.is_word:
            raise QuerySyntaxError(
                f"bad return item {token.value!r}", self.text, token.pos
            )
        var = token.value
        if self.at_value("."):
            self.next()
            attr = self.next()
            if not attr.is_word:
                raise QuerySyntaxError(
                    f"bad attribute {attr.value!r}", self.text, attr.pos
                )
            return ReturnItem(var=var, attr=attr.value)
        return ReturnItem(var=var, attr=None)

    # -- semantic checks -----------------------------------------------------
    def _check_semantics(self, query: MatchQuery) -> None:
        known = set(query.variables)
        used = query.where.vars_used() if query.where else set()
        for item in list(query.returns) + (
            [query.order_by] if query.order_by else []
        ):
            if item is not None and not item.is_count:
                used.add(item.var)
        unknown = used - known
        if unknown:
            raise QueryError(
                f"unbound variable(s) {sorted(unknown)}; bound: {sorted(known)}"
            )
        if any(item.is_count for item in query.returns) and len(query.returns) != 1:
            raise QueryError("COUNT(*) cannot be mixed with other projections")


def parse(query_text: str) -> QueryAst:
    """Parse query text into a :class:`MatchQuery` or :class:`CallQuery`."""
    return Parser(query_text).parse()
