"""Ablation — mirror fleet composition vs recovery rate (Section II-C).

The paper recovers removed packages from 23 mirrors of two behaviours:
lagging (periodic full re-sync, so removals eventually propagate) and
archival (append-only, never purge). This ablation re-runs mirror
recovery over the same unavailable-record set with four fleets.

Expected shape: the full fleet recovers the most; archival mirrors are
the source of durable recoveries (the lagging-only fleet loses most of
them); no mirrors means a 100% missing rate — the paper's Table VI
worst case.
"""

from __future__ import annotations

import copy
from typing import Dict, List

import pytest

from repro.collection.mirrorsearch import recover_from_mirrors
from repro.collection.pipeline import CollectionPipeline
from repro.ecosystem.mirror import MirrorNetwork
from repro.world import WorldConfig, build_world

SMALL = WorldConfig(seed=11, scale=0.25)


@pytest.fixture(scope="module")
def world():
    return build_world(SMALL)


def _collect_without_mirrors(world):
    """Run the pipeline with an empty mirror network: every entry whose
    artifact no source shared stays unavailable."""
    pipeline = CollectionPipeline(world.registries, MirrorNetwork())
    return pipeline.run(world.outcome, world.web, world.feed, world.reports)


def _fleet(world, keep) -> MirrorNetwork:
    return MirrorNetwork([m for m in world.mirrors if keep(m)])


def _recovery_rate(world, keep) -> float:
    result = _collect_without_mirrors(world)
    pending = [e for e in result.dataset.entries if not e.available]
    entries = copy.deepcopy(pending)
    stats = recover_from_mirrors(entries, _fleet(world, keep))
    return stats.recovery_rate


FLEETS = {
    "full": lambda m: True,
    "archival-only": lambda m: m.archival,
    "lagging-only": lambda m: not m.archival,
    "none": lambda m: False,
}


@pytest.fixture(scope="module")
def rates(world, request) -> Dict[str, float]:
    show = request.getfixturevalue("show")
    results = {name: _recovery_rate(world, keep) for name, keep in FLEETS.items()}
    lines = ["fleet          recovery rate"]
    for name, rate in results.items():
        lines.append(f"{name:<14} {rate:>12.1%}")
    show("Ablation: mirror fleet composition vs recovery rate", "\n".join(lines))
    _assert_shape(results)
    return results


def _assert_shape(rates) -> None:
    assert rates["none"] == 0.0, "no mirrors -> nothing recoverable"
    assert rates["full"] >= rates["archival-only"] >= 0.0
    assert rates["full"] >= rates["lagging-only"]
    assert rates["archival-only"] > rates["lagging-only"], (
        "archival mirrors drive durable recoveries; lagging mirrors purge "
        "removed packages at their next sync"
    )
    # The residual set is the hard one: packages no source archived are
    # mostly the fast-removed kind no mirror captured either (that is
    # Fig. 5's whole point), so even the full fleet recovers only a few %.
    assert rates["full"] > 0.01, "the fleet recovers a nonzero fraction"


@pytest.mark.parametrize("fleet", list(FLEETS))
def test_ablation_mirror_fleet(benchmark, world, rates, fleet):
    rate = benchmark(_recovery_rate, world, FLEETS[fleet])
    assert rate == pytest.approx(rates[fleet])
