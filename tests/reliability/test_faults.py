"""FaultPlan / FaultInjector / faulty substrate wrappers."""

from __future__ import annotations

import pytest

from repro.crawler.html import render_page, tag, text
from repro.ecosystem.package import make_artifact
from repro.ecosystem.registry import Registry
from repro.ecosystem.mirror import MirrorNetwork, MirrorRegistry
from repro.errors import (
    ConfigError,
    FeedTruncatedError,
    FetchTimeoutError,
    FetchUnreachableError,
    MirrorDownError,
    SiteOutageError,
    SourceOutageError,
)
from repro.intel.web import SimulatedWeb, WebPage
from repro.reliability import (
    FaultInjector,
    FaultPlan,
    FaultyFeed,
    FaultyMirrorNetwork,
    FaultyWeb,
    RetryClock,
)


# -- FaultPlan ---------------------------------------------------------------

def test_plan_validates_rates():
    with pytest.raises(ConfigError):
        FaultPlan(fetch_unreachable_rate=1.5)
    with pytest.raises(ConfigError):
        FaultPlan(mirror_down_rate=-0.1)
    with pytest.raises(ConfigError):
        # individually legal, jointly > 1
        FaultPlan(
            fetch_unreachable_rate=0.5,
            fetch_timeout_rate=0.4,
            fetch_truncate_rate=0.3,
        )


def test_plan_null_and_presets():
    assert FaultPlan().is_null
    assert not FaultPlan.moderate().is_null
    heavy = FaultPlan.heavy(seed=5)
    assert heavy.fetch_unreachable_rate >= 0.5
    assert heavy.dark_sources
    assert heavy.seed == 5
    with pytest.raises(ConfigError):
        FaultPlan.preset("nonsense")


def test_plan_round_trips_through_dict():
    plan = FaultPlan.heavy(seed=9)
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    with pytest.raises(ConfigError):
        FaultPlan.from_dict({"bogus_knob": 1})


def test_reseeded_changes_only_the_seed():
    plan = FaultPlan.moderate(seed=1).reseeded(2)
    assert plan.seed == 2
    assert plan.fetch_unreachable_rate == FaultPlan.moderate().fetch_unreachable_rate


# -- FaultInjector -----------------------------------------------------------

def test_draws_are_deterministic_and_independent_per_key():
    a = FaultInjector(FaultPlan.heavy(seed=4))
    b = FaultInjector(FaultPlan.heavy(seed=4))
    urls = [f"https://x/{i}" for i in range(20)]
    assert [a.fetch_fault(u) for u in urls] == [b.fetch_fault(u) for u in urls]
    # interleaving order must not matter: keyed draws, not a shared stream
    c = FaultInjector(FaultPlan.heavy(seed=4))
    for u in reversed(urls):
        c.fetch_fault(u)
    for u in urls:
        assert c._probes[("fetch", u)] == 1


def test_retries_redraw():
    injector = FaultInjector(FaultPlan.heavy(seed=4))
    draws = [injector.fetch_fault("https://x/r") for _ in range(8)]
    assert len(set(draws)) > 1  # not stuck on one verdict forever


def test_injected_ledger_counts_every_fault():
    injector = FaultInjector(FaultPlan.heavy(seed=4))
    fired = [
        k for k in (injector.fetch_fault(f"u{i}") for i in range(50)) if k
    ]
    assert injector.total_injected() == len(fired)
    assert sum(injector.injected.values()) == len(fired)


# -- FaultyWeb ---------------------------------------------------------------

def _page(url: str, site: str = "blog.x") -> WebPage:
    html = render_page("T", [tag("p", text("malware report body"))])
    return WebPage(url=url, html=html, site=site, is_report=True)


def _web() -> SimulatedWeb:
    web = SimulatedWeb()
    for i in range(30):
        web.add(_page(f"https://blog.x/{i}"))
    return web


def test_faulty_web_raises_matching_errors():
    clock = RetryClock()
    injector = FaultInjector(
        FaultPlan(seed=1, fetch_unreachable_rate=0.4, fetch_timeout_rate=0.3)
    )
    web = FaultyWeb(_web(), injector, clock=clock)
    outcomes = {"unreachable": 0, "timeout": 0, "ok": 0}
    for i in range(30):
        try:
            page = web.fetch(f"https://blog.x/{i}")
            assert page is not None
            outcomes["ok"] += 1
        except FetchUnreachableError:
            outcomes["unreachable"] += 1
        except FetchTimeoutError:
            outcomes["timeout"] += 1
    assert outcomes["unreachable"] == injector.injected["fetch_unreachable"]
    assert outcomes["timeout"] == injector.injected["fetch_timeout"]
    # slow fetches consumed simulated-clock budget
    assert clock.slept == outcomes["timeout"] * web.injector.plan.slow_fetch_cost


def test_faulty_web_truncates_html_detectably():
    injector = FaultInjector(FaultPlan(seed=1, fetch_truncate_rate=1.0))
    web = FaultyWeb(_web(), injector)
    page = web.fetch("https://blog.x/0")
    assert page is not None
    assert not page.html.rstrip().endswith("</html>")
    assert injector.injected["fetch_truncated"] == 1


def test_faulty_web_missing_url_is_none_not_fault():
    injector = FaultInjector(FaultPlan(seed=1, fetch_unreachable_rate=1.0))
    web = FaultyWeb(_web(), injector)
    assert web.fetch("https://nowhere/404") is None
    assert injector.total_injected() == 0  # no fault drawn for absent pages


def test_faulty_web_site_outage():
    injector = FaultInjector(FaultPlan(seed=1, site_outage_rate=1.0))
    web = FaultyWeb(_web(), injector)
    with pytest.raises(SiteOutageError):
        web.site_index("blog.x")
    assert injector.injected["site_outage"] == 1


# -- FaultyMirrorNetwork -----------------------------------------------------

def _mirrors() -> MirrorNetwork:
    registry = Registry("pypi")
    artifact = make_artifact("pypi", "evil", "1.0.0", {"a.py": "x = 1"})
    registry.publish(artifact, day=0, malicious=True)
    network = MirrorNetwork()
    for name in ("m1", "m2"):
        mirror = MirrorRegistry(name=name, upstream=registry, sync_interval=1)
        mirror.sync(0)
        network.add(mirror)
    return network


def test_faulty_mirrors_raise_mid_scan():
    injector = FaultInjector(FaultPlan(seed=1, mirror_down_rate=1.0))
    network = FaultyMirrorNetwork(_mirrors(), injector)
    with pytest.raises(MirrorDownError):
        network.search("pypi", "evil", "1.0.0")
    # the scan aborted on the FIRST mirror: one probe, one fault
    assert injector.injected["mirror_down"] == 1


def test_faulty_mirrors_clean_scan_matches_plain_search():
    injector = FaultInjector(FaultPlan(seed=1, mirror_down_rate=0.0))
    plain = _mirrors()
    faulty = FaultyMirrorNetwork(_mirrors(), injector)
    assert faulty.search("pypi", "evil", "1.0.0")[0] == plain.search(
        "pypi", "evil", "1.0.0"
    )[0]


# -- FaultyFeed --------------------------------------------------------------

def test_dark_source_never_answers():
    injector = FaultInjector(FaultPlan(seed=1, dark_sources=("maloss",)))
    feed = FaultyFeed("maloss", ["r1", "r2"], injector)
    for _ in range(5):
        with pytest.raises(SourceOutageError):
            feed.fetch()
    assert injector.injected["feed_outage"] == 5


def test_truncated_feed_keeps_a_prefix_and_the_best_partial():
    injector = FaultInjector(FaultPlan(seed=1, feed_truncate_rate=1.0))
    records = [f"r{i}" for i in range(10)]
    feed = FaultyFeed("backstabber-knife", records, injector)
    with pytest.raises(FeedTruncatedError) as exc:
        feed.fetch()
    partial = exc.value.partial
    assert 1 <= len(partial) < len(records)
    assert partial == records[: len(partial)]  # a prefix, order preserved
    assert feed.best_partial == partial


def test_clean_feed_returns_everything():
    injector = FaultInjector(FaultPlan(seed=1))
    records = ["r1", "r2"]
    assert FaultyFeed("maloss", records, injector).fetch() == records
    assert injector.total_injected() == 0
