"""Download model: the popularity classes behind Fig. 11's distribution."""

import numpy as np
import pytest

from repro.ecosystem.downloads import DAILY_RATE, DownloadModel, Popularity


@pytest.fixture
def model():
    return DownloadModel()


def test_default_rates_cover_all_classes(model):
    assert set(model.rates) == set(Popularity)


def test_rates_are_ordered(model):
    assert (
        model.rates[Popularity.OBSCURE]
        < model.rates[Popularity.NOTICED]
        < model.rates[Popularity.POPULAR]
    )


def test_obscure_packages_see_almost_no_downloads(model):
    """Fig. 11: the majority of release attempts get 0-1 downloads."""
    rng = np.random.default_rng(0)
    draws = [
        model.total_downloads(2, Popularity.OBSCURE, rng) for _ in range(500)
    ]
    assert sorted(draws)[len(draws) // 2] <= 1


def test_popular_packages_see_huge_downloads(model):
    """Fig. 11 outliers: trojaned popular packages inherit the stream."""
    rng = np.random.default_rng(0)
    total = model.total_downloads(30, Popularity.POPULAR, rng)
    assert total > 100_000


def test_same_day_removal_still_gets_exposure(model):
    """A release removed the day it was published still gets a fraction
    of a day of exposure (live_days=0 is clamped to 0.25)."""
    rng = np.random.default_rng(0)
    draws = [
        model.total_downloads(0, Popularity.POPULAR, rng) for _ in range(20)
    ]
    assert all(d > 0 for d in draws)
    assert np.mean(draws) < DAILY_RATE[Popularity.POPULAR]


def test_total_scales_with_live_days(model):
    rng = np.random.default_rng(1)
    short = np.mean([
        model.total_downloads(1, Popularity.NOTICED, rng) for _ in range(200)
    ])
    long = np.mean([
        model.total_downloads(20, Popularity.NOTICED, rng) for _ in range(200)
    ])
    assert long > short * 5


def test_custom_rates_respected():
    model = DownloadModel(rates={p: 0.0 for p in Popularity})
    rng = np.random.default_rng(0)
    assert model.total_downloads(10, Popularity.POPULAR, rng) == 0


def test_daily_downloads_nonnegative(model):
    rng = np.random.default_rng(2)
    for popularity in Popularity:
        assert model.daily_downloads(popularity, rng) >= 0
