"""Collection pipeline: Section II of the paper, end to end."""

from repro.collection.merge import DatasetDiff, diff_datasets, merge_datasets
from repro.collection.mirrorsearch import (
    MissCause,
    RecoveryStats,
    classify_miss,
    recover_from_mirrors,
)
from repro.collection.pipeline import (
    CollectionPipeline,
    CollectionResult,
    CollectionStats,
    attach_ground_truth,
)
from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)

__all__ = [
    "CollectedReport",
    "CollectionPipeline",
    "CollectionResult",
    "CollectionStats",
    "DatasetDiff",
    "DatasetEntry",
    "MalwareDataset",
    "MissCause",
    "RecoveryStats",
    "SourceClaim",
    "attach_ground_truth",
    "classify_miss",
    "diff_datasets",
    "merge_datasets",
    "recover_from_mirrors",
]
