"""Dataset record model."""

from __future__ import annotations

import pytest

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.ecosystem.package import PackageId
from repro.errors import DatasetError

from tests.core.helpers import dataset, entry, report


def test_entry_sources_and_claims():
    e = entry("pkg", sources=("snyk", "phylum"))
    assert e.sources == {"snyk", "phylum"}
    assert e.claimed_by("snyk")
    assert not e.claimed_by("socket")


def test_entry_first_report_day():
    e = entry("pkg")
    e.claims = [SourceClaim("a", 30, True), SourceClaim("b", 12, False)]
    assert e.first_report_day == 12


def test_entry_first_report_day_requires_claims():
    e = entry("pkg")
    e.claims = []
    with pytest.raises(DatasetError):
        e.first_report_day


def test_entry_availability_and_sha():
    available = entry("have")
    missing = entry("miss", code=None)
    assert available.available
    assert len(available.sha256()) == 64
    assert not missing.available
    assert missing.sha256() is None


def test_dataset_rejects_duplicate_keys():
    twin = entry("dup")
    with pytest.raises(DatasetError):
        MalwareDataset(entries=[twin, entry("dup")], reports=[])


def test_dataset_lookup_and_iteration():
    a, b = entry("a"), entry("b", code=None)
    ds = dataset([a, b])
    assert len(ds) == 2
    assert list(ds) == [a, b]
    assert ds.get(a.package) is a
    assert ds.get(PackageId("pypi", "ghost", "0")) is None


def test_dataset_views():
    a = entry("a")
    b = entry("b", code=None)
    c = entry("c", ecosystem="npm", sources=("phylum",))
    ds = dataset([a, b, c])
    assert ds.available_entries() == [a, c]
    assert ds.unavailable_entries() == [b]
    assert ds.for_ecosystem("npm") == [c]
    assert ds.entries_of_source("phylum") == [c]
    assert ds.source_keys() == ["phylum", "snyk"]


def test_name_index_groups_versions():
    v1 = entry("multi", version="1.0")
    v2 = entry("multi", version="2.0", code="V2 = 1\n")
    other = entry("other")
    ds = dataset([v1, v2, other])
    index = ds.name_index()
    assert index[("pypi", "multi")] == [v1, v2]
    assert index[("pypi", "other")] == [other]


def test_collected_report_holds_unresolved():
    e = entry("known")
    rep = report("r", [e.package])
    rep.unresolved.append(("mystery", "9.9"))
    ds = dataset([e], [rep])
    assert ds.reports[0].unresolved == [("mystery", "9.9")]
