"""Cross-experiment consistency: independent analyses must agree on the
shared facts of one dataset (at full scale, against the `paper`
fixture)."""

from __future__ import annotations

import pytest

from repro.analysis.overlap import compute_overlap_matrix
from repro.core.graph import EdgeType
from repro.core.groups import GroupKind


def test_table1_totals_match_dataset(paper):
    """Table I row totals = per-source claim counts of the dataset."""
    inventory = paper.table1_sources()
    for row in inventory.rows:
        entries = paper.dataset.entries_of_source(row.source)
        assert row.total == len(entries)
        assert row.available == sum(1 for e in entries if e.available)


def test_table1_and_table6_agree(paper):
    """Table VI's per-source totals are Table I's."""
    t1 = {row.source: row for row in paper.table1_sources().rows}
    t6 = {row.source: row for row in paper.table6_missing().rows}
    assert set(t1) == set(t6)
    for source, row in t6.items():
        assert row.total == t1[source].total
        assert row.missing_all == t1[source].unavailable


def test_table6_overall_matches_dataset(paper):
    table = paper.table6_missing()
    assert table.overall_total == len(paper.dataset)
    assert table.overall_missing == len(paper.dataset.unavailable_entries())


def test_fig2_totals_match_dated_entries(paper):
    timeline = paper.fig2_timeline()
    dated = [e for e in paper.dataset.entries if e.release_day is not None]
    assert sum(timeline.counts) == len(dated)


def test_fig5_total_matches_unavailable(paper):
    causes = paper.fig5_causes()
    assert causes.total == len(paper.dataset.unavailable_entries())


def test_table4_diagonal_matches_table1(paper):
    matrix = compute_overlap_matrix(paper.dataset)
    t1 = {row.source: row for row in paper.table1_sources().rows}
    for source in matrix.sources:
        assert matrix.overlap(source, source) == t1[source].total


def test_table4_symmetric_and_bounded(paper):
    matrix = compute_overlap_matrix(paper.dataset)
    for a in matrix.sources:
        for b in matrix.sources:
            if a == b:
                continue
            assert matrix.overlap(a, b) == matrix.overlap(b, a)
            assert matrix.overlap(a, b) <= min(
                matrix.overlap(a, a), matrix.overlap(b, b)
            )


def test_table2_nodes_bounded_by_dataset(paper):
    stats = paper.table2_malgraph()
    for row in stats.rows:
        assert row.nodes <= len(paper.dataset)


def test_table2_sg_nodes_match_group_membership(paper):
    """Table II's SG node count = packages inside similarity groups."""
    stats = {row.edge_type: row for row in paper.table2_malgraph().rows}
    grouped = sum(g.size for g in paper.malgraph.groups(GroupKind.SG))
    assert stats[EdgeType.SIMILAR].nodes == grouped


def test_table7_counts_match_group_extraction(paper):
    table = paper.table7_diversity()
    for kind in (GroupKind.SG, GroupKind.DEG, GroupKind.CG):
        by_eco = {}
        for group in paper.malgraph.groups(kind):
            by_eco[group.ecosystem] = by_eco.get(group.ecosystem, 0) + 1
        for ecosystem in table.ecosystems:
            assert table.cell(ecosystem, kind).count == by_eco.get(ecosystem, 0)


def test_table3_reports_match_dataset(paper):
    inventory = paper.table3_reports()
    assert inventory.total_reports == len(paper.dataset.reports)
    sites = {r.site for r in paper.dataset.reports}
    assert inventory.total_websites == len(sites)


def test_fig9_sg_count_matches_groups(paper):
    cdf = paper.fig9_active_periods()
    sg_points = cdf.per_kind[GroupKind.SG]
    dated_groups = [
        g for g in paper.malgraph.groups(GroupKind.SG)
        if g.active_period_days is not None
    ]
    # the CDF's final step covers all dated groups
    assert sg_points[-1].fraction == pytest.approx(1.0)
    total = round(sg_points[-1].fraction * len(dated_groups))
    assert total == len(dated_groups)


def test_fig11_outliers_are_trojan_campaigns(paper):
    """Fig. 11's million-download outliers are the trojan-popular
    campaigns — cross-check against ground truth."""
    evo = paper.fig11_downloads()
    assert evo.outliers
    for package_str, downloads in evo.outliers[:5]:
        entry = next(
            e for e in paper.dataset.entries if str(e.package) == package_str
        )
        assert downloads == entry.downloads
        assert entry.archetype in ("trojan-popular", "dependency"), (
            f"outlier {package_str} came from {entry.archetype}"
        )


def test_table8_idn_consistent_with_downloads(paper):
    table = paper.table8_idn()
    lookup = {str(e.package): e.downloads for e in paper.dataset.entries}
    for row in table.rows:
        assert row.idn == lookup[row.to_package] - lookup[row.from_package]
