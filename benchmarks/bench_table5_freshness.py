"""Table V — the update frequency of different online sources.

Paper shape: academic datasets stop updating (frequency ~never) while
industry feeds keep publishing on a monthly-to-quarterly cadence.
"""

from __future__ import annotations

from repro.intel.sources import SOURCE_INDEX, Sector


def test_table5_freshness(benchmark, artifacts, show):
    table = benchmark(artifacts.table5_freshness)
    show("Table V: the update frequency of different online sources",
         table.render())

    by_sector = {Sector.ACADEMIA: [], Sector.INDUSTRY: []}
    for row in table.rows:
        sector = SOURCE_INDEX[row.source].sector
        if sector in by_sector and row.last_update_day is not None:
            by_sector[sector].append(row.last_update_day)
    assert by_sector[Sector.ACADEMIA] and by_sector[Sector.INDUSTRY]
    academic_latest = max(by_sector[Sector.ACADEMIA])
    industry_latest = max(by_sector[Sector.INDUSTRY])
    assert industry_latest >= academic_latest, (
        "industry feeds stay fresher than academic datasets"
    )
