"""Dataset publication manifest (the transparency website)."""

from __future__ import annotations

import json

import pytest

from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.io.publish import build_manifest, publish_dataset

from tests.core.helpers import dataset, entry, report


@pytest.fixture(scope="module")
def malgraph():
    code = "def payload():\n    return 'pub'\n"
    a = entry("pub-a", code=code, release_day=10)
    b = entry("pub-b", code=code, release_day=12)
    c = entry("solo", code="def other():\n    return 1\n", release_day=20)
    gone = entry("gone", code=None, release_day=5)
    return MalGraph.build(
        dataset([a, b, c, gone], [report("r1", [a.package, c.package])]),
        SimilarityConfig(seed=0, max_k=2),
    )


def test_manifest_summary(malgraph):
    manifest = build_manifest(malgraph)
    assert manifest.summary["packages"] == 4
    assert manifest.summary["available"] == 3
    assert manifest.summary["unavailable"] == 1
    assert manifest.summary["ecosystems"] == {"pypi": 4}


def test_manifest_signatures(malgraph):
    manifest = build_manifest(malgraph)
    by_name = {p["name"]: p for p in manifest.packages}
    assert by_name["pub-a"]["sha256"] == by_name["pub-b"]["sha256"]
    assert len(by_name["pub-a"]["md5"]) == 32
    assert by_name["gone"]["sha256"] is None
    assert by_name["gone"]["md5"] is None


def test_manifest_group_labels(malgraph):
    manifest = build_manifest(malgraph)
    by_name = {p["name"]: p for p in manifest.packages}
    assert "DG" in by_name["pub-a"]["groups"]
    assert by_name["pub-a"]["groups"]["DG"] == by_name["pub-b"]["groups"]["DG"]
    assert "CG" in by_name["solo"]["groups"]
    assert by_name["gone"]["groups"] == {}


def test_manifest_groups_listing(malgraph):
    manifest = build_manifest(malgraph)
    assert set(manifest.groups) == {"DG", "DeG", "SG", "CG"}
    dg = manifest.groups["DG"]
    assert len(dg) == 1
    assert dg[0]["size"] == 2
    assert sorted(dg[0]["members"]) == ["pypi:pub-a@1.0", "pypi:pub-b@1.0"]
    assert manifest.groups["DeG"] == []


def test_manifest_json_valid(malgraph):
    manifest = build_manifest(malgraph)
    index = json.loads(manifest.to_index_json())
    assert index["summary"]["packages"] == 4
    groups = json.loads(manifest.to_groups_json())
    assert "SG" in groups


def test_markdown_front_page(malgraph):
    text = build_manifest(malgraph).to_markdown()
    assert "# OSS Malicious Package Dataset" in text
    assert "**4**" in text
    assert "| DG |" in text


def test_publish_writes_three_files(malgraph, tmp_path):
    target = publish_dataset(malgraph, tmp_path / "site")
    for name in ("index.json", "groups.json", "index.md"):
        assert (target / name).exists()
    index = json.loads((target / "index.json").read_text())
    assert len(index["packages"]) == 4
