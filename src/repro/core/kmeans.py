"""K-Means clustering (scikit-learn substitute).

Section III-A clusters package embeddings with K-Means, starting at
``k = 3`` and increasing the number of clusters "until the centroids of
newly formed clusters do not change". :func:`grow_kmeans` implements that
procedure: ``k`` grows until a freshly added cluster's centroid is no
longer distinct from the existing ones (or inertia stops improving),
meaning further splits create no new structure.

Vectors are assumed L2-normalised (cosine geometry), so assignment is an
argmax of dot products — a single BLAS matmul per Lloyd iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass
class KMeansResult:
    """Outcome of one K-Means run."""

    centroids: np.ndarray  # (k, dim)
    labels: np.ndarray  # (n,)
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    def clusters(self) -> List[np.ndarray]:
        """Member indices per cluster (empty clusters omitted)."""
        out = []
        for cluster in range(self.k):
            members = np.flatnonzero(self.labels == cluster)
            if members.size:
                out.append(members)
        return out


def _kmeans_pp_extend(
    X: np.ndarray,
    centroids: np.ndarray,
    start: int,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ D² sampling for slots ``[start:k]``, given that
    ``centroids[:start]`` are already chosen."""
    n = X.shape[0]
    # For unit vectors, ||x - c||^2 = 2 - 2 x.c
    closest = 2.0 - 2.0 * (X @ centroids[:start].T).max(axis=1)
    np.maximum(closest, 0.0, out=closest)
    for idx in range(start, k):
        total = float(closest.sum())
        if total <= 1e-12:
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest / total))
        centroids[idx] = X[choice]
        distance = 2.0 - 2.0 * (X @ centroids[idx])
        np.maximum(distance, 0.0, out=distance)
        np.minimum(closest, distance, out=closest)
    return centroids


def _kmeans_pp_init(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding under squared-Euclidean distance."""
    n = X.shape[0]
    centroids = np.empty((k, X.shape[1]), dtype=X.dtype)
    first = int(rng.integers(n))
    centroids[0] = X[first]
    return _kmeans_pp_extend(X, centroids, 1, k, rng)


def kmeans(
    X: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iter: int = 30,
    tol: float = 1e-6,
    init: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialisation.

    ``X`` must be an (n, dim) array; rows should be L2-normalised for
    cosine behaviour. Empty clusters are re-seeded with the point
    furthest from its centroid. ``init`` warm-starts the run: its rows
    seed the first centroids and only the remaining slots (if any) are
    drawn with k-means++ — the growth loop uses this so each round
    refines the previous round's structure instead of restarting cold.
    """
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    if max_iter < 1:
        # iteration would never bind and the epilogue would raise
        # UnboundLocalError; zero Lloyd steps is a config error, not a run.
        raise ConfigError(f"max_iter must be >= 1, got {max_iter}")
    n = X.shape[0]
    if n == 0:
        return KMeansResult(
            centroids=np.zeros((0, X.shape[1])), labels=np.zeros(0, int),
            inertia=0.0, iterations=0,
        )
    k = min(k, n)
    rng = rng if rng is not None else np.random.default_rng(0)
    if init is not None and init.shape[0] > 0:
        seeded = min(int(init.shape[0]), k)
        centroids = np.empty((k, X.shape[1]), dtype=X.dtype)
        centroids[:seeded] = init[:seeded]
        if seeded < k:
            centroids = _kmeans_pp_extend(X, centroids, seeded, k, rng)
    else:
        centroids = _kmeans_pp_init(X, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    sq_norms = np.einsum("ij,ij->i", X, X)
    inertia = float("inf")
    for iteration in range(1, max_iter + 1):
        # assignment: minimise ||x||^2 - 2 x.c + ||c||^2
        scores = X @ centroids.T
        c_norms = np.einsum("ij,ij->i", centroids, centroids)
        distances = sq_norms[:, None] - 2.0 * scores + c_norms[None, :]
        new_labels = np.argmin(distances, axis=1)
        new_inertia = float(
            np.maximum(distances[np.arange(n), new_labels], 0.0).sum()
        )
        # update: per-cluster sums as a one-hot matmul — BLAS makes this
        # an order of magnitude faster than np.add.at's scattered writes
        counts = np.bincount(new_labels, minlength=k).astype(np.float64)
        onehot = np.zeros((n, k), dtype=X.dtype)
        onehot[np.arange(n), new_labels] = 1.0
        new_centroids = onehot.T @ X
        empty = counts == 0
        if empty.any():
            worst = np.argsort(
                -np.maximum(distances[np.arange(n), new_labels], 0.0)
            )
            for slot, point in zip(np.flatnonzero(empty), worst):
                new_centroids[slot] = X[point]
                counts[slot] = 1.0
        new_centroids /= counts[:, None]
        moved = float(np.linalg.norm(new_centroids - centroids))
        centroids, labels = new_centroids, new_labels
        if moved <= tol or abs(inertia - new_inertia) <= tol * max(inertia, 1.0):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia, iterations=iteration
    )


@dataclass
class GrowthTrace:
    """One step of the k-growth procedure."""

    k: int
    inertia: float
    min_centroid_gap: float
    #: centroids inherited from the previous round (0 = cold k-means++)
    seeded: int = 0
    #: Lloyd iterations this round's run took to converge
    iterations: int = 0


def grow_kmeans(
    X: np.ndarray,
    start_k: int = 3,
    max_k: Optional[int] = None,
    seed: int = 0,
    duplicate_eps: float = 0.05,
    improvement_tol: float = 0.02,
    growth: float = 0.34,
    warm_start: bool = False,
) -> Tuple[KMeansResult, List[GrowthTrace]]:
    """The paper's cluster-growth loop.

    Starting at ``start_k`` (the paper uses 3), ``k`` grows by ~34% per
    round until either

    * two centroids nearly coincide (``min gap < duplicate_eps`` — the
      "centroids of newly formed clusters do not change" stop), or
    * inertia improves by less than ``improvement_tol`` per round, or
    * ``k`` reaches ``max_k`` (default: n // 2).

    With ``warm_start`` each growth round seeds Lloyd's from the
    previous round's centroids and draws k-means++ picks only for the
    newly added slots, instead of restarting from scratch — the stopping
    rule is unchanged and the trace records how many centroids every
    round inherited (``seeded``) and how many Lloyd iterations it took
    (``iterations``). On data whose cluster structure the cold restarts
    recover, the warm path converges to the same partition in fewer
    total iterations. It is *opt-in* because the two paths are different
    optimisations: on messy embeddings the warm candidates keep finding
    lower-inertia refinements the cold restarts cannot, so the loop
    stops at a different (finer) ``k`` than the calibrated default —
    and the canonical pipeline must stay byte-identical across every
    execution knob. Returns the final clustering and the trace.
    """
    n = X.shape[0]
    if n == 0:
        return kmeans(X, 1), []
    rng = np.random.default_rng(seed)
    cap = max_k if max_k is not None else max(start_k, n // 2)
    cap = min(cap, n)
    k = min(start_k, n)
    trace: List[GrowthTrace] = []
    best = kmeans(X, k, rng)
    best_seeded = 0
    while True:
        gap = _min_centroid_gap(best.centroids)
        trace.append(
            GrowthTrace(
                k=best.k,
                inertia=best.inertia,
                min_centroid_gap=gap,
                seeded=best_seeded,
                iterations=best.iterations,
            )
        )
        if gap < duplicate_eps:
            break
        if best.k >= cap:
            break
        next_k = min(cap, max(best.k + 1, int(best.k * (1.0 + growth))))
        init = best.centroids if warm_start else None
        candidate_seeded = best.k if warm_start else 0
        candidate = kmeans(X, next_k, rng, init=init)
        if best.inertia > 0 and (
            (best.inertia - candidate.inertia) / best.inertia < improvement_tol
        ):
            # Additional clusters no longer explain new structure; keep
            # the candidate only if it found genuinely distinct centroids.
            if _min_centroid_gap(candidate.centroids) < duplicate_eps:
                break
            best, best_seeded = candidate, candidate_seeded
            gap = _min_centroid_gap(best.centroids)
            trace.append(
                GrowthTrace(
                    k=best.k,
                    inertia=best.inertia,
                    min_centroid_gap=gap,
                    seeded=best_seeded,
                    iterations=best.iterations,
                )
            )
            break
        best, best_seeded = candidate, candidate_seeded
    return best, trace


def _min_centroid_gap(centroids: np.ndarray) -> float:
    """Smallest pairwise distance between centroids."""
    k = centroids.shape[0]
    if k < 2:
        return float("inf")
    gram = centroids @ centroids.T
    sq = np.einsum("ij,ij->i", centroids, centroids)
    dist2 = sq[:, None] - 2.0 * gram + sq[None, :]
    np.fill_diagonal(dist2, np.inf)
    return float(np.sqrt(max(dist2.min(), 0.0)))
