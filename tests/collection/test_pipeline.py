"""The Section II collection pipeline, end to end on the simulated world."""

from __future__ import annotations

import pytest

from repro.collection.pipeline import CollectionPipeline, attach_ground_truth
from repro.intel.sources import SOURCE_INDEX, SourceKind
from repro.world import collect


@pytest.fixture(scope="module")
def result(request):
    return request.getfixturevalue("small_collection")


def test_stats_account_for_every_stage(result):
    stats = result.stats
    assert stats.dataset_records > 0
    assert stats.crawled_records > 0
    assert stats.sns_records >= 0
    assert stats.merged_entries == len(result.dataset)
    assert stats.crawl.pages_fetched > 0
    assert stats.crawl.pages_filtered_out > 0


def test_every_entry_has_at_least_one_claim(result):
    for entry in result.dataset:
        assert entry.claims
        assert entry.first_report_day >= 0


def test_claims_are_unique_per_source(result):
    for entry in result.dataset:
        sources = [c.source for c in entry.claims]
        assert len(sources) == len(set(sources))


def test_artifact_origin_tracked(result):
    for entry in result.dataset.available_entries():
        assert entry.artifact_origin is not None
        kind, _, rest = entry.artifact_origin.partition(":")
        assert kind in ("source", "mirror")
        assert rest


def test_sharing_claim_implies_artifact(result):
    """If any claiming source shares artifacts for this package, the
    pipeline obtained it (sources archive what they report)."""
    for entry in result.dataset:
        if any(c.shares_artifact for c in entry.claims):
            assert entry.available


def test_mirror_recovery_stats_consistent(result):
    recovery = result.stats.recovery
    assert recovery.attempted == recovery.recovered + sum(
        recovery.misses.values()
    )
    assert 0.0 <= recovery.recovery_rate <= 1.0
    mirror_origins = sum(
        1
        for e in result.dataset.available_entries()
        if e.artifact_origin.startswith("mirror:")
    )
    assert mirror_origins == recovery.recovered


def test_reports_resolve_to_dataset_packages(result):
    for report in result.dataset.reports:
        for package in report.packages:
            assert result.dataset.get(package) is not None


def test_advisory_pages_feed_claims_not_reports(result):
    """Per-package advisory databases are record listings; they must not
    appear in the report corpus (they would flood Table III)."""
    for report in result.dataset.reports:
        assert not report.site.startswith("vuln.")


def test_report_sources_are_website_or_echo(result):
    for report in result.dataset.reports:
        if report.source != "echo":
            assert SOURCE_INDEX[report.source].kind == SourceKind.WEBSITE


def test_false_positive_filter_drops_unremoved(small_world, result):
    """Nothing in the dataset is a never-removed (benign) package, and
    the filter counted at least the noise it dropped."""
    assert result.stats.unknown_mentions >= 0
    for entry in result.dataset:
        record = small_world.registries.lookup(entry.package)
        assert record.removal_day is not None


def test_attach_ground_truth_is_idempotent(small_world, result):
    attach_ground_truth(result.dataset, small_world.corpus)
    first = [(e.campaign_id, e.actor) for e in result.dataset]
    attach_ground_truth(result.dataset, small_world.corpus)
    assert [(e.campaign_id, e.actor) for e in result.dataset] == first


def test_collect_without_ground_truth(small_world):
    bare = collect(small_world, with_ground_truth=False)
    assert all(e.campaign_id is None for e in bare.dataset)


def test_entries_sorted_by_coordinate(result):
    keys = [
        (e.package.ecosystem, e.package.name, e.package.version)
        for e in result.dataset
    ]
    assert keys == sorted(keys)
