"""Query engine performance: index build cost, query throughput, and
the indexed-vs-naive-scan speedup.

Standalone script (not a pytest bench) so CI can run it in fast mode:

    PYTHONPATH=src python benchmarks/bench_query_engine.py --fast

For each world scale it measures:

1. **index build time** — one ``build_indexes`` pass over the built
   MALGRAPH (the cost the per-graph cache amortises away);
2. **queries/sec and p95 latency** for 1-, 2- and 3-hop patterns seeded
   from an indexed name filter (the planner's fast path);
3. **indexed vs naive-scan speedup** — the same patterns executed with
   planning disabled (full node scan from the leftmost variable).

Every pattern passes a hard correctness gate before any number is
reported: the indexed and naive executors must return identical row
sets (both surfaces canonically order rows, so tuple equality). At
scales >= 10 the indexed path must additionally be >= 10x faster than
the naive scan on at least one pattern.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.core.malgraph import MalGraph
from repro.core.query import QueryEngine, build_indexes
from repro.world import WorldConfig, build_world, collect

#: required indexed-over-naive advantage at scales >= SPEEDUP_AT_SCALE
SPEEDUP_FLOOR = 10.0
SPEEDUP_AT_SCALE = 10.0


def _p95(samples) -> float:
    ordered = sorted(samples)
    return ordered[int(0.95 * (len(ordered) - 1))]


def _patterns(engine: QueryEngine):
    """(label, query) pairs seeded from names that actually have edges."""
    from repro.core.graph import EdgeType

    indexes = engine.indexes()
    seeds = [
        indexes.node_attrs(node)["name"]
        for node in indexes.nodes
        if indexes.neighbors(node, (EdgeType.SIMILAR,))
    ]
    if not seeds:
        raise SystemExit("no similar edges at this scale; nothing to bench")
    name = seeds[len(seeds) // 2]
    # selectivity lives in WHERE: the planner seeds from the name index,
    # the naive baseline scans every node and filters at the end
    return [
        ("1-hop", f"MATCH (a)-[similar]-(b) WHERE a.name = '{name}' RETURN b"),
        (
            "2-hop",
            "MATCH (a)-[similar]-(b)-[coexisting]-(c) "
            f"WHERE a.name = '{name}' RETURN c",
        ),
        (
            "3-hop",
            f"MATCH (a)-[similar*1..3]-(b) WHERE a.name = '{name}' RETURN b",
        ),
    ]


def bench_scale(scale: float, repeats: int, naive_rounds: int) -> None:
    print(f"\n== scale {scale:g} ==")
    world = build_world(WorldConfig(seed=7, scale=scale))
    dataset = collect(world).dataset
    malgraph = MalGraph.build(dataset)
    print(f"dataset: {len(dataset.entries)} entries")

    started = time.perf_counter()
    indexes = build_indexes(malgraph.graph, malgraph)
    build_s = time.perf_counter() - started
    print(
        f"index build: {build_s * 1000:8.1f} ms"
        f"   ({len(indexes.nodes)} nodes, "
        f"{sum(len(v) for v in indexes.by_attr.values())} index buckets)"
    )

    engine = QueryEngine(malgraph)
    engine.indexes()  # warm the per-graph cache
    best_speedup = 0.0
    for label, query in _patterns(engine):
        indexed_result = engine.run(query)
        t0 = time.perf_counter()
        naive_result = engine.run(query, naive=True)
        first_naive = time.perf_counter() - t0
        assert indexed_result.rows == naive_result.rows, (
            f"{label}: indexed and naive row sets differ"
        )

        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.run(query)
            samples.append(time.perf_counter() - t0)
        indexed_s = statistics.median(samples)

        # a naive round that already takes seconds needs no repetition
        naive_samples = [first_naive]
        if first_naive < 2.0:
            for _ in range(naive_rounds):
                t0 = time.perf_counter()
                engine.run(query, naive=True)
                naive_samples.append(time.perf_counter() - t0)
        naive_s = statistics.median(naive_samples)

        speedup = naive_s / indexed_s if indexed_s > 0 else float("inf")
        best_speedup = max(best_speedup, speedup)
        print(
            f"{label}: {1.0 / indexed_s:9.0f} q/s"
            f"   p95 {_p95(samples) * 1000:7.3f} ms"
            f"   naive {naive_s * 1000:8.3f} ms"
            f"   speedup {speedup:7.1f}x"
            f"   ({indexed_result.row_count} rows, identical: yes)"
        )

    if scale >= SPEEDUP_AT_SCALE:
        assert best_speedup >= SPEEDUP_FLOOR, (
            f"indexed executor only {best_speedup:.1f}x faster than naive "
            f"scan at scale {scale:g} (need >= {SPEEDUP_FLOOR:g}x)"
        )
        print(f"speedup gate: {best_speedup:.1f}x >= {SPEEDUP_FLOOR:g}x  OK")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        type=float,
        nargs="+",
        default=[1.0, 10.0],
        help="world scales to bench (default: 1 and 10)",
    )
    parser.add_argument("--repeats", type=int, default=200)
    parser.add_argument("--naive-rounds", type=int, default=5)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI mode: small scale, few repeats (correctness gates only)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.scales, args.repeats, args.naive_rounds = [0.15], 30, 2

    print(f"scales={args.scales} repeats={args.repeats}")
    for scale in args.scales:
        bench_scale(scale, args.repeats, args.naive_rounds)
    print("\nall correctness gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
