"""Table VII — the overall group diversity (SG / DeG / CG per ecosystem).

Paper shape: despite thousands of unique packages there are only on the
order of a hundred similarity groups; PyPI similarity groups are much
larger on average than NPM ones (mass flood campaigns); dependency
groups are rare and tiny (avg size ~2); RubyGems has no DeG at all.
"""

from __future__ import annotations

from repro.core.groups import GroupKind


def test_table7_diversity(benchmark, artifacts, show):
    table = benchmark(artifacts.table7_diversity)
    show("Table VII: the overall group diversity", table.render())

    sg_npm = table.cell("npm", GroupKind.SG)
    sg_pypi = table.cell("pypi", GroupKind.SG)
    deg_npm = table.cell("npm", GroupKind.DEG)
    deg_rubygems = table.cell("rubygems", GroupKind.DEG)
    cg_npm = table.cell("npm", GroupKind.CG)

    assert sg_npm.count > sg_pypi.count, "more SGs in NPM than PyPI"
    assert sg_pypi.average_size > sg_npm.average_size, (
        "PyPI similarity groups are much larger (paper: 137 vs 18)"
    )
    assert deg_npm.count < sg_npm.count, "dependency campaigns are rare"
    if deg_npm.count:
        assert deg_npm.average_size < 4, "DeG average size is close to 2"
    assert deg_rubygems.count == 0, "no dependency groups in RubyGems"
    assert cg_npm.count > 0
