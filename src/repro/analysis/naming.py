"""Naming-tactic census: how malicious packages choose their names.

Related work the paper builds on (Spellbound, typosquatting studies)
holds that name imitation is the most popular attack vector. The corpus
makes that measurable: every collected package name is checked against
the popular-package index, yielding per-ecosystem tactic shares
(typosquat / combosquat / unrelated) and the most-imitated targets —
the watch list a registry defender would deploy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.render import render_table
from repro.analysis.stats import percentage
from repro.collection.records import MalwareDataset
from repro.detection.typosquat import TyposquatIndex


@dataclass
class EcosystemNaming:
    """One ecosystem's naming-tactic shares."""

    ecosystem: str
    packages: int
    typo: int
    combo: int
    unrelated: int

    @property
    def imitation_share(self) -> float:
        return percentage(self.typo + self.combo, self.packages)


@dataclass
class NamingCensus:
    """Tactic shares plus the most-imitated popular packages."""

    rows: List[EcosystemNaming]
    top_targets: List[Tuple[str, str, int]]  # (ecosystem, target, hits)

    @property
    def total_packages(self) -> int:
        return sum(r.packages for r in self.rows)

    @property
    def overall_imitation_share(self) -> float:
        imitating = sum(r.typo + r.combo for r in self.rows)
        return percentage(imitating, self.total_packages)

    def render(self) -> str:
        table = render_table(
            ["Ecosystem", "Packages", "Typosquat", "Combosquat", "Unrelated",
             "Imitation %"],
            [
                [
                    r.ecosystem,
                    r.packages,
                    r.typo,
                    r.combo,
                    r.unrelated,
                    f"{r.imitation_share:.1f}%",
                ]
                for r in self.rows
            ],
            title=(
                "Naming-tactic census "
                f"(overall imitation share {self.overall_imitation_share:.1f}%)"
            ),
        )
        if self.top_targets:
            targets = render_table(
                ["Ecosystem", "Imitated package", "Malicious lookalikes"],
                [[eco, target, hits] for eco, target, hits in self.top_targets],
                title="Most-imitated popular packages",
            )
            table += "\n\n" + targets
        return table


def compute_naming_census(
    dataset: MalwareDataset,
    index: Optional[TyposquatIndex] = None,
    top: int = 10,
) -> NamingCensus:
    """Classify every unique (ecosystem, name) in the dataset."""
    index = index or TyposquatIndex()
    per_eco: Dict[str, Counter] = {}
    target_hits: Counter = Counter()
    seen: set = set()
    for entry in dataset.entries:
        key = (entry.package.ecosystem, entry.package.name)
        if key in seen:
            continue
        seen.add(key)
        counter = per_eco.setdefault(entry.package.ecosystem, Counter())
        counter["packages"] += 1
        match = index.check(entry.package.ecosystem, entry.package.name)
        if match is None:
            counter["unrelated"] += 1
        elif match.kind == "typo":
            counter["typo"] += 1
            target_hits[(entry.package.ecosystem, match.target)] += 1
        else:
            counter["combo"] += 1
            target_hits[(entry.package.ecosystem, match.target)] += 1
    rows = [
        EcosystemNaming(
            ecosystem=ecosystem,
            packages=counter["packages"],
            typo=counter["typo"],
            combo=counter["combo"],
            unrelated=counter["unrelated"],
        )
        for ecosystem, counter in sorted(
            per_eco.items(), key=lambda kv: -kv[1]["packages"]
        )
    ]
    top_targets = [
        (eco, target, hits)
        for (eco, target), hits in target_hits.most_common(top)
    ]
    return NamingCensus(rows=rows, top_targets=top_targets)
