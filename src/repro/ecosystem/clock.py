"""Simulation clock.

The world runs at day resolution: every timestamp in the simulator is an
integer number of days since the epoch (2018-01-01, matching the start of
the paper's release timeline in Fig. 2). :class:`SimClock` owns the current
day and converts between day numbers and calendar dates for presentation.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.errors import ClockError

#: Calendar date corresponding to day 0 of every simulation.
EPOCH = datetime.date(2018, 1, 1)

#: Default simulation horizon: 2018-01-01 .. 2024-12-31 (Fig. 2 covers
#: 2018-2024).
DEFAULT_HORIZON_DAYS = (datetime.date(2024, 12, 31) - EPOCH).days

#: The study window the paper's dataset was frozen at: the source feeds of
#: Table V all stop updating around Dec 2023, so the default world ends in
#: early 2024 (releases after the last feed update would never be reported
#: and would only pad the corpus with invisible packages).
STUDY_HORIZON_DAYS = (datetime.date(2024, 3, 31) - EPOCH).days


def day_to_date(day: int) -> datetime.date:
    """Convert a simulation day number to a calendar date."""
    return EPOCH + datetime.timedelta(days=int(day))


def date_to_day(date: datetime.date) -> int:
    """Convert a calendar date to a simulation day number."""
    return (date - EPOCH).days


def day_to_month(day: int) -> str:
    """Render a day number as a ``YYYY-MM`` month label (Fig. 2 bins)."""
    return day_to_date(day).strftime("%Y-%m")


def day_to_year(day: int) -> int:
    """Return the calendar year of a day number."""
    return day_to_date(day).year


@dataclass
class SimClock:
    """A monotonically advancing day counter.

    The clock never moves backwards; components that need "now" hold a
    reference to the shared clock rather than passing days around.
    """

    today: int = 0
    horizon: int = DEFAULT_HORIZON_DAYS
    _watchers: list = field(default_factory=list, repr=False)

    def advance(self, days: int = 1) -> int:
        """Move the clock forward by ``days`` and return the new day."""
        if days < 0:
            raise ClockError(f"cannot move clock backwards by {days} days")
        self.today += days
        for watcher in self._watchers:
            watcher(self.today)
        return self.today

    def on_advance(self, callback) -> None:
        """Register ``callback(day)`` to run after every advance."""
        self._watchers.append(callback)

    @property
    def date(self) -> datetime.date:
        """Calendar date of the current day."""
        return day_to_date(self.today)

    @property
    def finished(self) -> bool:
        """True once the clock has reached its horizon."""
        return self.today >= self.horizon

    def run_to_horizon(self) -> None:
        """Advance one day at a time until the horizon is reached."""
        while not self.finished:
            self.advance(1)
