"""Malware-family census over MALGRAPH (the conclusion's "200+ families").

A *family* here is a similarity group labelled with the behaviour
category the static classifier assigns to its members' code. The census
reports, per category: family (SG) count, package count and — because
the simulated world has ground truth — the classifier's accuracy against
the true behaviour categories.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.render import render_table
from repro.core.groups import GroupKind, PackageGroup
from repro.core.malgraph import MalGraph
from repro.detection.detector import Detector
from repro.detection.families import FamilyVerdict, classify_artifact
from repro.malware.behaviors import BEHAVIOR_INDEX


def true_category(behavior_key: Optional[str]) -> Optional[str]:
    """Ground-truth category of a behaviour key (None if unlabelled)."""
    if not behavior_key:
        return None
    behavior = BEHAVIOR_INDEX.get(behavior_key)
    return behavior.category if behavior else None


@dataclass
class FamilyRow:
    """One category's census row."""

    category: str
    families: int
    packages: int


@dataclass
class FamilyCensus:
    """Census plus classifier-vs-ground-truth accuracy."""

    rows: List[FamilyRow]
    total_families: int
    classified_packages: int
    correct_packages: int
    confusion: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        if not self.classified_packages:
            return 0.0
        return self.correct_packages / self.classified_packages

    def render(self) -> str:
        table = render_table(
            ["Category", "Families", "Packages"],
            [[r.category, r.families, r.packages] for r in self.rows],
            title=(
                f"Malware family census: {self.total_families} families; "
                f"classifier accuracy {self.accuracy:.1%} "
                f"({self.correct_packages}/{self.classified_packages})"
            ),
        )
        return table


def _group_category(
    group: PackageGroup, detector: Detector
) -> Tuple[str, List[Tuple[Optional[str], str]]]:
    """Majority classifier category of a group's members.

    Classifying every member of a large flood is wasteful — members of
    one SG share a code base by construction — so only distinct
    signatures are scanned.
    """
    votes: Counter = Counter()
    labelled: List[Tuple[Optional[str], str]] = []
    verdict_by_signature: Dict[str, FamilyVerdict] = {}
    for member in group.members:
        if member.artifact is None:
            continue
        signature = member.sha256()
        family = verdict_by_signature.get(signature)
        if family is None:
            family = classify_artifact(member.artifact, detector.scan(member.artifact))
            verdict_by_signature[signature] = family
        votes[family.category] += 1
        labelled.append((true_category(member.behavior_key), family.category))
    if not votes:
        return "unknown", labelled
    return votes.most_common(1)[0][0], labelled


def compute_family_census(
    malgraph: MalGraph, detector: Optional[Detector] = None
) -> FamilyCensus:
    """Label every similarity group and aggregate per category."""
    detector = detector or Detector()
    families: Counter = Counter()
    packages: Counter = Counter()
    confusion: Dict[Tuple[str, str], int] = {}
    classified = 0
    correct = 0
    groups = malgraph.groups(GroupKind.SG)
    for group in groups:
        category, labelled = _group_category(group, detector)
        families[category] += 1
        packages[category] += group.size
        for truth, predicted in labelled:
            if truth is None:
                continue
            classified += 1
            if truth == predicted:
                correct += 1
            confusion[(truth, predicted)] = confusion.get((truth, predicted), 0) + 1
    rows = [
        FamilyRow(category=category, families=count, packages=packages[category])
        for category, count in families.most_common()
    ]
    return FamilyCensus(
        rows=rows,
        total_families=len(groups),
        classified_packages=classified,
        correct_packages=correct,
        confusion=confusion,
    )
