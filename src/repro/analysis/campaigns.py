"""RQ3 attack-campaign analyses: Fig. 8 and Fig. 9.

* Fig. 8 — the release timeline of one complicated campaign (the paper
  walks through a 15-package NPM campaign of August 2023);
* Fig. 9 — CDF of the active period (t_l - t_f) for CG, DeG and SG
  groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_cdf, render_table
from repro.analysis.stats import CdfPoint, empirical_cdf, quantile_at_fraction
from repro.collection.records import DatasetEntry, MalwareDataset
from repro.core.groups import GroupKind, PackageGroup
from repro.core.malgraph import MalGraph
from repro.ecosystem.clock import day_to_date

DAYS_PER_YEAR = 365.25


@dataclass
class CampaignTimeline:
    """Fig. 8: release timeline of one example campaign."""

    group: PackageGroup

    def events(self) -> List[Tuple[str, str]]:
        out = []
        for entry in self.group.members:
            if entry.release_day is None:
                continue
            out.append(
                (day_to_date(entry.release_day).isoformat(), entry.package.name)
            )
        return out

    def render(self) -> str:
        return render_table(
            ["date", "package"],
            self.events(),
            title=(
                "Fig. 8: subsequent malicious packages of one campaign "
                f"({self.group.ecosystem}, {self.group.size} packages)"
            ),
        )


def pick_example_campaign(
    malgraph: MalGraph,
    ecosystem: str = "npm",
    min_size: int = 6,
    max_size: int = 30,
) -> Optional[CampaignTimeline]:
    """Pick a Fig. 8-like campaign: an NPM group of a dozen-odd packages
    released over ~a week."""
    candidates = [
        g
        for g in malgraph.groups(GroupKind.SG)
        if g.ecosystem == ecosystem and min_size <= g.size <= max_size
    ]
    if not candidates:
        return None
    candidates.sort(
        key=lambda g: (g.active_period_days if g.active_period_days is not None else 10**9)
    )
    # Prefer a burst spanning a few days to two weeks, like the paper's.
    for group in candidates:
        period = group.active_period_days
        if period is not None and 2 <= period <= 21:
            return CampaignTimeline(group=group)
    return CampaignTimeline(group=candidates[0])


@dataclass
class ActivePeriodCdf:
    """Fig. 9: CDF of group active periods per group kind."""

    per_kind: Dict[GroupKind, List[CdfPoint]]
    p80_years: Dict[GroupKind, float]

    def render(self) -> str:
        blocks = []
        for kind, points in self.per_kind.items():
            years_points = [
                CdfPoint(value=p.value / DAYS_PER_YEAR, fraction=p.fraction)
                for p in points
            ]
            blocks.append(
                render_cdf(
                    years_points,
                    title=f"Fig. 9 ({kind.value}): CDF of active period",
                    value_label="active period (years)",
                )
            )
        summary = ", ".join(
            f"{kind.value}: 80% <= {years:.2f}y"
            for kind, years in self.p80_years.items()
        )
        blocks.append(f"80th-percentile active periods: {summary}")
        return "\n\n".join(blocks)


def compute_active_periods(
    malgraph: MalGraph,
    kinds: Sequence[GroupKind] = (GroupKind.CG, GroupKind.DEG, GroupKind.SG),
) -> ActivePeriodCdf:
    """Active-period CDFs for the chosen group kinds (Fig. 9)."""
    per_kind: Dict[GroupKind, List[CdfPoint]] = {}
    p80: Dict[GroupKind, float] = {}
    for kind in kinds:
        periods = [
            float(g.active_period_days)
            for g in malgraph.groups(kind)
            if g.active_period_days is not None
        ]
        per_kind[kind] = empirical_cdf(periods)
        p80[kind] = (
            quantile_at_fraction(periods, 0.80) / DAYS_PER_YEAR if periods else 0.0
        )
    return ActivePeriodCdf(per_kind=per_kind, p80_years=p80)
