"""Source profiles and the attribution engine (Tables I/IV/V/VI drivers)."""

from __future__ import annotations

import pytest

from repro.ecosystem.clock import date_to_day
from repro.intel.sources import (
    CO_REPORT_AFFINITY,
    SOURCE_INDEX,
    SOURCE_PROFILES,
    AttributionEngine,
    Sector,
    SourceKind,
    co_report_rate,
    package_share_uniform,
    source_shares_package,
)
from repro.ecosystem.package import PackageId

import datetime


def test_ten_sources_of_table1():
    assert len(SOURCE_PROFILES) == 10
    assert len(SOURCE_INDEX) == 10
    sectors = [p.sector for p in SOURCE_PROFILES]
    assert sectors.count(Sector.ACADEMIA) == 3
    assert sectors.count(Sector.INDUSTRY) == 6
    assert sectors.count(Sector.INDIVIDUAL) == 1


def test_academia_aggregates_industry_detects():
    for profile in SOURCE_PROFILES:
        if profile.sector is Sector.ACADEMIA:
            assert profile.aggregates
            assert profile.detection_share == 0.0
        if profile.sector is Sector.INDUSTRY:
            assert not profile.aggregates
            assert profile.detection_share > 0.0


def test_table5_cadences_match_paper():
    assert SOURCE_INDEX["backstabber-knife"].update_interval_days == 0
    assert SOURCE_INDEX["maloss"].update_interval_days == 90
    assert SOURCE_INDEX["phylum"].update_interval_days == 30
    assert SOURCE_INDEX["socket"].update_interval_days == 30
    assert SOURCE_INDEX["snyk"].update_interval_days == 60


def test_activity_windows():
    bk = SOURCE_INDEX["backstabber-knife"]
    assert bk.active_at(date_to_day(datetime.date(2019, 6, 1)))
    assert not bk.active_at(date_to_day(datetime.date(2021, 1, 1)))  # frozen May 2020


def test_ecosystem_coverage():
    assert SOURCE_INDEX["mal-pypi"].covers("pypi")
    assert not SOURCE_INDEX["mal-pypi"].covers("npm")
    assert SOURCE_INDEX["snyk"].covers("rubygems")  # None = all


def test_artifact_sharing_pattern_matches_table6():
    """Dataset sources ship artifacts; feed sources mostly don't."""
    assert SOURCE_INDEX["mal-pypi"].share_artifacts == 1.0
    assert SOURCE_INDEX["datadog"].share_artifacts == 1.0
    assert SOURCE_INDEX["socket"].share_artifacts == 0.0
    assert SOURCE_INDEX["phylum"].share_artifacts < 0.15


def test_package_share_uniform_is_stable_and_uniform():
    package = PackageId("pypi", "requests2", "1.0")
    assert package_share_uniform(package) == package_share_uniform(package)
    values = [
        package_share_uniform(PackageId("pypi", f"pkg-{i}", "1.0"))
        for i in range(2000)
    ]
    assert 0.45 < sum(values) / len(values) < 0.55
    assert all(0.0 <= v < 1.0 for v in values)


def test_source_sharing_is_comonotone():
    """If a lower-sharing source ships a package, every higher-sharing
    source ships it too — the paper's 'missing everywhere' property."""
    ordered = sorted(SOURCE_PROFILES, key=lambda p: p.share_artifacts)
    for i in range(400):
        package = PackageId("npm", f"mono-{i}", "1.0")
        shared_flags = [source_shares_package(p, package) for p in ordered]
        # once True, stays True as share_artifacts increases
        first_true = next((j for j, f in enumerate(shared_flags) if f), None)
        if first_true is not None:
            assert all(shared_flags[first_true:])


def test_co_report_rate_symmetric_lookup():
    assert co_report_rate("tianwen", "phylum") == CO_REPORT_AFFINITY[("tianwen", "phylum")]
    assert co_report_rate("phylum", "tianwen") == CO_REPORT_AFFINITY[("tianwen", "phylum")]
    assert co_report_rate("socket", "datadog") == 0.0015  # default floor


# -- attribution over a corpus ------------------------------------------------------

def test_attribution_only_covers_detected_releases(small_corpus):
    outcome = AttributionEngine(seed=1).attribute(small_corpus)
    detected = {
        release.artifact.id
        for _c, release in small_corpus.releases()
        if release.detection_day is not None
    }
    for entry in outcome.entries:
        assert entry.package in detected


def test_attribution_entries_respect_source_constraints(small_corpus):
    outcome = AttributionEngine(seed=1).attribute(small_corpus)
    for entry in outcome.entries:
        profile = SOURCE_INDEX[entry.source]
        assert profile.covers(entry.package.ecosystem)
        assert entry.report_day <= profile.last_update


def test_attribution_primary_is_industry(small_corpus):
    outcome = AttributionEngine(seed=1).attribute(small_corpus)
    for case in outcome.cases:
        assert SOURCE_INDEX[case.primary_source].detection_share > 0
        assert case.primary_source in case.reporters


def test_attribution_deterministic(small_corpus):
    a = AttributionEngine(seed=9).attribute(small_corpus)
    b = AttributionEngine(seed=9).attribute(small_corpus)
    assert [(e.source, e.package) for e in a.entries] == [
        (e.source, e.package) for e in b.entries
    ]


def test_academia_entries_are_never_primary(small_corpus):
    outcome = AttributionEngine(seed=1).attribute(small_corpus)
    for entry in outcome.entries:
        if SOURCE_INDEX[entry.source].sector is Sector.ACADEMIA:
            assert not entry.primary


def test_entries_by_source_covers_all_profiles(small_corpus):
    outcome = AttributionEngine(seed=1).attribute(small_corpus)
    grouped = outcome.entries_by_source()
    assert set(grouped) >= {p.key for p in SOURCE_PROFILES}
    total = sum(len(v) for v in grouped.values())
    assert total == len(outcome.entries)
