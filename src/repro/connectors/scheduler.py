"""Connector scheduler: per-source polling on the simulated day clock.

Collection is a batch run today, but sources live on schedules — Table V
cadences range from daily to "never again" — and the lifecycle tests
drive connectors through appearance, drift, darkness and recovery tick
by tick. :class:`ConnectorScheduler` owns that loop: each :meth:`tick`
pulls every connector whose schedule says it is due, and runs the
staleness check on every active connector that was *not* pulled, so a
source that silently stopped publishing degrades on the clock rather
than on a failed fetch.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.connectors.base import PullResult
from repro.connectors.registry import ConnectorRegistry


class ConnectorScheduler:
    """Drives a registry of connectors along the simulated clock."""

    def __init__(self, registry: ConnectorRegistry):
        self.registry = registry
        self.ticks = 0
        self.pulls = 0

    def due(self, day: int):
        """Connectors whose schedule makes them poll on ``day``."""
        return [
            c
            for c in self.registry
            if c.schedule.due(day, c.last_pull_day)
        ]

    def tick(self, day: int, resilience=None) -> Dict[str, PullResult]:
        """One scheduler step: pull what is due, age what is not.

        Returns the pull results keyed by source, in registry order.
        """
        self.ticks += 1
        results: Dict[str, PullResult] = {}
        pulled = set()
        for connector in self.due(day):
            results[connector.key] = connector.pull(resilience, day=day)
            pulled.add(connector.key)
            self.pulls += 1
        for connector in self.registry:
            if connector.key in pulled:
                continue
            if connector.schedule.active_at(day):
                connector.health.check_staleness(day)
        return results
