"""Dataset inventory analyses: Table I, Table III and Fig. 2.

* Table I — per-source counts of available vs unavailable packages;
* Table III — security-report counts by website category;
* Fig. 2 — monthly release timeline of the collected packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_table, render_timeline
from repro.analysis.stats import bin_by
from repro.collection.records import MalwareDataset
from repro.ecosystem.clock import day_to_month
from repro.intel.reports import CATEGORIES
from repro.intel.sources import SOURCE_INDEX, SOURCE_PROFILES, Sector


@dataclass
class SourceInventoryRow:
    """One Table I row."""

    source: str
    label: str
    sector: Sector
    unavailable: int
    available: int

    @property
    def total(self) -> int:
        return self.unavailable + self.available


@dataclass
class SourceInventory:
    """Table I: source and size of the collected malicious packages."""

    rows: List[SourceInventoryRow]

    @property
    def total_available(self) -> int:
        return sum(r.available for r in self.rows)

    @property
    def total_unavailable(self) -> int:
        return sum(r.unavailable for r in self.rows)

    def render(self) -> str:
        table_rows = [
            [
                row.sector.value,
                row.label,
                row.unavailable,
                row.available,
            ]
            for row in self.rows
        ]
        table_rows.append(
            ["", "Total", self.total_unavailable, self.total_available]
        )
        return render_table(
            ["Category", "Data Source", "Unavailable #", "Available #"],
            table_rows,
            title="Table I: source and size of collected malicious packages",
        )


def compute_source_inventory(dataset: MalwareDataset) -> SourceInventory:
    """Count per-source available/unavailable packages (Table I).

    A package counts as available for a source if the pipeline holds its
    artifact (from any origin), mirroring the paper's bookkeeping.
    """
    rows: List[SourceInventoryRow] = []
    for profile in SOURCE_PROFILES:
        entries = dataset.entries_of_source(profile.key)
        available = sum(1 for e in entries if e.available)
        rows.append(
            SourceInventoryRow(
                source=profile.key,
                label=profile.label,
                sector=profile.sector,
                unavailable=len(entries) - available,
                available=available,
            )
        )
    return SourceInventory(rows=rows)


@dataclass
class ReportInventoryRow:
    """One Table III row."""

    category: str
    websites: int
    reports: int


@dataclass
class ReportInventory:
    """Table III: source of security analysis reports."""

    rows: List[ReportInventoryRow]

    @property
    def total_websites(self) -> int:
        return sum(r.websites for r in self.rows)

    @property
    def total_reports(self) -> int:
        return sum(r.reports for r in self.rows)

    def render(self) -> str:
        table_rows = [[r.category, r.websites, r.reports] for r in self.rows]
        table_rows.append(["Total", self.total_websites, self.total_reports])
        return render_table(
            ["Category", "Website #", "Report #"],
            table_rows,
            title="Table III: source of security analysis reports",
        )


def compute_report_inventory(dataset: MalwareDataset) -> ReportInventory:
    """Count crawled reports and websites per category (Table III)."""
    sites_by_category: Dict[str, set] = {c: set() for c in CATEGORIES}
    reports_by_category: Dict[str, int] = {c: 0 for c in CATEGORIES}
    for report in dataset.reports:
        category = report.category if report.category in reports_by_category else "Other"
        reports_by_category[category] += 1
        sites_by_category[category].add(report.site)
    rows = [
        ReportInventoryRow(
            category=category,
            websites=len(sites_by_category[category]),
            reports=reports_by_category[category],
        )
        for category in CATEGORIES
    ]
    return ReportInventory(rows=rows)


@dataclass
class ReleaseTimeline:
    """Fig. 2: monthly release counts of the collected packages."""

    months: List[str]
    counts: List[int]

    def render(self) -> str:
        return render_timeline(
            self.months,
            self.counts,
            title="Fig. 2: release timeline of collected malicious packages",
        )

    def yearly_totals(self) -> Dict[int, int]:
        totals: Dict[int, int] = {}
        for month, count in zip(self.months, self.counts):
            year = int(month.split("-")[0])
            totals[year] = totals.get(year, 0) + count
        return totals


def compute_release_timeline(dataset: MalwareDataset) -> ReleaseTimeline:
    """Bin entry release days by calendar month (Fig. 2).

    Columnar corpora bin the release-day column directly — one
    ``np.unique`` over the dated rows, no entry hydration.
    """
    columnar = getattr(dataset, "columnar", None)
    if columnar is not None:
        import numpy as np

        days, has_day = columnar.release_days()
        dated_days = np.asarray(days)[np.asarray(has_day, dtype=bool)]
        uniq_days, day_counts = np.unique(dated_days, return_counts=True)
        months: List[str] = []
        counts: List[int] = []
        # unique days are sorted, so months arrive in calendar order —
        # the same order bin_by's sorted "YYYY-MM" keys produce.
        for day, count in zip(uniq_days, day_counts):
            month = day_to_month(int(day))
            if months and months[-1] == month:
                counts[-1] += int(count)
            else:
                months.append(month)
                counts.append(int(count))
        return ReleaseTimeline(months=months, counts=counts)
    dated = [e for e in dataset.entries if e.release_day is not None]
    bins = bin_by(dated, key=lambda e: day_to_month(e.release_day))
    months = list(bins)
    counts = [len(bins[m]) for m in months]
    return ReleaseTimeline(months=months, counts=counts)
