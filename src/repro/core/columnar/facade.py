"""Lazy dataclass facade over a :class:`ColumnarDataset`.

Every existing consumer — the delta engine, the service, the analyses,
`MalGraph.build` — takes a :class:`MalwareDataset`. The facade keeps
that contract: it *is* a ``MalwareDataset`` whose ``entries`` /
``reports`` sequences hydrate :class:`DatasetEntry` /
:class:`CollectedReport` objects from the columnar rows only when a
specific index is touched, and memoise them so repeated access returns
the identical object (callers rely on ``is``-identity for caching and
on mutating hydrated entries via the delta engine's reference
semantics).

Hydration rules (see DESIGN.md §12):

* an index is hydrated at most once; ``entries[i] is entries[i]``;
* hydrated artifacts come pre-seeded with the pooled SHA256, so no
  consumer ever re-canonicalises code the ingest already signed;
* iterating the facade hydrates everything — vectorised paths should
  ask the underlying :attr:`columnar` table instead;
* the facade never writes back: once a caller mutates a hydrated entry
  the columnar table is stale, which is why the pipeline treats
  columnar artifacts as immutable snapshots keyed by fingerprint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
)
from repro.core.columnar.tables import ColumnarDataset
from repro.ecosystem.package import PackageId
from repro.errors import DatasetError


class _LazyRows(Sequence):
    """Sequence hydrating one row per index on first touch."""

    def __init__(self, count: int, hydrate) -> None:
        self._count = count
        self._hydrate = hydrate
        self._cache: List[Optional[object]] = [None] * count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        held = self._cache[index]
        if held is None:
            held = self._hydrate(index)
            self._cache[index] = held
        return held

    def __iter__(self):
        for i in range(self._count):
            yield self[i]


class ColumnarMalwareDataset(MalwareDataset):
    """A MalwareDataset whose rows live in columnar tables.

    Subclasses the dataclass but bypasses its ``__init__`` /
    ``__post_init__``: entries, reports and the key index are built
    lazily. Everything downstream that iterates or indexes keeps
    working; code that checks ``isinstance(x, MalwareDataset)`` sees the
    type it expects.
    """

    def __init__(self, columnar: ColumnarDataset) -> None:
        self.columnar = columnar
        self.entries = _LazyRows(columnar.n_packages, columnar.entry_at)
        self.reports = _LazyRows(columnar.n_reports, columnar.report_at)
        self._key_index: Optional[Dict[PackageId, int]] = None

    # MalwareDataset is a dataclass; keep its repr from exploding the pool
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarMalwareDataset(entries={len(self.entries)}, "
            f"reports={len(self.reports)})"
        )

    def _keys(self) -> Dict[PackageId, int]:
        if self._key_index is None:
            index: Dict[PackageId, int] = {}
            for i in range(self.columnar.n_packages):
                index[self.columnar.package_id_at(i)] = i
            if len(index) != self.columnar.n_packages:
                raise DatasetError("duplicate package keys in dataset entries")
            self._key_index = index
        return self._key_index

    # `_by_key` is a real dict field on the dataclass; expose the lazy
    # index under the same name for any attribute-level consumer.
    @property
    def _by_key(self) -> Dict[PackageId, DatasetEntry]:
        return {key: self.entries[i] for key, i in self._keys().items()}

    @_by_key.setter
    def _by_key(self, value) -> None:  # pragma: no cover - dataclass compat
        raise DatasetError("ColumnarMalwareDataset key index is derived")

    def get(self, package: PackageId) -> Optional[DatasetEntry]:
        i = self._keys().get(package)
        return None if i is None else self.entries[i]

    def package_keys(self) -> List[PackageId]:
        """Entry keys without hydrating entries (pool decodes only)."""
        return [
            self.columnar.package_id_at(i)
            for i in range(self.columnar.n_packages)
        ]

    def report_ids(self) -> List[str]:
        """Report ids without hydrating reports."""
        look = self.columnar.pool.lookup
        return [
            look(int(rid)) for rid in self.columnar.reports["report_id"]
        ]

    def to_dataset(self) -> MalwareDataset:
        """Fully hydrated plain MalwareDataset (materialises all rows)."""
        return MalwareDataset(
            entries=list(self.entries), reports=list(self.reports)
        )
