"""Similar-edge pipeline: AST -> embedding -> K-Means -> groups.

Implements Section III-A's four-step recipe: (1) parse each package's
source into an AST, (2) embed it, (3) cluster embeddings with the
growing-k K-Means, (4) link packages that share a cluster.

The paper notes the clustering can produce false positives ("two packages
use similar codes but belong to two different groups") which they remove
by manual inspection; :attr:`SimilarityConfig.min_similarity` automates
that pass — each K-Means cluster is re-split into cosine-similarity
connected components, so loosely attached members drop off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.embedding import DEFAULT_DIM, AstEmbedder
from repro.core.kmeans import GrowthTrace, KMeansResult, grow_kmeans
from repro.ecosystem.package import PackageArtifact


@dataclass(frozen=True)
class SimilarityConfig:
    """Knobs of the similarity pipeline."""

    dim: int = DEFAULT_DIM
    start_k: int = 3  # the paper's initial cluster count
    seed: int = 0
    max_k: Optional[int] = None
    duplicate_eps: float = 0.05
    #: cosine threshold of the automated false-positive pass; set to None
    #: to reproduce the raw cluster-co-membership edges.
    min_similarity: Optional[float] = 0.90
    structural_weight: float = 0.15
    lexical_weight: float = 5.0


@dataclass
class SimilarityResult:
    """Cluster assignment over the embedded artifacts."""

    groups: List[List[int]]  # member indices per final group (size >= 2)
    labels: np.ndarray  # final group id per artifact (-1 = ungrouped)
    kmeans_k: int
    trace: List[GrowthTrace] = field(default_factory=list)

    @property
    def group_count(self) -> int:
        return len(self.groups)


def cluster_artifacts(
    artifacts: Sequence[PackageArtifact],
    config: Optional[SimilarityConfig] = None,
) -> SimilarityResult:
    """Run the full similarity pipeline over a batch of artifacts."""
    config = config if config is not None else SimilarityConfig()
    n = len(artifacts)
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return SimilarityResult(groups=[], labels=labels, kmeans_k=0)
    embedder = AstEmbedder(
        dim=config.dim,
        structural_weight=config.structural_weight,
        lexical_weight=config.lexical_weight,
    )
    X = embedder.embed_many(artifacts)
    result, trace = grow_kmeans(
        X,
        start_k=config.start_k,
        max_k=config.max_k,
        seed=config.seed,
        duplicate_eps=config.duplicate_eps,
    )
    groups: List[List[int]] = []
    for members in result.clusters():
        if config.min_similarity is None:
            split = [members]
        else:
            split = _similarity_components(X, members, config.min_similarity)
        for component in split:
            if len(component) >= 2:
                groups.append(sorted(int(i) for i in component))
    groups.sort(key=lambda g: (-len(g), g[0]))
    for group_id, members in enumerate(groups):
        for member in members:
            labels[member] = group_id
    return SimilarityResult(
        groups=groups, labels=labels, kmeans_k=result.k, trace=trace
    )


def _similarity_components(
    X: np.ndarray, members: np.ndarray, threshold: float
) -> List[List[int]]:
    """Split one cluster into cosine >= threshold connected components.

    Works on *unique* vectors (duplicated code collapses to one point), so
    even the registering-flood cluster with thousands of identical
    packages costs one row.
    """
    vectors = X[members]
    unique, inverse = np.unique(vectors.round(9), axis=0, return_inverse=True)
    m = unique.shape[0]
    if m == 1:
        return [list(members)]
    sims = unique @ unique.T
    parent = list(range(m))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    rows, cols = np.nonzero(sims >= threshold)
    for i, j in zip(rows, cols):
        if i < j:
            ri, rj = find(int(i)), find(int(j))
            if ri != rj:
                parent[rj] = ri
    components: Dict[int, List[int]] = {}
    for position, member in enumerate(members):
        root = find(int(inverse[position]))
        components.setdefault(root, []).append(int(member))
    return list(components.values())
