"""The rule-engine detector.

Combines the heuristic rules with typosquat checking into a single
score; packages above ``threshold`` are flagged malicious. Mirrors the
scanners (GuardDog, Packj, registry scanning) the paper's ecosystem of
sources relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detection.rules import DEFAULT_RULES, Finding, Rule
from repro.detection.typosquat import SquatMatch, TyposquatIndex
from repro.ecosystem.package import PackageArtifact

#: Weight added when the package name squats a popular package.
TYPO_WEIGHT = 1.2
COMBO_WEIGHT = 0.6


@dataclass
class Verdict:
    """Scan outcome for one artifact."""

    package: str
    score: float
    malicious: bool
    findings: List[Finding] = field(default_factory=list)
    squat: Optional[SquatMatch] = None

    def rules_hit(self) -> List[str]:
        return sorted({f.rule for f in self.findings})

    def explain(self) -> str:
        lines = [
            f"{self.package}: score={self.score:.2f} "
            f"verdict={'MALICIOUS' if self.malicious else 'clean'}"
        ]
        if self.squat is not None:
            lines.append(
                f"  - name squats {self.squat.target!r} "
                f"({self.squat.kind}, distance {self.squat.distance})"
            )
        for finding in self.findings:
            lines.append(f"  - [{finding.rule}] {finding.path}: {finding.detail}")
        return "\n".join(lines)


@dataclass
class Detector:
    """Score-threshold rule engine."""

    rules: Sequence[Rule] = DEFAULT_RULES
    threshold: float = 2.5
    typosquat_index: TyposquatIndex = field(default_factory=TyposquatIndex)

    def scan(self, artifact: PackageArtifact) -> Verdict:
        """Scan one artifact and return the verdict."""
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.scan(artifact))
        score = sum(f.weight for f in findings)
        squat = self.typosquat_index.check(artifact.ecosystem, artifact.name)
        if squat is not None:
            score += TYPO_WEIGHT if squat.kind == "typo" else COMBO_WEIGHT
        return Verdict(
            package=str(artifact.id),
            score=score,
            malicious=score >= self.threshold,
            findings=findings,
            squat=squat,
        )

    def scan_many(self, artifacts: Sequence[PackageArtifact]) -> List[Verdict]:
        return [self.scan(artifact) for artifact in artifacts]


@dataclass
class EvaluationResult:
    """Detector quality against ground truth."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def render(self) -> str:
        return (
            f"TP={self.true_positives} FP={self.false_positives} "
            f"TN={self.true_negatives} FN={self.false_negatives} | "
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"F1={self.f1:.3f}"
        )


def evaluate(
    detector: Detector,
    malicious: Sequence[PackageArtifact],
    benign: Sequence[PackageArtifact],
) -> EvaluationResult:
    """Score the detector on a labelled corpus."""
    tp = sum(1 for a in malicious if detector.scan(a).malicious)
    fp = sum(1 for a in benign if detector.scan(a).malicious)
    return EvaluationResult(
        true_positives=tp,
        false_positives=fp,
        true_negatives=len(benign) - fp,
        false_negatives=len(malicious) - tp,
    )
