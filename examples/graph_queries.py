#!/usr/bin/env python
"""Explore MALGRAPH with the Cypher-like query language.

The paper stores MALGRAPH in Neo4j and explores it interactively; this
example runs the same kind of queries against the in-memory property
graph: who depends on whom, which NPM packages share a code base, and
how large the co-reporting cliques are.

Run::

    python examples/graph_queries.py
"""

from __future__ import annotations

from repro.core.query import GraphQuerySession
from repro.paper import PaperArtifacts
from repro.world import WorldConfig

QUERIES = [
    (
        "Malicious dependency pairs (Fig. 7 attacks)",
        "MATCH (front)-[:dependency]-(lib) "
        "RETURN front.name, lib.name ORDER BY front.name LIMIT 8",
    ),
    (
        "NPM packages similar to a 'cloud-*' package",
        "MATCH (a)-[:similar]-(b) "
        "WHERE a.name CONTAINS 'cloud' AND a.ecosystem = 'npm' "
        "RETURN a.name, b.name LIMIT 8",
    ),
    (
        "Recent releases reported by multiple relationships",
        "MATCH (a)-[:coexisting]-(b) WHERE a.release_day > 1800 "
        "RETURN a.name, b.name LIMIT 8",
    ),
    (
        "How many duplicated-code pairs exist?",
        "MATCH (a)-[:duplicated]-(b) RETURN count(*)",
    ),
    (
        "PyPI nodes collected with an artifact in hand",
        "MATCH (a) WHERE a.ecosystem = 'pypi' AND a.sha256 != '' "
        "RETURN count(*)",
    ),
]


def main() -> None:
    print("Building a reduced-scale world and its MALGRAPH ...")
    artifacts = PaperArtifacts(WorldConfig(seed=7, scale=0.4))
    session = GraphQuerySession(artifacts.malgraph.graph)
    print(f"  graph has {artifacts.malgraph.node_count} nodes\n")
    for title, query in QUERIES:
        print(f"== {title}")
        print(f"   {query}")
        print(session.run_table(query))
        print()


if __name__ == "__main__":
    main()
