"""``apply_delta``: surgical MALGRAPH updates from event batches.

The correctness anchor of the delta subsystem: for any base graph and
any valid event batch,

    ``apply_delta(base, events)``

produces a :class:`~repro.core.malgraph.MalGraph` that is byte-identical
after canonical serialisation to a cold ``MalGraph.build`` over
``apply_events_to_dataset(base.dataset, events)``.

The engine touches only what the batch touches:

* **duplicated** cliques are re-derived per affected SHA256 from a
  maintained sha -> available-packages index;
* **dependency** edges are diffed per affected package against the
  desired set (outgoing resolved via the dataset name index, incoming
  via a maintained reverse-dependents index);
* **similar** cliques come from the :class:`IncrementalSimilarStage`
  (cached embeddings + cached cosine components) and are diffed as
  member sets against the live cliques;
* **co-existing** cliques are re-derived per affected report via a
  maintained package -> mentioning-reports index.

Group memberships (DG/DeG/SG/CG) roll forward through per-edge-type
:class:`EpochUnionFind` trackers fed with the batch's removal
touchpoints and added links, advancing one epoch per batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
)
from repro.core.delta.events import (
    EventKind,
    GraphEvent,
    apply_events_to_dataset,
    event_batch_hash,
)
from repro.core.delta.similar import IncrementalSimilarStage
from repro.core.delta.unionfind import EpochUnionFind
from repro.core.edges import (
    SimilarBuildResult,
    coexisting_group_of_report,
    dependency_pairs_of,
    duplicated_groups_of,
    node_attrs,
    node_id,
)
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.ecosystem.package import PackageId
from repro.errors import GraphError

DepKey = Tuple[str, str]  # (ecosystem, name)


# ---------------------------------------------------------------------------
# Delta state: the indexes that make surgery O(touched)
# ---------------------------------------------------------------------------

class DeltaState:
    """Maintained reverse indexes over one MalGraph's current contents."""

    def __init__(
        self,
        similar_stage: IncrementalSimilarStage,
        trackers: Dict[EdgeType, EpochUnionFind],
        by_sha: Dict[str, Set[PackageId]],
        sha_clique: Dict[str, int],
        similar_cliques: Dict[FrozenSet[str], int],
        report_clique: Dict[str, int],
        dependents: Dict[DepKey, Set[PackageId]],
        mentions: Dict[PackageId, Set[str]],
        reports_by_id: Dict[str, CollectedReport],
        name_index: Dict[DepKey, List[DatasetEntry]],
        dep_pairs: Dict[PackageId, List[Tuple[DatasetEntry, DatasetEntry]]],
        coexisting_members: Dict[str, List[DatasetEntry]],
    ) -> None:
        self.similar_stage = similar_stage
        self.trackers = trackers
        self.by_sha = by_sha
        self.sha_clique = sha_clique
        self.similar_cliques = similar_cliques
        self.report_clique = report_clique
        self.dependents = dependents
        self.mentions = mentions
        self.reports_by_id = reports_by_id
        #: mirrors ``dataset.name_index()`` (same bucket order) across deltas
        self.name_index = name_index
        #: per-dependant slice of ``dependency_pairs_of`` (cold pair order)
        self.dep_pairs = dep_pairs
        #: report id -> qualifying co-existing group (current entry objects)
        self.coexisting_members = coexisting_members

    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(cls, malgraph: MalGraph, config: SimilarityConfig) -> "DeltaState":
        """Derive the reverse indexes from a cold-built (or loaded) graph."""
        graph, dataset = malgraph.graph, malgraph.dataset

        by_sha: Dict[str, Set[PackageId]] = {}
        for entry in dataset.available_entries():
            by_sha.setdefault(entry.sha256(), set()).add(entry.package)

        sha_clique: Dict[str, int] = {}
        for index, members in graph.live_cliques(EdgeType.DUPLICATED):
            sha = graph.node(next(iter(members)))["sha256"]
            sha_clique[sha] = index

        similar_cliques: Dict[FrozenSet[str], int] = {
            members: index
            for index, members in graph.live_cliques(EdgeType.SIMILAR)
        }

        # co-existing cliques are matched to reports by member set; two
        # reports with the same member set may hold either clique index
        # (the indices are interchangeable handles)
        pool: Dict[FrozenSet[str], List[int]] = {}
        for index, members in graph.live_cliques(EdgeType.COEXISTING):
            pool.setdefault(members, []).append(index)
        report_clique: Dict[str, int] = {}
        coexisting_members: Dict[str, List[DatasetEntry]] = {}
        for report in dataset.reports:
            group = coexisting_group_of_report(dataset, report)
            if group is None:
                continue
            coexisting_members[report.report_id] = group
            members = frozenset(node_id(m.package) for m in group)
            held = pool.get(members)
            if not held:
                raise GraphError(
                    "co-existing cliques do not match the dataset's reports"
                )
            report_clique[report.report_id] = held.pop()

        dependents: Dict[DepKey, Set[PackageId]] = {}
        for entry in dataset.available_entries():
            for key in _dependent_keys(entry):
                dependents.setdefault(key, set()).add(entry.package)

        mentions: Dict[PackageId, Set[str]] = {}
        reports_by_id: Dict[str, CollectedReport] = {}
        for report in dataset.reports:
            reports_by_id[report.report_id] = report
            for pid in report.packages:
                mentions.setdefault(pid, set()).add(report.report_id)

        trackers = {
            edge_type: EpochUnionFind() for edge_type in EdgeType
        }
        for edge_type, tracker in trackers.items():
            tracker.seed(graph.connected_components([edge_type]))

        dep_pairs: Dict[PackageId, List[Tuple[DatasetEntry, DatasetEntry]]] = {}
        for pair in dependency_pairs_of(dataset):
            dep_pairs.setdefault(pair[0].package, []).append(pair)

        return cls(
            similar_stage=IncrementalSimilarStage(config),
            trackers=trackers,
            by_sha=by_sha,
            sha_clique=sha_clique,
            similar_cliques=similar_cliques,
            report_clique=report_clique,
            dependents=dependents,
            mentions=mentions,
            reports_by_id=reports_by_id,
            name_index=dataset.name_index(),
            dep_pairs=dep_pairs,
            coexisting_members=coexisting_members,
        )

    def fork(self) -> "DeltaState":
        """Copy for a forked graph. The similar stage is shared: its
        caches record facts about vectors (embeddings, cosine
        components) that hold on every branch, and it only ever grows."""
        return DeltaState(
            similar_stage=self.similar_stage,
            trackers={t: uf.fork() for t, uf in self.trackers.items()},
            by_sha={sha: set(pids) for sha, pids in self.by_sha.items()},
            sha_clique=dict(self.sha_clique),
            similar_cliques=dict(self.similar_cliques),
            report_clique=dict(self.report_clique),
            dependents={key: set(pids) for key, pids in self.dependents.items()},
            mentions={pid: set(rids) for pid, rids in self.mentions.items()},
            reports_by_id=dict(self.reports_by_id),
            name_index={
                key: list(bucket) for key, bucket in self.name_index.items()
            },
            dep_pairs={
                pid: list(pairs) for pid, pairs in self.dep_pairs.items()
            },
            coexisting_members={
                rid: list(group)
                for rid, group in self.coexisting_members.items()
            },
        )


def _dependent_keys(entry: DatasetEntry) -> Set[DepKey]:
    """(ecosystem, dep-name) keys this entry contributes dependents for."""
    if not entry.available:
        return set()
    ecosystem = entry.package.ecosystem
    return {
        (ecosystem, dep) for dep in entry.artifact.metadata.dependencies
    }


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------

@dataclass
class DeltaReport:
    """What one ``apply_delta`` batch touched."""

    events: int
    epoch: int
    batch_hash: str
    seconds: float = 0.0
    packages_added: int = 0
    packages_updated: int = 0
    packages_removed: int = 0
    reports_added: int = 0
    cliques_added: Dict[str, int] = field(default_factory=dict)
    cliques_removed: Dict[str, int] = field(default_factory=dict)
    edges_added: int = 0
    edges_removed: int = 0
    nodes_touched: int = 0
    group_counts: Dict[str, int] = field(default_factory=dict)
    embed_cache_hits: int = 0
    embed_cache_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "events": self.events,
            "epoch": self.epoch,
            "batch_hash": self.batch_hash,
            "seconds": self.seconds,
            "packages_added": self.packages_added,
            "packages_updated": self.packages_updated,
            "packages_removed": self.packages_removed,
            "reports_added": self.reports_added,
            "cliques_added": dict(self.cliques_added),
            "cliques_removed": dict(self.cliques_removed),
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "nodes_touched": self.nodes_touched,
            "group_counts": dict(self.group_counts),
            "embed_cache_hits": self.embed_cache_hits,
            "embed_cache_misses": self.embed_cache_misses,
        }

    def summary(self) -> str:
        """One line for the ``repro update`` CLI."""
        cliques_added = sum(self.cliques_added.values())
        cliques_removed = sum(self.cliques_removed.values())
        groups = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.group_counts.items())
        )
        return (
            f"epoch {self.epoch}: {self.events} events "
            f"(pkgs +{self.packages_added}/~{self.packages_updated}"
            f"/-{self.packages_removed}, reports +{self.reports_added}) | "
            f"{self.nodes_touched} nodes touched | "
            f"cliques +{cliques_added}/-{cliques_removed}, "
            f"edges +{self.edges_added}/-{self.edges_removed} | "
            f"groups {groups} | {self.seconds:.2f}s"
        )


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

def apply_delta(
    base: MalGraph,
    events: Sequence[GraphEvent],
    store=None,
    in_place: bool = False,
    similarity: Optional[SimilarityConfig] = None,
) -> Tuple[MalGraph, DeltaReport]:
    """Apply one ordered event batch to ``base``.

    See :meth:`repro.core.malgraph.MalGraph.apply_delta` for the public
    contract. ``similarity`` must match the configuration the base was
    built with; it defaults to ``base.similarity_config`` (falling back
    to the stock :class:`SimilarityConfig`). The clustering
    configuration is fixed by the *first* delta application — later
    calls reuse the established incremental stage.
    """
    started = time.perf_counter()
    events = list(events)
    # validates the whole batch before anything is mutated
    evolved = apply_events_to_dataset(base.dataset, events)

    target = base if in_place else _fork(base)
    graph = target.graph
    version_before = graph.version

    config = similarity or target.similarity_config or SimilarityConfig()
    state = target._delta_state
    if state is None:
        state = DeltaState.bootstrap(target, config)
        target._delta_state = state

    report = DeltaReport(
        events=len(events),
        epoch=target.delta_epoch + 1,
        batch_hash=event_batch_hash(events),
        cliques_added={t.value: 0 for t in EdgeType},
        cliques_removed={t.value: 0 for t in EdgeType},
    )

    # -- net dataset diff (event-derived: O(batch), not O(corpus)) ----------
    base_dataset = target.dataset
    touched_pids: Dict[PackageId, None] = {}  # insertion-ordered
    vacated: Set[PackageId] = set()  # lost their base list position
    appended: Dict[PackageId, None] = {}  # net-appended, in final order
    for event in events:
        if event.kind is EventKind.REPORT_INGESTED:
            continue
        pid = event.package_id()
        touched_pids.setdefault(pid, None)
        if event.kind is EventKind.PACKAGE_ADDED:
            appended[pid] = None
        elif event.kind is EventKind.PACKAGE_REMOVED:
            if pid in appended:
                del appended[pid]
            else:
                vacated.add(pid)
    added: List[DatasetEntry] = []
    removed: List[DatasetEntry] = []
    changed: List[Tuple[DatasetEntry, DatasetEntry]] = []
    for pid in touched_pids:
        old = base_dataset.get(pid)
        new = evolved.get(pid)
        if old is None:
            if new is not None:
                added.append(new)
        elif new is None:
            removed.append(old)
        elif new is not old:
            changed.append((old, new))
    base_report_count = len(base_dataset.reports)
    new_reports = evolved.reports[base_report_count:]
    report.packages_added = len(added)
    report.packages_updated = len(changed)
    report.packages_removed = len(removed)
    report.reports_added = len(new_reports)

    target.dataset = evolved
    removed_ids = {node_id(e.package) for e in removed}

    # per-type tracker feeds: nodes incident to removed edges/cliques,
    # and the links added this batch
    touch: Dict[EdgeType, Set[str]] = {t: set() for t in EdgeType}
    links: Dict[EdgeType, List[Sequence[str]]] = {t: [] for t in EdgeType}

    # -- nodes --------------------------------------------------------------
    for entry in added:
        graph.add_node(node_id(entry.package), **node_attrs(entry))
    for _, entry in changed:
        graph.add_node(node_id(entry.package), **node_attrs(entry))

    # -- duplicated ---------------------------------------------------------
    affected_shas: Set[str] = set()
    for entry in removed:
        if entry.available:
            affected_shas.add(entry.sha256())
            state.by_sha[entry.sha256()].discard(entry.package)
    for old, new in changed:
        if old.available:
            affected_shas.add(old.sha256())
            state.by_sha[old.sha256()].discard(old.package)
        if new.available:
            affected_shas.add(new.sha256())
            state.by_sha.setdefault(new.sha256(), set()).add(new.package)
    for entry in added:
        if entry.available:
            affected_shas.add(entry.sha256())
            state.by_sha.setdefault(entry.sha256(), set()).add(entry.package)

    for sha in sorted(affected_shas):
        pids = state.by_sha.get(sha, set())
        desired = (
            frozenset(node_id(pid) for pid in pids) if len(pids) >= 2 else None
        )
        _sync_clique(
            graph,
            EdgeType.DUPLICATED,
            state.sha_clique,
            sha,
            desired,
            touch,
            links,
            report,
        )

    # -- dependency ---------------------------------------------------------
    for entry in removed:
        for key in _dependent_keys(entry):
            state.dependents.get(key, set()).discard(entry.package)
    for old, new in changed:
        for key in _dependent_keys(old):
            state.dependents.get(key, set()).discard(old.package)
        for key in _dependent_keys(new):
            state.dependents.setdefault(key, set()).add(new.package)
    for entry in added:
        for key in _dependent_keys(entry):
            state.dependents.setdefault(key, set()).add(entry.package)

    # the maintained (ecosystem, name) index mirrors evolved.name_index():
    # only touched buckets are rebuilt — survivors keep their positions
    # (refreshed to the final entry objects), packages that lost their
    # base list position drop out, net-appended packages go to the back
    # in event order, exactly like the reference dataset semantics
    for key in {(pid.ecosystem, pid.name) for pid in touched_pids}:
        rebuilt = [
            evolved.get(held.package)
            for held in state.name_index.get(key, ())
            if held.package not in vacated
        ]
        rebuilt.extend(
            evolved.get(pid)
            for pid in appended
            if (pid.ecosystem, pid.name) == key
        )
        if rebuilt:
            state.name_index[key] = rebuilt
        else:
            state.name_index.pop(key, None)
    name_index = state.name_index
    dep_affected = added + [new for _, new in changed]
    for entry in dep_affected:
        nid = node_id(entry.package)
        desired = _desired_dependency(entry, name_index, state.dependents)
        current = graph.neighbors(nid, EdgeType.DEPENDENCY)
        for other in sorted(current - desired):
            graph.remove_edge(nid, other, EdgeType.DEPENDENCY)
            touch[EdgeType.DEPENDENCY].update((nid, other))
            report.edges_removed += 1
        for other in sorted(desired - current):
            graph.add_edge(nid, other, EdgeType.DEPENDENCY)
            links[EdgeType.DEPENDENCY].append((nid, other))
            report.edges_added += 1

    # facade pair slices: recompute every dependant whose outgoing list
    # could have changed — the touched entries themselves plus every
    # dependant of a touched package's name (its targets changed object
    # or membership)
    for entry in removed:
        state.dep_pairs.pop(entry.package, None)
    recompute_pids: Set[PackageId] = {e.package for e in dep_affected}
    for pid in touched_pids:
        recompute_pids |= state.dependents.get((pid.ecosystem, pid.name), set())
    recompute_pids -= {e.package for e in removed}
    for pid in recompute_pids:
        holder = evolved.get(pid)
        pairs = _outgoing_pairs(holder, name_index) if holder is not None else []
        if pairs:
            state.dep_pairs[pid] = pairs
        else:
            state.dep_pairs.pop(pid, None)

    # -- similar ------------------------------------------------------------
    entries_sim = [
        e for e in evolved.available_entries() if e.artifact.code_files()
    ]
    clustering = state.similar_stage.recompute(entries_sim, store=store)
    report.embed_cache_hits = clustering.timings.cache_hits
    report.embed_cache_misses = clustering.timings.cache_misses
    desired_sim: Set[FrozenSet[str]] = set()
    for members in clustering.groups:
        desired_sim.add(
            frozenset(node_id(entries_sim[i].package) for i in members)
        )
    for members in [
        held for held in state.similar_cliques if held not in desired_sim
    ]:
        index = state.similar_cliques.pop(members)
        graph.remove_clique_at(EdgeType.SIMILAR, index)
        touch[EdgeType.SIMILAR].update(members)
        report.cliques_removed[EdgeType.SIMILAR.value] += 1
    for members in sorted(
        (m for m in desired_sim if m not in state.similar_cliques), key=sorted
    ):
        index = graph.add_clique(sorted(members), EdgeType.SIMILAR)
        state.similar_cliques[members] = index
        links[EdgeType.SIMILAR].append(sorted(members))
        report.cliques_added[EdgeType.SIMILAR.value] += 1
    target.similar = SimilarBuildResult(
        groups=[[entries_sim[i] for i in g] for g in clustering.groups],
        clustering=clustering,
        embedded_entries=entries_sim,
    )

    # -- co-existing --------------------------------------------------------
    # a detected package keeps its report memberships but replaces its
    # entry object; refresh it inside every group that holds it
    for old, new in changed:
        for rid in state.mentions.get(new.package, ()):
            group = state.coexisting_members.get(rid)
            if group is None:
                continue
            for i, held in enumerate(group):
                if held is old:
                    group[i] = new
                    break
    affected_rids: Set[str] = set()
    for entry in added:
        affected_rids |= state.mentions.get(entry.package, set())
    for entry in removed:
        affected_rids |= state.mentions.get(entry.package, set())
    for rid in sorted(affected_rids):
        group = coexisting_group_of_report(evolved, state.reports_by_id[rid])
        if group is not None:
            state.coexisting_members[rid] = group
        else:
            state.coexisting_members.pop(rid, None)
        desired = (
            frozenset(node_id(m.package) for m in group)
            if group is not None
            else None
        )
        _sync_clique(
            graph,
            EdgeType.COEXISTING,
            state.report_clique,
            rid,
            desired,
            touch,
            links,
            report,
        )
    for rep in new_reports:
        state.reports_by_id[rep.report_id] = rep
        for pid in rep.packages:
            state.mentions.setdefault(pid, set()).add(rep.report_id)
        group = coexisting_group_of_report(evolved, rep)
        if group is not None:
            state.coexisting_members[rep.report_id] = group
            members = frozenset(node_id(m.package) for m in group)
            index = graph.add_clique(sorted(members), EdgeType.COEXISTING)
            state.report_clique[rep.report_id] = index
            links[EdgeType.COEXISTING].append(sorted(members))
            report.cliques_added[EdgeType.COEXISTING.value] += 1

    # -- node removal (every stale clique is already gone) ------------------
    for entry in removed:
        nid = node_id(entry.package)
        dep_neighbors = graph.neighbors(nid, EdgeType.DEPENDENCY)
        if dep_neighbors:
            touch[EdgeType.DEPENDENCY].update(dep_neighbors)
            report.edges_removed += len(dep_neighbors)
        for edge_type in EdgeType:
            touch[edge_type].add(nid)
        graph.remove_node(nid)

    # -- group trackers -----------------------------------------------------
    for edge_type in EdgeType:
        state.trackers[edge_type].apply_batch(
            touch[edge_type],
            removed_ids,
            links[edge_type],
            graph.incident_groups_fn(edge_type),
        )
        report.group_counts[edge_type.value] = state.trackers[
            edge_type
        ].component_count

    # -- facade list fields (cold iteration order) --------------------------
    # duplicated groups stay one linear sweep over memoised hashes: their
    # first-occurrence order can shift arbitrarily when a group's earliest
    # member vacates its slot. The dependency and co-existing lists
    # reassemble from the surgically maintained per-owner slices.
    target.duplicated_groups = duplicated_groups_of(evolved)
    target.dependency_edges = [
        pair
        for entry in evolved.entries
        for pair in state.dep_pairs.get(entry.package, ())
    ]
    target.coexisting_groups = [
        state.coexisting_members[rep.report_id]
        for rep in evolved.reports
        if rep.report_id in state.coexisting_members
    ]
    target._group_cache = {}

    # even a batch with no structural graph change (e.g. a DETECTED event
    # altering only download counts) must invalidate version-keyed caches
    if graph.version == version_before and (
        added or removed or changed or new_reports
    ):
        graph.touch()

    target.delta_epoch += 1
    target.last_delta_at = time.time()

    refreshed = {node_id(e.package) for e in added}
    refreshed |= {node_id(e.package) for _, e in changed}
    adjacency_touched: Dict[EdgeType, FrozenSet[str]] = {}
    all_touched: Set[str] = set(removed_ids) | refreshed
    for edge_type in EdgeType:
        nodes = set(touch[edge_type])
        for link in links[edge_type]:
            nodes.update(link)
        adjacency_touched[edge_type] = frozenset(nodes)
        all_touched |= nodes
    report.nodes_touched = len(all_touched)
    _record_patch(
        graph,
        version_before,
        removed_ids,
        refreshed,
        adjacency_touched,
        groups_changed=bool(added or removed or changed or new_reports),
    )

    report.seconds = time.perf_counter() - started
    return target, report


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _fork(base: MalGraph) -> MalGraph:
    """Cheap fork: graph structurally copied, entry objects shared.

    Sharing entries is safe because every delta mutation replaces entry
    objects wholesale (events carry full replacement payloads) — nothing
    ever mutates a :class:`DatasetEntry` in place.
    """
    dup = MalGraph(
        graph=base.graph.copy(),
        dataset=MalwareDataset(
            entries=list(base.dataset.entries),
            reports=list(base.dataset.reports),
        ),
        similar=base.similar,
        duplicated_groups=list(base.duplicated_groups),
        dependency_edges=list(base.dependency_edges),
        coexisting_groups=list(base.coexisting_groups),
        similarity_config=base.similarity_config,
        delta_epoch=base.delta_epoch,
        last_delta_at=base.last_delta_at,
    )
    if base._delta_state is not None:
        dup._delta_state = base._delta_state.fork()
    return dup


def _outgoing_pairs(
    entry: DatasetEntry, name_index: Dict[DepKey, List[DatasetEntry]]
) -> List[Tuple[DatasetEntry, DatasetEntry]]:
    """One entry's (dependant, dependency) pairs in cold builder order
    (mirrors the per-entry body of
    :func:`repro.core.edges.dependency_pairs_of`)."""
    if not entry.available:
        return []
    pairs: List[Tuple[DatasetEntry, DatasetEntry]] = []
    ecosystem = entry.package.ecosystem
    for dep_name in entry.artifact.metadata.dependencies:
        for dep_target in name_index.get((ecosystem, dep_name), ()):
            if dep_target.package != entry.package:
                pairs.append((entry, dep_target))
    return pairs


def _desired_dependency(
    entry: DatasetEntry,
    name_index: Dict[DepKey, List[DatasetEntry]],
    dependents: Dict[DepKey, Set[PackageId]],
) -> Set[str]:
    """The node's desired dependency neighbourhood in the final graph."""
    desired: Set[str] = set()
    ecosystem = entry.package.ecosystem
    if entry.available:
        for dep_name in entry.artifact.metadata.dependencies:
            for dep_target in name_index.get((ecosystem, dep_name), ()):
                if dep_target.package != entry.package:
                    desired.add(node_id(dep_target.package))
    for pid in dependents.get((ecosystem, entry.package.name), ()):
        if pid != entry.package:
            desired.add(node_id(pid))
    return desired


def _sync_clique(
    graph: PropertyGraph,
    edge_type: EdgeType,
    index_map: Dict,
    key,
    desired: Optional[FrozenSet[str]],
    touch: Dict[EdgeType, Set[str]],
    links: Dict[EdgeType, List[Sequence[str]]],
    report: DeltaReport,
) -> None:
    """Make the clique registered under ``key`` match ``desired``."""
    held = index_map.get(key)
    current = graph.clique_at(edge_type, held) if held is not None else None
    if current == desired:
        return
    if held is not None:
        members = graph.remove_clique_at(edge_type, held)
        touch[edge_type].update(members)
        del index_map[key]
        report.cliques_removed[edge_type.value] += 1
    if desired is not None:
        index = graph.add_clique(sorted(desired), edge_type)
        index_map[key] = index
        links[edge_type].append(sorted(desired))
        report.cliques_added[edge_type.value] += 1


def _record_patch(
    graph: PropertyGraph,
    version_before: int,
    removed_ids: Set[str],
    refreshed: Set[str],
    adjacency_touched: Dict[EdgeType, FrozenSet[str]],
    groups_changed: bool,
) -> None:
    from repro.core.query.indexes import IndexPatch, record_index_patch

    record_index_patch(
        graph,
        IndexPatch(
            from_version=version_before,
            to_version=graph.version,
            removed_nodes=frozenset(removed_ids),
            refreshed_nodes=frozenset(refreshed),
            adjacency_touched=adjacency_touched,
            groups_changed=groups_changed,
        ),
    )
