"""Builtin connectors for the ten Table-I sources.

Each :class:`~repro.intel.sources.SourceProfile` maps onto a connector
whose schedule mirrors the profile's Table-V cadence (activity window +
update interval; interval 0 is the "Never update" row) and whose health
machine watches staleness against twice that cadence.

All three kinds share the same transport: attribution's
:class:`~repro.intel.sources.SourceEntry` records are bound to the
connector, encoded to wire dicts on fetch, and decoded back to the
*same objects* by ``normalise`` — which is what keeps a null-plan
collection run byte-identical to the pre-connector pipeline. The kinds
differ in how the pipeline drives them: open datasets pull through
:meth:`~repro.connectors.base.Connector.pull`; website and SNS sources
get their records via the crawler/tweet stages, so their connectors
exist for scheduling and health (the pipeline marks crawl outages on
them directly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.connectors.base import Connector, ConnectorSchedule, encode_wire
from repro.connectors.health import SourceHealth
from repro.connectors.registry import ConnectorRegistry
from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily at runtime (see base.py)
    from repro.intel.sources import SourceEntry, SourceProfile


def schedule_for(profile: "SourceProfile") -> ConnectorSchedule:
    """The profile's Table-V cadence as a connector schedule."""
    return ConnectorSchedule(
        interval_days=profile.update_interval_days,
        active_from=profile.active_from,
        active_until=profile.last_update,
    )


def health_for(profile: "SourceProfile") -> SourceHealth:
    """Health machine with a staleness budget of twice the cadence."""
    interval = profile.update_interval_days
    return SourceHealth(
        profile.key,
        stale_after=2 * interval if interval > 0 else None,
    )


class ProfileConnector(Connector):
    """A connector backed by a Table-I source profile.

    Records are *bound* per run (attribution decides what each source
    knows); ``fetch`` then serves them in wire form, in bound order.
    """

    def __init__(
        self,
        profile: "SourceProfile",
        records: Optional[Sequence["SourceEntry"]] = None,
    ):
        super().__init__(
            profile.key,
            schedule=schedule_for(profile),
            health=health_for(profile),
        )
        self.profile = profile
        self._records: List["SourceEntry"] = list(records or ())

    def bind(self, records: Iterable["SourceEntry"]) -> "ProfileConnector":
        """Set the records this source serves (replaces any previous)."""
        self._records = list(records)
        return self

    def extend(self, records: Iterable["SourceEntry"]) -> None:
        """Append newly-published records (mid-run source updates)."""
        self._records.extend(records)

    @property
    def bound(self) -> int:
        return len(self._records)

    def fetch(self) -> List[dict]:
        return [encode_wire(record) for record in self._records]


class OpenDatasetConnector(ProfileConnector):
    """Downloadable open dataset (Table I kind "dataset")."""


class AdvisoryWebConnector(ProfileConnector):
    """Website source: blog reports + per-package advisory database."""


class SNSFeedConnector(ProfileConnector):
    """SNS source: the tweet stream."""


# Keyed by SourceKind.value (the enum is a str subclass) so this module
# never has to import intel at load time.
_KIND_TO_CONNECTOR = {
    "dataset": OpenDatasetConnector,
    "website": AdvisoryWebConnector,
    "sns": SNSFeedConnector,
}


def builtin_connector(profile: "SourceProfile") -> ProfileConnector:
    """The builtin connector class for one profile's kind."""
    cls = _KIND_TO_CONNECTOR.get(profile.kind.value)
    if cls is None:  # pragma: no cover - enum is closed
        raise ConfigError(f"no builtin connector for kind {profile.kind!r}")
    return cls(profile)


def builtin_registry(
    profiles: Optional[Sequence["SourceProfile"]] = None,
) -> ConnectorRegistry:
    """A registry holding one builtin connector per profile (default:
    the ten Table-I sources)."""
    if profiles is None:
        from repro.intel.sources import SOURCE_PROFILES

        profiles = tuple(SOURCE_PROFILES)
    return ConnectorRegistry(builtin_connector(p) for p in profiles)
