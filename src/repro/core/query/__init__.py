"""``repro.query`` — a relationship-first graph query engine over MALGRAPH.

The paper explores MALGRAPH with Neo4j/Cypher; this package is the
offline equivalent: a compact Cypher-flavoured language with typed,
directed, variable-length edge hops::

    MATCH (a {name: 'left-pad'})-[similar*1..3]->(b)
    WHERE b.ecosystem = 'npm' AND b.campaign IS NOT NULL
    RETURN b.name, b.campaign ORDER BY b.name LIMIT 10

    CALL shortest_path('actor:wolf-spider', 'npm:evil@1.0.0', 'dependency')

Layers (each its own module):

* :mod:`~repro.core.query.lexer` / :mod:`~repro.core.query.parser` /
  :mod:`~repro.core.query.ast` — hand-rolled tokenizer and
  recursive-descent parser producing frozen, renderable AST nodes with
  caret-precise :class:`QuerySyntaxError` positions;
* :mod:`~repro.core.query.indexes` — per-graph adjacency + attribute
  indexes, built once and cached behind the graph's mutation counter;
* :mod:`~repro.core.query.executor` — selectivity planner, indexed
  chain/BFS executor, naive-scan baseline, and the built-in procedures
  ``shortest_path`` / ``neighborhood``;
* :mod:`~repro.core.query.engine` — :class:`QueryEngine`, the shared
  entry point for the Python API, ``repro query`` and ``/v1/query``.

This package superseded the original single-hop ``repro.core.query``
module; its public surface (:func:`parse`, :func:`run_query`,
:class:`GraphQuerySession`, :class:`QueryError`) is preserved below.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.graph import PropertyGraph
from repro.core.query.ast import (
    BoolExpr,
    CallQuery,
    Comparison,
    EdgePattern,
    MatchQuery,
    NodePattern,
    QueryAst,
    QueryError,
    QuerySyntaxError,
    ReturnItem,
    render,
)
from repro.core.query.engine import QueryEngine, QueryResult
from repro.core.query.executor import (
    Plan,
    execute,
    neighborhood,
    plan_match,
    shortest_path,
)
from repro.core.query.indexes import (
    INDEXED_ATTRS,
    GraphIndexes,
    build_indexes,
    graph_indexes,
)
from repro.core.query.lexer import Token, tokenize
from repro.core.query.parser import PROCEDURES, parse

__all__ = [
    "BoolExpr",
    "CallQuery",
    "Comparison",
    "EdgePattern",
    "GraphIndexes",
    "GraphQuerySession",
    "INDEXED_ATTRS",
    "MatchQuery",
    "NodePattern",
    "PROCEDURES",
    "Plan",
    "QueryAst",
    "QueryEngine",
    "QueryError",
    "QueryResult",
    "QuerySyntaxError",
    "ReturnItem",
    "Token",
    "build_indexes",
    "execute",
    "graph_indexes",
    "neighborhood",
    "parse",
    "plan_match",
    "render",
    "run_query",
    "shortest_path",
    "tokenize",
]


# ---------------------------------------------------------------------------
# Legacy surface (the original one-hop module's API)
# ---------------------------------------------------------------------------

def run_query(graph: PropertyGraph, query_text: str) -> List[Tuple]:
    """Parse and evaluate a query; returns tuples in RETURN order."""
    return QueryEngine.for_graph(graph).rows(query_text)


class GraphQuerySession:
    """Convenience wrapper binding a graph for repeated queries."""

    def __init__(self, graph: PropertyGraph):
        self.graph = graph
        self._engine = QueryEngine.for_graph(graph)

    def run(self, query_text: str) -> List[Tuple]:
        return self._engine.rows(query_text)

    def run_table(self, query_text: str) -> str:
        """Run and render the result as an aligned ASCII table."""
        return self._engine.run(query_text).render_table()
