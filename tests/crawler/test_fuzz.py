"""Fuzzing the HTML parser and extractors: arbitrary input must never
crash them — the crawler sees whatever the web serves."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crawler.extract import (
    extract_publish_day,
    extract_report,
    extract_tweet,
    infer_ecosystem,
    is_security_report,
)
from repro.crawler.html import MiniSoup

# plenty of markup-ish characters to stress the parser
markup = st.text(
    alphabet=st.sampled_from(list("<>/=\"' abcdefghij&#;\n-")), max_size=300
)
free_text = st.text(max_size=300)


@given(markup)
@settings(max_examples=150, deadline=None)
def test_minisoup_never_crashes(payload):
    soup = MiniSoup(payload)
    soup.get_text()
    soup.find("p")
    soup.find_all(class_="x")
    _ = soup.title


@given(markup)
@settings(max_examples=100, deadline=None)
def test_extract_report_never_crashes(payload):
    report = extract_report("https://u", "site", payload)
    assert isinstance(report.packages, list)
    assert isinstance(report.usable, bool)


@given(free_text)
@settings(max_examples=150, deadline=None)
def test_keyword_filter_never_crashes(payload):
    assert isinstance(is_security_report(payload), bool)


@given(free_text)
@settings(max_examples=150, deadline=None)
def test_infer_ecosystem_never_crashes(payload):
    result = infer_ecosystem(payload)
    assert result is None or isinstance(result, str)


@given(free_text)
@settings(max_examples=150, deadline=None)
def test_extract_publish_day_never_crashes(payload):
    result = extract_publish_day(payload)
    assert result is None or isinstance(result, int)


@given(free_text)
@settings(max_examples=150, deadline=None)
def test_extract_tweet_never_crashes(payload):
    result = extract_tweet(payload)
    if result is not None:
        ecosystem, name, version = result
        assert ecosystem and name and version


@given(markup)
@settings(max_examples=60, deadline=None)
def test_minisoup_text_roundtrip_is_idempotent(payload):
    """Parsing the text content again yields the same text (no markup
    survives get_text)."""
    text = MiniSoup(payload).get_text(" ")
    again = MiniSoup(text.replace("<", "").replace(">", "")).get_text(" ")
    assert isinstance(again, str)
