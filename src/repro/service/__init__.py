"""Online threat-intel enrichment service over MALGRAPH.

The paper builds MALGRAPH once and mines it offline; this package turns
a built graph into a serving layer — the workload a Unit-42-style
intelligence integration expects: hand in an indicator (package name,
name@version, SHA256) and get back a verdict plus malware-family /
campaign / actor associations and related indicators.

Layers, bottom to top:

* :mod:`repro.service.index` — :class:`IntelIndex`, O(1) inverted
  indexes over graph + dataset + groups, built in one pass, cloneable
  for copy-on-write refresh;
* :mod:`repro.service.enrich` — :class:`EnrichmentEngine`, indicator →
  structured :class:`EnrichmentResult` with typosquat-distance fallback;
* :mod:`repro.service.cache` — immutable :class:`ServiceSnapshot`
  generations read lock-free, fronted by an N-way sharded LRU with
  exact shard-summed hit/miss counters and a deduplicating
  ``batch_enrich`` path;
* :mod:`repro.service.ratelimit` — per-client token buckets behind the
  HTTP front end (429 + ``Retry-After`` backpressure);
* :mod:`repro.service.metrics` — per-endpoint request counters,
  fixed-bucket latency histograms (p50/p95/p99) and attachable gauge
  sections;
* :mod:`repro.service.feed` — :class:`FeedExporter`, the STIX-ish
  detection feed with generation-tagged cursors that stay stable across
  index refreshes (``410 Gone`` + restart hint once a cursor's
  generation is evicted);
* :mod:`repro.service.webhook` — :class:`WebhookDispatcher`, queued
  push of new detections with retry/backoff and a bounded dead-letter
  book;
* :mod:`repro.service.server` — stdlib JSON HTTP API with a request
  error boundary and validated request framing (``/v1/enrich``,
  ``/v1/enrich/batch``, ``/v1/query``, ``/v1/feed``, ``/v1/stats``,
  ``/v1/metrics``, ``/v1/healthz``);
* :mod:`repro.service.refresh` — incremental index refresh from a
  :mod:`repro.collection.merge` diff, applied to a clone and published
  as the next snapshot generation — readers never wait and never see a
  half-applied batch.
"""

from repro.service.cache import (
    DEFAULT_CACHE_SHARDS,
    EnrichmentService,
    LRUCache,
    ServiceSnapshot,
    ShardedLRUCache,
    build_service,
)
from repro.service.enrich import (
    VERDICT_MALICIOUS,
    VERDICT_SUSPICIOUS,
    VERDICT_UNKNOWN,
    EnrichmentEngine,
    EnrichmentResult,
    Indicator,
)
from repro.service.feed import (
    CursorError,
    CursorExpired,
    FeedExporter,
    decode_cursor,
    encode_cursor,
    feed_item,
)
from repro.service.index import IntelIndex, source_reliability
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.refresh import RefreshStats, refresh_index
from repro.service.server import (
    MAX_BODY_BYTES,
    MAX_QUERY_LENGTH,
    create_server,
    serve,
)
from repro.service.webhook import WebhookDispatcher, http_transport

__all__ = [
    "CursorError",
    "CursorExpired",
    "DEFAULT_CACHE_SHARDS",
    "EnrichmentEngine",
    "EnrichmentResult",
    "EnrichmentService",
    "FeedExporter",
    "Indicator",
    "IntelIndex",
    "LRUCache",
    "LatencyHistogram",
    "MAX_BODY_BYTES",
    "MAX_QUERY_LENGTH",
    "RateLimiter",
    "RefreshStats",
    "ServiceMetrics",
    "ServiceSnapshot",
    "ShardedLRUCache",
    "TokenBucket",
    "VERDICT_MALICIOUS",
    "VERDICT_SUSPICIOUS",
    "VERDICT_UNKNOWN",
    "WebhookDispatcher",
    "build_service",
    "create_server",
    "decode_cursor",
    "encode_cursor",
    "feed_item",
    "http_transport",
    "refresh_index",
    "serve",
    "source_reliability",
]
