"""MALGRAPH core: graph store, signatures, embeddings, clustering,
groups and the Cypher-like query layer."""

from repro.core.edges import (
    SimilarBuildResult,
    add_dataset_nodes,
    build_coexisting_edges,
    build_dependency_edges,
    build_duplicated_edges,
    build_similar_edges,
    node_id,
)
from repro.core.embedding import (
    AstEmbedder,
    DEFAULT_DIM,
    cosine_similarity,
    resolve_jobs,
)
from repro.core.graph import EdgeType, GraphStats, PropertyGraph
from repro.core.groups import GroupKind, PackageGroup, extract_groups, groups_by_ecosystem
from repro.core.kmeans import GrowthTrace, KMeansResult, grow_kmeans, kmeans
from repro.core.malgraph import MalGraph
from repro.core.query import (
    GraphIndexes,
    GraphQuerySession,
    QueryEngine,
    QueryError,
    QueryResult,
    QuerySyntaxError,
    build_indexes,
    graph_indexes,
    parse,
    render,
    run_query,
)
from repro.core.signatures import code_sha256, file_sha256, signature_index
from repro.core.similarity import (
    SimilarityConfig,
    SimilarityResult,
    SimilarityTimings,
    cluster_artifacts,
)

__all__ = [
    "AstEmbedder",
    "DEFAULT_DIM",
    "EdgeType",
    "GraphIndexes",
    "GraphQuerySession",
    "GraphStats",
    "GroupKind",
    "GrowthTrace",
    "KMeansResult",
    "MalGraph",
    "PackageGroup",
    "PropertyGraph",
    "QueryEngine",
    "QueryError",
    "QueryResult",
    "QuerySyntaxError",
    "SimilarBuildResult",
    "SimilarityConfig",
    "SimilarityResult",
    "SimilarityTimings",
    "add_dataset_nodes",
    "build_coexisting_edges",
    "build_dependency_edges",
    "build_duplicated_edges",
    "build_indexes",
    "build_similar_edges",
    "cluster_artifacts",
    "code_sha256",
    "cosine_similarity",
    "extract_groups",
    "file_sha256",
    "graph_indexes",
    "grow_kmeans",
    "groups_by_ecosystem",
    "kmeans",
    "node_id",
    "parse",
    "render",
    "resolve_jobs",
    "run_query",
    "signature_index",
]
