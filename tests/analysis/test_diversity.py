"""Table II graph statistics and Table VII diversity."""

from __future__ import annotations

import pytest

from repro.analysis.diversity import compute_diversity, compute_graph_stats
from repro.core.graph import EdgeType
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig

from tests.core.helpers import dataset, entry, report


@pytest.fixture(scope="module")
def mini_malgraph():
    shared_npm = "def flood():\n    return 'npm'\n"
    shared_pypi = "def flood():\n    return 'pypi'\n"
    npm = [
        entry(f"npm-{i}", ecosystem="npm", code=shared_npm, release_day=10 + i)
        for i in range(3)
    ]
    pypi = [
        entry(f"py-{i}", ecosystem="pypi", code=shared_pypi, release_day=40 + i)
        for i in range(4)
    ]
    lib = entry("lib", ecosystem="npm", code="def hide():\n    return 1\n")
    front = entry(
        "front", ecosystem="npm", code="import lib\n", dependencies=("lib",)
    )
    ds = dataset(
        npm + pypi + [lib, front],
        [report("r1", [e.package for e in pypi[:2]])],
    )
    return MalGraph.build(ds, SimilarityConfig(seed=0, max_k=3))


def test_graph_stats_table_rows(mini_malgraph):
    table = compute_graph_stats(mini_malgraph)
    assert [row.edge_type for row in table.rows] == [
        EdgeType.DUPLICATED,
        EdgeType.DEPENDENCY,
        EdgeType.SIMILAR,
        EdgeType.COEXISTING,
    ]
    out = table.render()
    assert "Table II" in out
    for label in ("DG", "DeG", "SG", "CG"):
        assert label in out


def test_graph_stats_values(mini_malgraph):
    stats = {row.edge_type: row for row in compute_graph_stats(mini_malgraph).rows}
    # 3 + 4 identical-code packages -> two duplicate cliques
    assert stats[EdgeType.DUPLICATED].nodes == 7
    assert stats[EdgeType.DUPLICATED].directed_edges == 3 * 2 + 4 * 3
    assert stats[EdgeType.DEPENDENCY].nodes == 2
    assert stats[EdgeType.DEPENDENCY].directed_edges == 2
    assert stats[EdgeType.COEXISTING].nodes == 2


def test_diversity_counts_by_ecosystem(mini_malgraph):
    table = compute_diversity(mini_malgraph)
    npm_sg = table.cell("npm", GroupKind.SG)
    pypi_sg = table.cell("pypi", GroupKind.SG)
    assert npm_sg.count >= 1
    assert pypi_sg.count >= 1
    assert pypi_sg.average_size >= 4
    deg = table.cell("npm", GroupKind.DEG)
    assert deg.count == 1
    assert deg.average_size == 2.0
    assert table.cell("rubygems", GroupKind.SG).count == 0


def test_diversity_cell_render(mini_malgraph):
    table = compute_diversity(mini_malgraph)
    assert table.cell("rubygems", GroupKind.DEG).render() == "0"
    assert "(" in table.cell("npm", GroupKind.DEG).render()
    out = table.render()
    assert "Table VII" in out
    assert "NPM" in out and "PYPI" in out and "RUBYGEMS" in out


# -- world shape (RQ2) --------------------------------------------------------------

def test_world_diversity_shape(paper):
    """Table VII shape: PyPI similarity groups run larger than NPM's;
    DeG groups are rare with size ≈ 2; RubyGems has no DeG."""
    table = paper.table7_diversity()
    npm_sg = table.cell("npm", GroupKind.SG)
    pypi_sg = table.cell("pypi", GroupKind.SG)
    assert npm_sg.count > pypi_sg.count
    assert pypi_sg.average_size > npm_sg.average_size
    deg_total = sum(
        table.cell(e, GroupKind.DEG).count for e in ("npm", "pypi", "rubygems")
    )
    sg_total = npm_sg.count + pypi_sg.count
    assert deg_total < sg_total / 3
    assert table.cell("rubygems", GroupKind.DEG).count == 0
    npm_deg = table.cell("npm", GroupKind.DEG)
    if npm_deg.count:
        assert npm_deg.average_size < 4


def test_world_table2_shape(paper):
    """Table II shape: SG is the densest subgraph; DeG nearly empty;
    every subgraph is symmetric."""
    stats = {row.edge_type: row for row in paper.table2_malgraph().rows}
    assert stats[EdgeType.SIMILAR].directed_edges == max(
        s.directed_edges for s in stats.values()
    )
    assert stats[EdgeType.DEPENDENCY].directed_edges == min(
        s.directed_edges for s in stats.values()
    )
    for row in stats.values():
        assert row.avg_out_degree == row.avg_in_degree
