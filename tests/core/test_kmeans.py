"""K-Means (Lloyd + k-means++ + the paper's growing-k loop)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.kmeans import (
    GrowthTrace,
    KMeansResult,
    _min_centroid_gap,
    grow_kmeans,
    kmeans,
)
from repro.errors import ConfigError


def _unit_rows(X: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return X / norms


def _blobs(seed: int, centers: int = 3, per: int = 30, dim: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    means = rng.normal(size=(centers, dim)) * 6
    points = np.concatenate(
        [means[i] + rng.normal(scale=0.15, size=(per, dim)) for i in range(centers)]
    )
    return _unit_rows(points)


# -- kmeans -------------------------------------------------------------------

def test_kmeans_recovers_separated_blobs():
    X = _blobs(0, centers=3)
    result = kmeans(X, 3, rng=np.random.default_rng(1))
    # each true blob maps to exactly one label
    for start in (0, 30, 60):
        assert len(set(result.labels[start:start + 30].tolist())) == 1
    assert result.k == 3
    assert len(set(result.labels.tolist())) == 3


def test_kmeans_label_shape_and_range():
    X = _blobs(2)
    result = kmeans(X, 4, rng=np.random.default_rng(0))
    assert result.labels.shape == (90,)
    assert result.labels.min() >= 0
    assert result.labels.max() < result.k


def test_kmeans_k_clamped_to_n():
    X = _unit_rows(np.random.default_rng(3).normal(size=(4, 5)))
    result = kmeans(X, 10)
    assert result.k == 4


def test_kmeans_empty_input():
    result = kmeans(np.zeros((0, 5)), 3)
    assert result.k == 0
    assert result.labels.size == 0
    assert result.inertia == 0.0


def test_kmeans_rejects_nonpositive_k():
    with pytest.raises(ConfigError):
        kmeans(np.zeros((3, 2)), 0)
    with pytest.raises(ConfigError):
        kmeans(np.zeros((3, 2)), -1)


def test_kmeans_rejects_nonpositive_max_iter():
    # regression: max_iter=0 used to skip the Lloyd loop entirely and
    # crash with UnboundLocalError on `iteration` in the epilogue
    X = _blobs(2, centers=2, per=5)
    with pytest.raises(ConfigError):
        kmeans(X, 2, max_iter=0)
    with pytest.raises(ConfigError):
        kmeans(X, 2, max_iter=-3)
    # empty input with a valid max_iter still short-circuits cleanly
    empty = kmeans(np.zeros((0, 4)), 1, max_iter=5)
    assert empty.iterations == 0


def test_kmeans_single_point():
    X = _unit_rows(np.ones((1, 4)))
    result = kmeans(X, 3)
    assert result.k == 1
    assert result.labels.tolist() == [0]
    assert result.inertia == pytest.approx(0.0, abs=1e-9)


def test_kmeans_identical_points_zero_inertia():
    X = _unit_rows(np.tile(np.arange(1.0, 5.0), (20, 1)))
    result = kmeans(X, 3, rng=np.random.default_rng(5))
    assert result.inertia == pytest.approx(0.0, abs=1e-9)


def test_kmeans_deterministic_given_rng_state():
    X = _blobs(7)
    a = kmeans(X, 3, rng=np.random.default_rng(42))
    b = kmeans(X, 3, rng=np.random.default_rng(42))
    assert np.array_equal(a.labels, b.labels)
    assert a.inertia == b.inertia


def test_clusters_partition_points():
    X = _blobs(8, centers=4)
    result = kmeans(X, 4, rng=np.random.default_rng(0))
    members = np.concatenate(result.clusters())
    assert sorted(members.tolist()) == list(range(X.shape[0]))


def test_more_clusters_never_raise_inertia_much():
    X = _blobs(9, centers=5, per=20)
    few = kmeans(X, 2, rng=np.random.default_rng(0)).inertia
    many = kmeans(X, 5, rng=np.random.default_rng(0)).inertia
    assert many <= few


# -- growing-k ------------------------------------------------------------------

def test_grow_kmeans_starts_at_paper_k():
    X = _blobs(10, centers=6, per=15)
    _result, trace = grow_kmeans(X, start_k=3, seed=0)
    assert trace[0].k == 3


def test_grow_kmeans_finds_at_least_true_structure():
    X = _blobs(11, centers=6, per=15)
    result, _trace = grow_kmeans(X, start_k=3, seed=0)
    assert result.k >= 5  # at least near the 6 true blobs


def test_grow_kmeans_stops_at_max_k():
    X = _blobs(12, centers=8, per=10)
    result, _ = grow_kmeans(X, start_k=3, max_k=4, seed=0)
    assert result.k <= 4


def test_grow_kmeans_trace_is_monotone_in_k():
    X = _blobs(13, centers=5, per=20)
    _result, trace = grow_kmeans(X, start_k=3, seed=1)
    ks = [t.k for t in trace]
    assert ks == sorted(ks)
    assert all(isinstance(t, GrowthTrace) for t in trace)


def test_grow_kmeans_duplicate_centroid_stop():
    """With 2 genuine blobs, growing k creates coinciding centroids and
    the loop stops early rather than running to n/2."""
    X = _blobs(14, centers=2, per=40)
    result, _trace = grow_kmeans(X, start_k=3, seed=0)
    assert result.k < 20


def test_grow_kmeans_empty_input():
    result, trace = grow_kmeans(np.zeros((0, 4)))
    assert result.k == 0
    assert trace == []


def test_min_centroid_gap_basics():
    assert _min_centroid_gap(np.zeros((1, 3))) == float("inf")
    centroids = np.array([[0.0, 0.0], [3.0, 4.0], [100.0, 0.0]])
    assert _min_centroid_gap(centroids) == pytest.approx(5.0)


# -- property-based ------------------------------------------------------------

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 25), st.just(6)),
    elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
)


@given(matrices, st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_kmeans_invariants_hold_for_any_input(X, k):
    X = _unit_rows(np.asarray(X))
    result = kmeans(X, k, rng=np.random.default_rng(0))
    n = X.shape[0]
    assert result.k == min(k, n)
    assert result.labels.shape == (n,)
    assert np.all(result.labels >= 0)
    assert np.all(result.labels < result.k)
    assert result.inertia >= 0.0
    assert np.all(np.isfinite(result.centroids))


def test_assignment_is_nearest_centroid_after_convergence():
    """Once Lloyd's converges (centroids stop moving), every point's label
    is its nearest centroid."""
    X = _blobs(21, centers=3)
    result = kmeans(X, 3, rng=np.random.default_rng(1), max_iter=200, tol=0.0)
    d = ((X[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
    best = d.min(axis=1)
    chosen = d[np.arange(X.shape[0]), result.labels]
    assert np.allclose(chosen, best, atol=1e-8)


# -- warm start ---------------------------------------------------------------

def _unit_blobs(seed: int, centers: int = 5, per: int = 30, dim: int = 24,
                noise: float = 0.01) -> np.ndarray:
    """Tight, well-separated blobs on the unit sphere — data whose
    cluster structure every reasonable initialisation recovers."""
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(centers):
        center = rng.normal(size=dim)
        center /= np.linalg.norm(center)
        blob = center + noise * rng.normal(size=(per, dim))
        points.append(blob / np.linalg.norm(blob, axis=1, keepdims=True))
    return np.vstack(points)


def _partition(result: KMeansResult):
    return sorted(tuple(sorted(m.tolist())) for m in result.clusters())


def test_kmeans_init_seeds_the_centroids():
    """With a full warm init at the optimum, Lloyd's converges
    immediately and keeps the seeded structure."""
    X = _unit_blobs(0, centers=3)
    cold = kmeans(X, 3, rng=np.random.default_rng(0))
    warm = kmeans(X, 3, rng=np.random.default_rng(1), init=cold.centroids)
    assert _partition(warm) == _partition(cold)
    assert warm.iterations <= cold.iterations


def test_kmeans_init_extends_missing_slots():
    """An init with fewer rows than k keeps the seeded rows and fills
    the rest with k-means++ picks."""
    X = _unit_blobs(1, centers=4)
    seed_run = kmeans(X, 2, rng=np.random.default_rng(0))
    extended = kmeans(X, 4, rng=np.random.default_rng(0), init=seed_run.centroids)
    assert extended.k == 4
    assert len(_partition(extended)) == 4


def test_warm_start_reaches_cold_groups_on_separable_data():
    """On data whose structure the cold restarts recover, the warm-started
    growth loop converges to the identical partition (the documented
    contract; on messy embeddings the two are different optimisations,
    which is why warm start is opt-in)."""
    for seed in range(10):
        X = _unit_blobs(seed)
        cold, _ = grow_kmeans(X, start_k=3, seed=seed, max_k=5)
        warm, _ = grow_kmeans(X, start_k=3, seed=seed, max_k=5, warm_start=True)
        assert _partition(cold) == _partition(warm), seed


def test_warm_start_trace_records_seeding():
    X = _unit_blobs(2)
    _, cold_trace = grow_kmeans(X, start_k=3, seed=2, max_k=5)
    _, warm_trace = grow_kmeans(X, start_k=3, seed=2, max_k=5, warm_start=True)
    assert all(t.seeded == 0 for t in cold_trace)
    # round 1 is always cold; later rounds inherit the previous round's k
    assert warm_trace[0].seeded == 0
    assert [t.seeded for t in warm_trace[1:]] == [t.k for t in warm_trace[:-1]]
    assert all(t.iterations >= 1 for t in warm_trace)


def test_warm_start_uses_fewer_total_iterations():
    """The point of warm starting: refinement rounds converge faster than
    cold restarts, at the same stopping rule."""
    totals = {"cold": 0, "warm": 0}
    for seed in range(10):
        X = _unit_blobs(seed)
        _, cold_trace = grow_kmeans(X, start_k=3, seed=seed, max_k=5)
        _, warm_trace = grow_kmeans(
            X, start_k=3, seed=seed, max_k=5, warm_start=True
        )
        totals["cold"] += sum(t.iterations for t in cold_trace)
        totals["warm"] += sum(t.iterations for t in warm_trace)
    assert totals["warm"] <= totals["cold"]
