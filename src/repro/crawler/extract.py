"""Extraction of package records from security-report pages.

Mirrors the paper's manual + scripted extraction: given a report page,
recover (ecosystem, package name, version, publish date). Extraction is
two-tier:

1. **structured** — the ``<ul class="package-list">`` of
   ``<code>name==version</code>`` items most security blogs use;
2. **regex fallback** — scan the prose for ``'name' (version x.y.z)``
   mentions when no structured list exists.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crawler.html import MiniSoup
from repro.ecosystem.clock import date_to_day
from repro.ecosystem.package import ECOSYSTEMS

#: ``name==version`` as it appears inside <code> items.
_PIN_RE = re.compile(r"^\s*(?P<name>[A-Za-z0-9_.@/-]+)==(?P<version>[0-9][\w.+-]*)\s*$")

#: Prose fallback: 'name' (version 1.2.3)
_PROSE_RE = re.compile(
    r"'(?P<name>[A-Za-z0-9_.@/-]+)'\s*\(version\s+(?P<version>[0-9][\w.+-]*)\)"
)

_DATE_RE = re.compile(r"Published\s+(?P<date>\d{4}-\d{2}-\d{2})")

#: Attribution sentence security blogs write: "... the actor <alias> based
#: on shared infrastructure ..." (also matches title mentions like
#: "<alias> publishes info-stealing packages").
_ACTOR_RE = re.compile(
    r"\bactor\s+(?P<alias>[A-Za-z][A-Za-z0-9_-]{2,24})\b"
)

_KEYWORDS = ("malicious", "malware", "supply chain", "ssc")


@dataclass
class ExtractedReport:
    """What the extractor recovered from one page."""

    url: str
    site: str
    ecosystem: Optional[str]
    publish_day: Optional[int]
    title: str
    packages: List[Tuple[str, str]] = field(default_factory=list)
    actor_alias: Optional[str] = None

    @property
    def usable(self) -> bool:
        return bool(self.packages) and self.ecosystem is not None


def is_security_report(html_text: str) -> bool:
    """Keyword pre-filter the paper applies before parsing a page."""
    lowered = html_text.lower()
    return any(keyword in lowered for keyword in _KEYWORDS)


def infer_ecosystem(page_text: str) -> Optional[str]:
    """Pick the ecosystem a report talks about from its prose.

    Reports name the registry in upper case ('the NPM registry'); the
    first ecosystem mentioned wins.
    """
    upper = page_text.upper()
    best: Tuple[int, Optional[str]] = (len(upper) + 1, None)
    for ecosystem in ECOSYSTEMS:
        idx = upper.find(ecosystem.upper() + " ")
        if idx != -1 and idx < best[0]:
            best = (idx, ecosystem)
    return best[1]


def extract_publish_day(page_text: str) -> Optional[int]:
    match = _DATE_RE.search(page_text)
    if not match:
        return None
    try:
        date = datetime.date.fromisoformat(match.group("date"))
    except ValueError:
        return None
    return date_to_day(date)


def extract_actor_alias(page_text: str) -> Optional[str]:
    """Pull the attributed actor alias out of a report's prose."""
    match = _ACTOR_RE.search(page_text)
    if match is None:
        return None
    alias = match.group("alias")
    if alias.lower() in ("group", "unknown", "behind", "named"):
        return None
    return alias


def extract_report(url: str, site: str, html_text: str) -> ExtractedReport:
    """Full extraction for one page."""
    soup = MiniSoup(html_text)
    page_text = soup.get_text(" ")
    report = ExtractedReport(
        url=url,
        site=site,
        ecosystem=infer_ecosystem(page_text),
        publish_day=extract_publish_day(page_text),
        title=soup.title,
        actor_alias=extract_actor_alias(page_text),
    )
    seen = set()
    package_list = soup.find("ul", class_="package-list")
    if package_list is not None:
        for item in package_list.find_all("li"):
            match = _PIN_RE.match(item.get_text())
            if match:
                key = (match.group("name"), match.group("version"))
                if key not in seen:
                    seen.add(key)
                    report.packages.append(key)
    if not report.packages:
        for match in _PROSE_RE.finditer(page_text):
            key = (match.group("name"), match.group("version"))
            if key not in seen:
                seen.add(key)
                report.packages.append(key)
    return report


#: SNS tweet shapes: "package {name} version {version}", "{name}@{version}",
#: and "{name} ({version})".
_TWEET_RES = (
    re.compile(
        r"package\s+(?P<name>[A-Za-z0-9_.@/-]+)\s+version\s+(?P<version>[0-9][\w.+-]*)",
        re.IGNORECASE,
    ),
    re.compile(r"(?P<name>[A-Za-z0-9_.-]+)@(?P<version>[0-9][\w.+-]*)"),
    re.compile(r"(?P<name>[A-Za-z0-9_.-]+)\s+\((?P<version>[0-9][\w.+-]*)\)"),
)

_TWEET_ECO_RE = re.compile(
    r"\b(?P<eco>" + "|".join(e.upper() for e in ECOSYSTEMS) + r")\b",
    re.IGNORECASE,  # accounts write 'PyPI', 'npm' and 'NPM' alike
)


def extract_tweet(text: str) -> Optional[Tuple[str, str, str]]:
    """Recover (ecosystem, name, version) from a tweet, or None."""
    eco_match = _TWEET_ECO_RE.search(text)
    if eco_match is None:
        return None
    for pattern in _TWEET_RES:
        match = pattern.search(text)
        if match:
            return (
                eco_match.group("eco").lower(),
                match.group("name"),
                match.group("version"),
            )
    return None
