"""End-to-end HTTP round-trips on an ephemeral port."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.service.cache import EnrichmentService
from repro.service.server import create_server, server_address


@pytest.fixture(scope="module")
def live(engine):
    """A running server over the small-world service; yields the base URL."""
    service = EnrichmentService(engine, capacity=1024)
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.load(response)


def _post(url: str, payload) -> tuple:
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


def test_healthz(live):
    base, service = live
    status, body = _get(f"{base}/v1/healthz")
    assert status == 200
    assert body == {
        "status": "ok",
        "packages": service.index.package_count,
        "epoch": service.index.epoch,
        "last_delta_at": service.index.last_delta_at,
    }
    assert body["epoch"] == 0 and body["last_delta_at"] is None


def test_enrich_roundtrip(live, small_dataset):
    base, _ = live
    e = small_dataset.entries[0]
    status, body = _get(
        f"{base}/v1/enrich?name={quote(e.package.name)}"
        f"&version={quote(e.package.version)}&ecosystem={e.package.ecosystem}"
    )
    assert status == 200
    assert body["verdict"] == "malicious"
    assert str(e.package) in body["matches"]
    assert body["sources"]


def test_enrich_by_sha(live, small_dataset):
    base, _ = live
    e = small_dataset.available_entries()[0]
    status, body = _get(f"{base}/v1/enrich?sha256={e.sha256()}")
    assert status == 200
    assert body["verdict"] == "malicious"


def test_enrich_requires_an_indicator(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/enrich?ecosystem=pypi")
    assert failure.value.code == 400


def test_unknown_path_is_404(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/nope")
    assert failure.value.code == 404


def test_batch_roundtrip(live, small_dataset):
    base, service = live
    names = [e.package.name for e in small_dataset.entries[:3]]
    indicators = [{"name": n} for n in names] + [{"name": names[0]}]
    status, body = _post(f"{base}/v1/enrich/batch", {"indicators": indicators})
    assert status == 200
    assert body["count"] == 4
    assert [r["verdict"] for r in body["results"]] == ["malicious"] * 4
    assert body["results"][0] == body["results"][3]  # deduplicated
    assert service.cache.stats()["size"] > 0


def test_batch_rejects_bad_json(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(f"{base}/v1/enrich/batch", b"this is not json")
    assert failure.value.code == 400


def test_batch_rejects_non_list(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(f"{base}/v1/enrich/batch", {"indicators": "nope"})
    assert failure.value.code == 400


def test_batch_rejects_empty_indicator(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(f"{base}/v1/enrich/batch", {"indicators": [{"ecosystem": "pypi"}]})
    assert failure.value.code == 400


def test_post_to_unknown_path_is_404(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(f"{base}/v1/enrich", {"indicators": []})
    assert failure.value.code == 404


def test_stats_endpoint_reports_traffic(live):
    base, service = live
    status, body = _get(f"{base}/v1/stats")
    assert status == 200
    assert set(body) == {"cache", "index", "generation", "collection"}
    assert body["cache"]["capacity"] == service.cache.capacity
    assert body["index"]["packages"] == service.index.package_count


# -- error boundary ----------------------------------------------------------

def _error_body(failure: urllib.error.HTTPError) -> dict:
    return json.load(failure)


def test_batch_rejects_non_dict_item_with_index(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(f"{base}/v1/enrich/batch", {"indicators": [{"name": "ok"}, "nope"]})
    assert failure.value.code == 400
    body = _error_body(failure.value)
    assert body["index"] == 1
    assert "indicator 1" in body["error"]


def test_batch_rejects_wrong_typed_fields_with_index(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(
            f"{base}/v1/enrich/batch",
            {"indicators": [{"name": 123, "version": "1.0"}]},
        )
    assert failure.value.code == 400
    body = _error_body(failure.value)
    assert body["index"] == 0
    assert "name must be a string" in body["error"]


def test_batch_oversize_is_413(live, monkeypatch):
    import repro.service.server as server_module

    monkeypatch.setattr(server_module, "MAX_BATCH_SIZE", 3)
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(
            f"{base}/v1/enrich/batch",
            {"indicators": [{"name": f"p{i}"} for i in range(4)]},
        )
    assert failure.value.code == 413
    assert "batch larger than 3" in _error_body(failure.value)["error"]


def test_handler_crash_returns_json_500_with_error_id(live, monkeypatch, capsys):
    base, service = live

    def boom(indicator):
        raise RuntimeError("index corrupted")

    monkeypatch.setattr(service, "enrich", boom)
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/enrich?name=anything")
    assert failure.value.code == 500
    body = _error_body(failure.value)
    assert body["error"] == "internal server error"
    assert len(body["error_id"]) == 12  # correlates with the server log


def test_metrics_endpoint_shape(live):
    base, _ = live
    status, body = _get(f"{base}/v1/metrics")
    assert status == 200
    assert set(body) == {"endpoints", "total_requests"}
    assert body["total_requests"] >= 1
    for row in body["endpoints"].values():
        assert set(row) == {"requests", "status", "latency", "rows_returned"}
        assert sum(row["status"].values()) == row["requests"]
        assert row["latency"]["count"] == row["requests"]


# -- request framing (Content-Length, body caps, query strings) --------------


def _raw_post_headers(base: str, path: str, headers: dict):
    """POST with hand-rolled headers (urllib always sends a valid CL)."""
    import http.client
    from urllib.parse import urlparse as _parse

    url = _parse(base)
    conn = http.client.HTTPConnection(url.hostname, url.port, timeout=10)
    try:
        conn.putrequest("POST", path)
        for name, value in headers.items():
            conn.putheader(name, value)
        conn.endheaders()
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def test_non_numeric_content_length_is_structured_400(live):
    base, _ = live
    status, body = _raw_post_headers(
        base,
        "/v1/enrich/batch",
        {"Content-Type": "application/json", "Content-Length": "banana"},
    )
    assert status == 400
    assert "Content-Length" in body["error"]
    assert "banana" in body["error"]


def test_negative_content_length_is_400_not_a_hang(live):
    """A negative length must answer promptly — never rfile.read(-n)."""
    import time as _time

    base, _ = live
    started = _time.perf_counter()
    status, body = _raw_post_headers(
        base,
        "/v1/enrich/batch",
        {"Content-Type": "application/json", "Content-Length": "-5"},
    )
    assert status == 400
    assert "negative Content-Length" in body["error"]
    assert _time.perf_counter() - started < 5.0


def test_float_content_length_is_400(live):
    base, _ = live
    status, body = _raw_post_headers(
        base,
        "/v1/enrich/batch",
        {"Content-Type": "application/json", "Content-Length": "1e9"},
    )
    assert status == 400
    assert "Content-Length" in body["error"]


def test_oversized_body_is_413_before_the_read(engine):
    """The cap applies to the declared length — no body bytes needed."""
    import time as _time

    service = EnrichmentService(engine, capacity=16)
    server = create_server(service, port=0, max_body_bytes=64)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        started = _time.perf_counter()
        # declare a huge body and never send it: the server must answer
        # 413 from the header alone instead of blocking on the read
        status, body = _raw_post_headers(
            f"http://{host}:{port}",
            "/v1/enrich/batch",
            {"Content-Type": "application/json", "Content-Length": "100000"},
        )
        assert status == 413
        assert "exceeds the 64 byte limit" in body["error"]
        assert _time.perf_counter() - started < 5.0
        # an in-cap request on a fresh connection still works
        with pytest.raises(urllib.error.HTTPError) as failure:
            _post(f"http://{host}:{port}/v1/enrich/batch", {"indicators": "x"})
        assert failure.value.code == 400
    finally:
        server.shutdown()
        server.server_close()


def test_blank_query_value_is_rejected_not_dropped(live):
    """``?name=&sha256=x`` used to silently lose ``name``."""
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/enrich?name=&sha256=ab12")
    assert failure.value.code == 400
    assert "blank value" in _error_body(failure.value)["error"]


def test_repeated_query_parameter_is_rejected(live, small_dataset):
    """``?name=a&name=b`` used to silently take the first value."""
    base, _ = live
    name = small_dataset.entries[0].package.name
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/enrich?name={quote(name)}&name=other")
    assert failure.value.code == 400
    assert "repeated query parameter" in _error_body(failure.value)["error"]


def test_unknown_query_parameter_is_rejected(live):
    base, _ = live
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/enrich?nmae=left-pad")
    assert failure.value.code == 400
    body = _error_body(failure.value)
    assert "unknown query parameter" in body["error"]
    assert "nmae" in body["error"]


def test_serve_reports_port_already_in_use(engine, capsys):
    import socket

    from repro.service.cache import EnrichmentService
    from repro.service.server import serve

    service = EnrichmentService(engine, capacity=16)
    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        assert serve(service, host="127.0.0.1", port=port) is None
    finally:
        blocker.close()
    err = capsys.readouterr().err
    assert f"127.0.0.1:{port} is already in use" in err
    assert "Traceback" not in err
