"""Report/tweet extraction: structured lists, prose fallback, dates."""

from __future__ import annotations

import pytest

from repro.crawler.extract import (
    extract_publish_day,
    extract_report,
    extract_tweet,
    infer_ecosystem,
    is_security_report,
)
from repro.crawler.html import render_page, tag, text
from repro.ecosystem.clock import date_to_day

import datetime


def _report_page(
    title: str = "Malicious packages found",
    prose: str = "We found malicious packages in the NPM registry. Published 2023-08-12.",
    pins: tuple = ("cloud-layout==1.0.2", "urs-remote==0.3.1"),
) -> str:
    items = [tag("li", tag("code", text(pin))) for pin in pins]
    return render_page(
        title,
        [
            tag("p", text(prose)),
            tag("ul", items, class_="package-list"),
        ],
    )


def test_keyword_filter():
    assert is_security_report("<p>a malicious package</p>")
    assert is_security_report("<p>New MALWARE wave</p>")
    assert is_security_report("<p>supply chain attack</p>")
    assert not is_security_report("<p>our quarterly results</p>")


def test_infer_ecosystem_first_mention_wins():
    assert infer_ecosystem("the NPM registry and later PyPI too") == "npm"
    assert infer_ecosystem("packages on PyPI then NPM ") == "pypi"
    assert infer_ecosystem("nothing relevant here") is None


def test_extract_publish_day():
    day = extract_publish_day("Published 2023-08-12.")
    assert day == date_to_day(datetime.date(2023, 8, 12))
    assert extract_publish_day("no date") is None
    assert extract_publish_day("Published 2023-13-45.") is None


def test_extract_report_structured_list():
    report = extract_report("https://s/u", "s", _report_page())
    assert report.usable
    assert report.ecosystem == "npm"
    assert report.packages == [
        ("cloud-layout", "1.0.2"),
        ("urs-remote", "0.3.1"),
    ]
    assert report.title == "Malicious packages found"
    assert report.publish_day is not None


def test_extract_report_deduplicates_pins():
    page = _report_page(pins=("a==1.0", "a==1.0", "b==2.0"))
    report = extract_report("u", "s", page)
    assert report.packages == [("a", "1.0"), ("b", "2.0")]


def test_extract_report_prose_fallback():
    page = render_page(
        "Report",
        [
            tag(
                "p",
                text(
                    "A malicious package 'evil-kit' (version 1.2.3) hit "
                    "the PyPI registry."
                ),
            )
        ],
    )
    report = extract_report("u", "s", page)
    assert report.packages == [("evil-kit", "1.2.3")]
    assert report.ecosystem == "pypi"


def test_extract_report_without_packages_is_unusable():
    page = render_page("Report", [tag("p", text("malware trends in NPM "))])
    report = extract_report("u", "s", page)
    assert not report.usable
    assert report.packages == []


def test_extract_report_without_ecosystem_is_unusable():
    page = _report_page(prose="malicious code somewhere. Published 2023-01-01.")
    report = extract_report("u", "s", page)
    assert report.packages
    assert report.ecosystem is None
    assert not report.usable


def test_extract_report_ignores_malformed_pins():
    page = _report_page(pins=("ok==1.0", "not a pin", "==2.0", "name=="))
    report = extract_report("u", "s", page)
    assert report.packages == [("ok", "1.0")]


# -- tweets ------------------------------------------------------------------

@pytest.mark.parametrize(
    "tweet, expected",
    [
        (
            "Heads up: malicious package evil-kit version 1.2.3 on PyPI #malware",
            ("pypi", "evil-kit", "1.2.3"),
        ),
        ("NPM alert: left-pad2@9.9.9 is malware", ("npm", "left-pad2", "9.9.9")),
        ("RUBYGEMS: bootstrap-sass (3.2.0.3) backdoored", ("rubygems", "bootstrap-sass", "3.2.0.3")),
    ],
)
def test_extract_tweet_shapes(tweet, expected):
    assert extract_tweet(tweet) == expected


def test_extract_tweet_requires_ecosystem():
    assert extract_tweet("malicious package foo version 1.0") is None


def test_extract_tweet_requires_package_shape():
    assert extract_tweet("big scary malware on NPM today") is None
