"""A small Cypher-like query language over :class:`PropertyGraph`.

The paper stores MALGRAPH in Neo4j and explores it with graph queries;
offline, this module provides the slice of Cypher those explorations
need::

    MATCH (a)-[:similar]-(b)
    WHERE a.ecosystem = 'npm' AND a.name CONTAINS 'cloud'
    RETURN a.name, b.name
    ORDER BY a.name LIMIT 10

Supported surface:

* ``MATCH (a)`` or ``MATCH (a)-[:TYPE]-(b)`` — one node, or one
  undirected typed edge (types: ``duplicated``, ``dependency``,
  ``similar``, ``coexisting``, case-insensitive);
* ``WHERE`` — comparisons ``var.attr OP literal`` with ``=``, ``!=``,
  ``<``, ``<=``, ``>``, ``>=``, ``CONTAINS``, plus
  ``var.attr IS [NOT] NULL`` and a ``NOT`` prefix on any comparison;
  combined with ``AND`` / ``OR`` (``AND`` binds tighter);
* ``RETURN`` — ``var`` (the node id), ``var.attr``, or ``COUNT(*)``;
* ``ORDER BY item [DESC]`` and ``LIMIT n``.

Results are lists of tuples in ``RETURN`` order. The evaluator filters
the first variable before expanding neighbours, so selective ``WHERE``
clauses keep edge queries cheap.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.graph import EdgeType, PropertyGraph
from repro.errors import ReproError


class QueryError(ReproError):
    """Raised for malformed or unsupported queries."""


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),\[\]:.\-*])
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "match", "where", "return", "order", "by", "limit", "and", "or",
    "desc", "asc", "contains", "count", "not", "is", "null",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "op" | "punct" | "word"
    value: str


def _lex(query: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise QueryError(f"unexpected character {query[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind=kind, value=match.group()))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """``[NOT] var.attr OP literal`` or ``var.attr IS [NOT] NULL``."""

    var: str
    attr: str
    op: str
    literal: Union[str, float, int, None] = None
    negated: bool = False

    def evaluate(self, attrs: Dict[str, Any]) -> bool:
        return self._base(attrs) != self.negated

    def _base(self, attrs: Dict[str, Any]) -> bool:
        value = attrs.get(self.attr)
        if self.op == "is-null":
            return value is None
        if self.op == "contains":
            return isinstance(value, str) and str(self.literal) in value
        if value is None:
            return False
        if self.op == "=":
            return value == self.literal
        if self.op == "!=":
            return value != self.literal
        try:
            if self.op == "<":
                return value < self.literal
            if self.op == "<=":
                return value <= self.literal
            if self.op == ">":
                return value > self.literal
            if self.op == ">=":
                return value >= self.literal
        except TypeError:
            return False
        raise QueryError(f"unknown operator {self.op!r}")  # pragma: no cover


@dataclass(frozen=True)
class BoolExpr:
    """AND/OR tree over comparisons."""

    op: str  # "and" | "or"
    parts: Tuple[Union["BoolExpr", Comparison], ...]

    def evaluate(self, bindings: Dict[str, Dict[str, Any]]) -> bool:
        results = (
            part.evaluate(bindings.get(part.var, {}))
            if isinstance(part, Comparison)
            else part.evaluate(bindings)
            for part in self.parts
        )
        return all(results) if self.op == "and" else any(results)

    def vars_used(self) -> set:
        used = set()
        for part in self.parts:
            if isinstance(part, Comparison):
                used.add(part.var)
            else:
                used |= part.vars_used()
        return used


@dataclass(frozen=True)
class ReturnItem:
    """One projection: a variable, an attribute, or COUNT(*)."""

    var: Optional[str]
    attr: Optional[str]
    is_count: bool = False

    @property
    def label(self) -> str:
        if self.is_count:
            return "count(*)"
        return f"{self.var}.{self.attr}" if self.attr else self.var


@dataclass
class Query:
    """A parsed query, ready to run against a graph."""

    variables: List[str]
    edge_type: Optional[EdgeType]
    where: Optional[BoolExpr]
    returns: List[ReturnItem]
    order_by: Optional[ReturnItem] = None
    order_desc: bool = False
    limit: Optional[int] = None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token stream helpers -------------------------------------------------
    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.pos += 1
        return token

    def expect(self, value: str) -> _Token:
        token = self.next()
        if token.value.lower() != value.lower():
            raise QueryError(f"expected {value!r}, got {token.value!r}")
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == "word"
            and token.value.lower() == word
        )

    # -- grammar ------------------------------------------------------------
    def parse(self) -> Query:
        self.expect("match")
        variables, edge_type = self._pattern()
        where = None
        if self.at_keyword("where"):
            self.next()
            where = self._bool_expr()
        self.expect("return")
        returns = self._return_items()
        order_by, order_desc = None, False
        if self.at_keyword("order"):
            self.next()
            self.expect("by")
            order_by = self._return_item()
            if self.at_keyword("desc"):
                self.next()
                order_desc = True
            elif self.at_keyword("asc"):
                self.next()
        limit = None
        if self.at_keyword("limit"):
            self.next()
            token = self.next()
            if token.kind != "number" or "." in token.value:
                raise QueryError(f"LIMIT needs an integer, got {token.value!r}")
            limit = int(token.value)
        if self.peek() is not None:
            raise QueryError(f"trailing input at {self.peek().value!r}")
        query = Query(
            variables=variables,
            edge_type=edge_type,
            where=where,
            returns=returns,
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
        )
        self._check_vars(query)
        return query

    def _pattern(self) -> Tuple[List[str], Optional[EdgeType]]:
        first = self._node()
        if self.peek() is not None and self.peek().value == "-":
            self.expect("-")
            self.expect("[")
            self.expect(":")
            type_token = self.next()
            try:
                edge_type = EdgeType(type_token.value.lower())
            except ValueError:
                raise QueryError(
                    f"unknown edge type {type_token.value!r}; expected one of "
                    f"{[t.value for t in EdgeType]}"
                ) from None
            self.expect("]")
            self.expect("-")
            second = self._node()
            if second == first:
                raise QueryError("edge pattern needs two distinct variables")
            return [first, second], edge_type
        return [first], None

    def _node(self) -> str:
        self.expect("(")
        token = self.next()
        if token.kind != "word" or token.value.lower() in _KEYWORDS:
            raise QueryError(f"bad variable name {token.value!r}")
        self.expect(")")
        return token.value

    def _bool_expr(self) -> BoolExpr:
        parts: List[Union[BoolExpr, Comparison]] = [self._and_expr()]
        while self.at_keyword("or"):
            self.next()
            parts.append(self._and_expr())
        if len(parts) == 1 and isinstance(parts[0], BoolExpr):
            return parts[0]
        return BoolExpr(op="or", parts=tuple(parts))

    def _and_expr(self) -> BoolExpr:
        parts: List[Union[BoolExpr, Comparison]] = [self._comparison()]
        while self.at_keyword("and"):
            self.next()
            parts.append(self._comparison())
        return BoolExpr(op="and", parts=tuple(parts))

    def _comparison(self) -> Comparison:
        negated = False
        if self.at_keyword("not"):
            self.next()
            negated = True
        var = self.next()
        if var.kind != "word":
            raise QueryError(f"expected variable, got {var.value!r}")
        self.expect(".")
        attr = self.next()
        if attr.kind != "word":
            raise QueryError(f"expected attribute, got {attr.value!r}")
        op_token = self.next()
        if op_token.kind == "word" and op_token.value.lower() == "is":
            if self.at_keyword("not"):
                self.next()
                negated = not negated
            self.expect("null")
            return Comparison(
                var=var.value, attr=attr.value, op="is-null", negated=negated
            )
        if op_token.kind == "word" and op_token.value.lower() == "contains":
            op = "contains"
        elif op_token.kind == "op":
            op = op_token.value
        else:
            raise QueryError(f"expected comparison operator, got {op_token.value!r}")
        literal = self._literal()
        return Comparison(
            var=var.value, attr=attr.value, op=op, literal=literal, negated=negated
        )

    def _literal(self) -> Union[str, int, float]:
        token = self.next()
        if token.kind == "string":
            return token.value[1:-1].replace("\\'", "'")
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        raise QueryError(f"expected literal, got {token.value!r}")

    def _return_items(self) -> List[ReturnItem]:
        items = [self._return_item()]
        while self.peek() is not None and self.peek().value == ",":
            self.next()
            items.append(self._return_item())
        return items

    def _return_item(self) -> ReturnItem:
        token = self.next()
        if token.kind == "word" and token.value.lower() == "count":
            self.expect("(")
            self.expect("*")
            self.expect(")")
            return ReturnItem(var=None, attr=None, is_count=True)
        if token.kind != "word":
            raise QueryError(f"bad return item {token.value!r}")
        var = token.value
        if self.peek() is not None and self.peek().value == ".":
            self.next()
            attr = self.next()
            if attr.kind != "word":
                raise QueryError(f"bad attribute {attr.value!r}")
            return ReturnItem(var=var, attr=attr.value)
        return ReturnItem(var=var, attr=None)

    def _check_vars(self, query: Query) -> None:
        known = set(query.variables)
        used = query.where.vars_used() if query.where else set()
        for item in query.returns + ([query.order_by] if query.order_by else []):
            if item is not None and not item.is_count:
                used.add(item.var)
        unknown = used - known
        if unknown:
            raise QueryError(
                f"unbound variable(s) {sorted(unknown)}; bound: {sorted(known)}"
            )


def parse(query_text: str) -> Query:
    """Parse a query string into a :class:`Query`."""
    return _Parser(_lex(query_text)).parse()


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------

def _node_predicate(
    where: Optional[BoolExpr], var: str
) -> Callable[[Dict[str, Any]], bool]:
    """The sub-filter of WHERE that only mentions ``var`` (for pruning)."""
    if where is None:
        return lambda attrs: True
    comparisons: List[Comparison] = []

    def collect(expr: Union[BoolExpr, Comparison]) -> bool:
        """Gather var-only AND-conjuncts; any OR disables pruning."""
        if isinstance(expr, Comparison):
            if expr.var == var:
                comparisons.append(expr)
            return True
        if expr.op == "or":
            return False
        return all(collect(part) for part in expr.parts)

    if not collect(where):
        return lambda attrs: True
    return lambda attrs: all(c.evaluate(attrs) for c in comparisons)


def run_query(graph: PropertyGraph, query_text: str) -> List[Tuple]:
    """Parse and evaluate a query; returns tuples in RETURN order."""
    query = parse(query_text)
    bindings_list: List[Dict[str, Dict[str, Any]]] = []
    if query.edge_type is None:
        var = query.variables[0]
        prune = _node_predicate(query.where, var)
        for node_id in graph.nodes():
            attrs = {"id": node_id, **graph.node(node_id)}
            if not prune(attrs):
                continue
            bindings = {var: attrs}
            if query.where is None or query.where.evaluate(bindings):
                bindings_list.append(bindings)
    else:
        var_a, var_b = query.variables
        prune_a = _node_predicate(query.where, var_a)
        for node_id in sorted(graph.touched_nodes(query.edge_type)):
            attrs_a = {"id": node_id, **graph.node(node_id)}
            if not prune_a(attrs_a):
                continue
            for other in sorted(graph.neighbors(node_id, query.edge_type)):
                attrs_b = {"id": other, **graph.node(other)}
                bindings = {var_a: attrs_a, var_b: attrs_b}
                if query.where is None or query.where.evaluate(bindings):
                    bindings_list.append(bindings)

    if any(item.is_count for item in query.returns):
        if len(query.returns) != 1:
            raise QueryError("COUNT(*) cannot be mixed with other projections")
        return [(len(bindings_list),)]

    def project(bindings: Dict[str, Dict[str, Any]]) -> Tuple:
        row = []
        for item in query.returns:
            attrs = bindings[item.var]
            row.append(attrs["id"] if item.attr is None else attrs.get(item.attr))
        return tuple(row)

    rows = [project(b) for b in bindings_list]
    if query.order_by is not None:
        item = query.order_by
        key = lambda b: (
            b[item.var]["id"] if item.attr is None else b[item.var].get(item.attr)
        )
        # index tiebreak: equal keys must never fall through to comparing
        # row tuples (mixed None/str rows are unorderable), and ties stay
        # stable in match order
        decorated = sorted(
            (
                (key(b), idx, row)
                for idx, (b, row) in enumerate(zip(bindings_list, rows))
            ),
            key=lambda triple: ((triple[0] is None, triple[0]), triple[1]),
            reverse=query.order_desc,
        )
        rows = [row for _k, _idx, row in decorated]
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


class GraphQuerySession:
    """Convenience wrapper binding a graph for repeated queries."""

    def __init__(self, graph: PropertyGraph):
        self.graph = graph

    def run(self, query_text: str) -> List[Tuple]:
        return run_query(self.graph, query_text)

    def run_table(self, query_text: str) -> str:
        """Run and render the result as an aligned ASCII table."""
        from repro.analysis.render import render_table

        query = parse(query_text)
        rows = self.run(query_text)
        headers = [item.label for item in query.returns]
        return render_table(headers, [[str(c) for c in row] for row in rows])
