"""Verdict semantics: known -> malicious, near-miss -> suspicious,
clean -> unknown; association aggregation over a hand-built graph."""

from __future__ import annotations

import pytest

from repro.core.malgraph import MalGraph
from repro.service.enrich import (
    VERDICT_MALICIOUS,
    VERDICT_SUSPICIOUS,
    VERDICT_UNKNOWN,
    EnrichmentEngine,
    Indicator,
)
from repro.service.index import IntelIndex

from tests.core.helpers import dataset, entry, report


@pytest.fixture(scope="module")
def mini_engine():
    """Four packages with every association kind present.

    twin-a/twin-b share code (DG + SG family); front depends on lib
    (DeG campaign); one report covers lib+front and names an actor
    (CG campaign + alias).
    """
    shared = "def payload():\n    return 'steal'\n"
    lib = entry("lib", code="def hide():\n    return 0\n")
    front = entry("front", code="import lib\n", dependencies=("lib",))
    twin_a = entry("twin-a", code=shared)
    twin_b = entry("twin-b", code=shared)
    covering = report("r1", [lib.package, front.package])
    covering.actor_alias = "Lolip0p"
    ds = dataset([lib, front, twin_a, twin_b], [covering])
    return EnrichmentEngine(IntelIndex.build(MalGraph.build(ds)))


def test_known_name_is_malicious(mini_engine):
    result = mini_engine.lookup(name="twin-a")
    assert result.verdict == VERDICT_MALICIOUS
    assert result.matches == ["pypi:twin-a@1.0"]
    assert result.families  # DG and/or SG membership
    assert "pypi:twin-b@1.0" in result.related


def test_known_sha256_is_malicious(mini_engine):
    sha = mini_engine.index.dataset.get(
        mini_engine.index.dataset.entries[0].package
    ).sha256()
    result = mini_engine.lookup(sha256=sha)
    assert result.verdict == VERDICT_MALICIOUS


def test_campaign_and_actor_associations(mini_engine):
    result = mini_engine.lookup(name="lib")
    assert result.verdict == VERDICT_MALICIOUS
    assert result.campaigns  # DeG (dependency) and CG (report) groups
    assert result.actors == ["Lolip0p"]
    assert "pypi:front@1.0" in result.related


def test_wrong_ecosystem_does_not_match(mini_engine):
    result = mini_engine.lookup(name="twin-a", ecosystem="npm")
    assert result.verdict != VERDICT_MALICIOUS


def test_near_known_name_is_suspicious(mini_engine):
    result = mini_engine.lookup(name="twin-aa")
    assert result.verdict == VERDICT_SUSPICIOUS
    assert result.squat["kind"] == "near-known"
    assert result.squat["target"] == "twin-a"
    assert result.squat["distance"] == 1
    assert "pypi:twin-a@1.0" in result.related


def test_popular_typosquat_is_suspicious(mini_engine):
    result = mini_engine.lookup(name="reqursts", ecosystem="pypi")
    assert result.verdict == VERDICT_SUSPICIOUS
    assert result.squat["target"] == "requests"
    assert result.squat["kind"] == "typo"


def test_clean_name_is_unknown(mini_engine):
    result = mini_engine.lookup(name="totally-unrelated-zzz")
    assert result.verdict == VERDICT_UNKNOWN
    assert not result.matches and not result.related
    assert result.squat is None


def test_empty_indicator_is_unknown(mini_engine):
    assert mini_engine.enrich(Indicator()).verdict == VERDICT_UNKNOWN


def test_seen_window_spans_release_and_reports(mini_engine):
    result = mini_engine.lookup(name="lib")
    assert result.first_seen_day == 10  # release_day of helpers.entry
    assert result.last_seen_day >= result.first_seen_day


def test_confidence_comes_from_sources(mini_engine):
    flagged = mini_engine.lookup(name="lib")
    assert flagged.sources and flagged.confidence == flagged.sources[0]["reliability"]
    assert mini_engine.lookup(name="zzz-unseen").confidence == 0.0


def test_result_round_trips_to_json_dict(mini_engine):
    import json

    payload = mini_engine.lookup(name="twin-a").to_dict()
    decoded = json.loads(json.dumps(payload))
    assert decoded["verdict"] == VERDICT_MALICIOUS
    assert set(decoded) == {
        "indicator", "verdict", "confidence", "matches", "families",
        "campaigns", "actors", "related", "sources",
        "first_seen_day", "last_seen_day", "squat",
    }


# -- against the simulated world ------------------------------------------

def test_world_packages_enrich_as_malicious(engine, small_dataset):
    for e in small_dataset.entries[:25]:
        result = engine.lookup(
            name=e.package.name,
            version=e.package.version,
            ecosystem=e.package.ecosystem,
        )
        assert result.verdict == VERDICT_MALICIOUS
        assert str(e.package) in result.matches
        assert result.sources


def test_world_sha_lookup_matches_name_lookup(engine, small_dataset):
    e = small_dataset.available_entries()[0]
    by_sha = engine.lookup(sha256=e.sha256())
    assert str(e.package) in by_sha.matches


# -- health-weighted confidence ---------------------------------------------

def test_source_health_scales_reliability_and_confidence():
    """A verdict backed only by a dark feed is worth a quarter of the
    same verdict from a healthy one."""
    from repro.connectors import HEALTH_RELIABILITY_FACTOR

    ds = dataset([entry("lib")])  # single claim from snyk
    index = IntelIndex.build(MalGraph.build(ds))
    healthy = EnrichmentEngine(index).lookup(name="lib")
    base = healthy.sources[0]["reliability"]
    assert "health" not in healthy.sources[0]  # no health, no annotation

    dark = EnrichmentEngine(
        index,
        source_health={"snyk": {"state": "dark", "reliability_factor": 0.25}},
    ).lookup(name="lib")
    (row,) = dark.sources
    assert row["health"] == "dark"
    assert row["reliability"] == round(base * 0.25, 4)
    assert dark.confidence == row["reliability"]
    assert dark.confidence < healthy.confidence
    assert HEALTH_RELIABILITY_FACTOR["dark"] == 0.25


def test_source_health_resorts_rows_by_weighted_reliability():
    """Degrading the best source hands the top row (and confidence) to
    the runner-up: rows re-sort on the *weighted* reliability."""
    ds = dataset([entry("dual", sources=("snyk", "datadog"))])
    engine = EnrichmentEngine(IntelIndex.build(MalGraph.build(ds)))
    rows = engine.lookup(name="dual").sources
    assert [r["key"] for r in rows] == ["datadog", "snyk"]  # 0.95 > 0.8775

    weighted = EnrichmentEngine(
        engine.index,
        source_health={"datadog": {"state": "degraded", "reliability_factor": 0.6}},
    ).lookup(name="dual")
    assert [r["key"] for r in weighted.sources] == ["snyk", "datadog"]
    assert weighted.sources[0]["reliability"] > weighted.sources[1]["reliability"]
    assert weighted.confidence == weighted.sources[0]["reliability"]
    assert "health" not in weighted.sources[0]  # snyk has no health record


def test_source_health_without_matches_is_inert(mini_engine):
    engine = EnrichmentEngine(
        mini_engine.index,
        source_health={"snyk": {"state": "dark", "reliability_factor": 0.25}},
    )
    assert engine.lookup(name="zzz-unseen").confidence == 0.0
    # and an empty health map leaves rows byte-identical to the index's
    plain = EnrichmentEngine(mini_engine.index, source_health={})
    assert plain.lookup(name="lib").sources == mini_engine.lookup(name="lib").sources


# -- request validation -------------------------------------------------------

def test_from_dict_roundtrip():
    raw = {"name": "lib", "version": "1.0", "sha256": "ab" * 32, "ecosystem": "pypi"}
    indicator = Indicator.from_dict(raw)
    assert indicator.to_dict() == raw


def test_from_dict_rejects_non_dict_payloads():
    from repro.errors import ValidationError

    for bad in ("name", 7, ["name"], None):
        with pytest.raises(ValidationError):
            Indicator.from_dict(bad)


def test_from_dict_rejects_non_string_fields():
    from repro.errors import ValidationError

    for field, value in (
        ("name", 123),
        ("sha256", ["deadbeef"]),
        ("ecosystem", {"k": "v"}),
        ("version", True),  # bools are not versions, despite being ints
    ):
        with pytest.raises(ValidationError) as failure:
            Indicator.from_dict({field: value})
        assert field in str(failure.value)


def test_from_dict_coerces_numeric_versions():
    assert Indicator.from_dict({"name": "lib", "version": 2}).version == "2"
    assert Indicator.from_dict({"name": "lib", "version": 1.5}).version == "1.5"


def test_integer_name_no_longer_reaches_key():
    # the regression: Indicator(name=123).key() raises AttributeError
    # mid-request; validated construction refuses it up front
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        Indicator.from_dict({"name": 123})
