"""ArtifactStore: LRU bounds, disk round-trips, corruption fallback."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.pipeline import SCHEMA_VERSION, ArtifactStore
from repro.pipeline.store import META_FILENAME


class JsonCodec:
    """Minimal codec for store tests: one JSON payload file."""

    FILENAME = "payload.json"

    def save(self, obj, directory: Path) -> None:
        (directory / self.FILENAME).write_text(json.dumps(obj))

    def load(self, directory: Path):
        return json.loads((directory / self.FILENAME).read_text())


def make_store(tmp_path, **kwargs) -> ArtifactStore:
    kwargs.setdefault("disk_enabled", True)
    return ArtifactStore(cache_dir=tmp_path / "cache", **kwargs)


# -- memory tier -------------------------------------------------------------

def test_memory_tier_returns_the_same_object(tmp_path):
    store = make_store(tmp_path)
    obj = {"payload": 1}
    store.put_memory("world", "aa", obj)
    assert store.get_memory("world", "aa") is obj
    assert store.get_memory("world", "bb") is None
    assert store.get_memory("collection", "aa") is None


def test_memory_tier_evicts_least_recently_used(tmp_path):
    store = make_store(tmp_path, memory_capacity=2)
    store.put_memory("s", "a", "A")
    store.put_memory("s", "b", "B")
    store.get_memory("s", "a")  # refresh a; b becomes LRU
    store.put_memory("s", "c", "C")
    assert store.get_memory("s", "b") is None
    assert store.get_memory("s", "a") == "A"
    assert store.get_memory("s", "c") == "C"
    assert store.memory_size == 2


def test_clear_memory(tmp_path):
    store = make_store(tmp_path)
    store.put_memory("s", "a", "A")
    store.clear_memory()
    assert store.memory_size == 0


# -- disk tier ---------------------------------------------------------------

def test_disk_round_trip(tmp_path):
    store = make_store(tmp_path)
    payload = {"rows": [1, 2, 3], "name": "x"}
    assert store.put_disk("collection", "f1", payload, JsonCodec(), {"world": {}})
    assert store.has_disk("collection", "f1")
    assert store.get_disk("collection", "f1", JsonCodec()) == payload

    fresh = make_store(tmp_path)  # a second store over the same directory
    assert fresh.get_disk("collection", "f1", JsonCodec()) == payload


def test_disk_miss_for_unknown_fingerprint(tmp_path):
    store = make_store(tmp_path)
    assert not store.has_disk("collection", "nope")
    assert store.get_disk("collection", "nope", JsonCodec()) is None


def test_corrupt_payload_degrades_to_miss(tmp_path):
    store = make_store(tmp_path)
    store.put_disk("collection", "f1", {"ok": True}, JsonCodec())
    entry_dir = store.cache_dir / "collection" / "f1"
    (entry_dir / JsonCodec.FILENAME).write_text("{not json")
    assert store.has_disk("collection", "f1")  # meta still valid ...
    assert store.get_disk("collection", "f1", JsonCodec()) is None  # ... load is not


def test_corrupt_meta_degrades_to_miss(tmp_path):
    store = make_store(tmp_path)
    store.put_disk("collection", "f1", {"ok": True}, JsonCodec())
    entry_dir = store.cache_dir / "collection" / "f1"
    (entry_dir / META_FILENAME).write_text("garbage")
    assert not store.has_disk("collection", "f1")
    assert store.get_disk("collection", "f1", JsonCodec()) is None


def test_stale_schema_version_is_a_miss(tmp_path):
    store = make_store(tmp_path)
    store.put_disk("collection", "f1", {"ok": True}, JsonCodec())
    entry_dir = store.cache_dir / "collection" / "f1"
    meta = json.loads((entry_dir / META_FILENAME).read_text())
    meta["schema_version"] = SCHEMA_VERSION - 1
    (entry_dir / META_FILENAME).write_text(json.dumps(meta))
    assert not store.has_disk("collection", "f1")
    assert store.get_disk("collection", "f1", JsonCodec()) is None
    # A rewrite with the current schema replaces the stale entry.
    assert store.put_disk("collection", "f1", {"ok": 2}, JsonCodec())
    assert store.get_disk("collection", "f1", JsonCodec()) == {"ok": 2}


def test_disk_disabled_store_never_touches_disk(tmp_path):
    store = make_store(tmp_path, disk_enabled=False)
    assert not store.put_disk("collection", "f1", {"ok": True}, JsonCodec())
    assert not store.has_disk("collection", "f1")
    assert store.get_disk("collection", "f1", JsonCodec()) is None
    assert not (tmp_path / "cache").exists()
    assert store.disk_entries() == []


def test_put_disk_replaces_existing_entry(tmp_path):
    store = make_store(tmp_path)
    store.put_disk("s", "f", {"v": 1}, JsonCodec())
    store.put_disk("s", "f", {"v": 2}, JsonCodec())
    assert store.get_disk("s", "f", JsonCodec()) == {"v": 2}
    # No temp directories left behind.
    leftovers = [p for p in (store.cache_dir / "s").iterdir() if p.name.startswith(".tmp")]
    assert leftovers == []


def test_clear_disk_counts_entries(tmp_path):
    store = make_store(tmp_path)
    store.put_disk("collection", "f1", {"a": 1}, JsonCodec())
    store.put_disk("malgraph", "f2", {"b": 2}, JsonCodec())
    assert store.clear_disk() == 2
    assert store.disk_entries() == []
    assert store.clear_disk() == 0


def test_disk_entries_inventory(tmp_path):
    store = make_store(tmp_path)
    store.put_disk("collection", "f1", {"a": 1}, JsonCodec(), {"world": {"seed": 3}})
    (entries,) = store.disk_entries()
    assert entries["stage"] == "collection"
    assert entries["fingerprint"] == "f1"
    assert entries["bytes"] > 0
    assert entries["config"] == {"world": {"seed": 3}}


def test_unwritable_cache_dir_degrades_gracefully(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should be")
    store = ArtifactStore(cache_dir=blocker / "cache", disk_enabled=True)
    assert not store.put_disk("s", "f", {"v": 1}, JsonCodec())
    assert store.get_disk("s", "f", JsonCodec()) is None


# -- cross-process safety ----------------------------------------------------

def test_two_processes_share_one_cache_dir(tmp_path):
    """Two concurrent CLI processes racing on an empty cache directory
    must both succeed and agree byte-for-byte."""
    repo_src = Path(__file__).resolve().parents[2] / "src"
    cache_dir = tmp_path / "shared-cache"
    args = [
        sys.executable, "-m", "repro",
        "--seed", "3", "--scale", "0.05",
        "--cache-dir", str(cache_dir),
        "show", "table2",
    ]
    procs = [
        subprocess.Popen(
            args,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
        )
        for _ in range(2)
    ]
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        outputs.append(out)
    assert outputs[0] == outputs[1]
    # The survivors on disk are valid and readable by a fresh store.
    store = ArtifactStore(cache_dir=cache_dir, disk_enabled=True)
    stages = {entry["stage"] for entry in store.disk_entries()}
    assert "collection" in stages and "malgraph" in stages
