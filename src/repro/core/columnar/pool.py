"""Interned string pool backing every columnar table.

Every string a corpus row references — package names, ecosystems,
versions, SHA256 signatures, source keys, file paths, file contents —
is stored exactly once in a :class:`StringPool` and referenced by a
64-bit id. Three properties matter at scale:

* **dedup** — flood campaigns publish thousands of near-identical
  packages; interning collapses their shared file contents, claim
  sources and ecosystem names to one copy each;
* **flat persistence** — the pool freezes to two numpy arrays (UTF-8
  bytes + offsets) that memory-map straight back in, so a loaded corpus
  pays for a string only when a row that references it is hydrated;
* **stable order** — ids are assigned in first-intern order and never
  move, so row columns written against a pool stay valid across
  save/load.

``NULL`` (``-1``) encodes Python ``None``; the empty string is a real
pooled value and distinct from it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

#: id encoding Python ``None`` in any pooled column
NULL = -1


def _bytes_hash(encoded: bytes) -> int:
    """Process-stable 64-bit hash of a pooled string's UTF-8 bytes.

    ``hash(bytes)`` is salted per process, which is fine — the probe is
    built and queried inside one process — but it must be folded into
    int64 deterministically for the numpy sort."""
    return hash(encoded) & 0x7FFFFFFFFFFFFFFF


class StringPool:
    """Append-only interned string table with lazy mmap-backed decode."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._strings: List[Optional[str]] = []
        # frozen backing (set when loaded from arrays); decoded lazily
        self._data: Optional[np.ndarray] = None
        self._offsets: Optional[np.ndarray] = None
        #: how many ids live in the frozen arrays (probe-able without
        #: decoding); ids past this are ordinary in-memory strings
        self._frozen_count: int = 0
        # hash probe over the frozen strings: hashes sorted ascending +
        # the id permutation that sorts them (built on first frozen miss)
        self._hash_sorted: Optional[np.ndarray] = None
        self._hash_order: Optional[np.ndarray] = None

    # -- building ----------------------------------------------------------
    def intern(self, value: Optional[str]) -> int:
        """Id of ``value``, adding it on first sight. ``None`` -> NULL.

        On a pool loaded :meth:`from_arrays` a miss in the in-memory
        index probes the frozen bytes through a hash index (8 bytes per
        pooled string) rather than decoding the whole pool — interning a
        handful of delta strings into a memory-mapped corpus pool stays
        O(delta) resident, not O(pool).
        """
        if value is None:
            return NULL
        held = self._index.get(value)
        if held is not None:
            return held
        frozen = self._find_frozen(value)
        if frozen is not None:
            self._index[value] = frozen
            self._strings[frozen] = value
            return frozen
        idx = len(self._strings)
        self._index[value] = idx
        self._strings.append(value)
        return idx

    def _find_frozen(self, value: str) -> Optional[int]:
        """Id of ``value`` among the frozen strings, decoding only hash
        collisions; ``None`` when absent (or nothing is frozen)."""
        if self._frozen_count == 0:
            return None
        if self._hash_sorted is None:
            self._build_hash_probe()
        encoded = value.encode("utf-8")
        key = _bytes_hash(encoded)
        lo = int(np.searchsorted(self._hash_sorted, key, side="left"))
        hi = int(np.searchsorted(self._hash_sorted, key, side="right"))
        for slot in range(lo, hi):
            idx = int(self._hash_order[slot])
            start, end = int(self._offsets[idx]), int(self._offsets[idx + 1])
            if end - start == len(encoded) and bytes(self._data[start:end]) == encoded:
                return idx
        return None

    def _build_hash_probe(self) -> None:
        offsets = self._offsets
        data = self._data
        hashes = np.empty(self._frozen_count, dtype=np.int64)
        for i in range(self._frozen_count):
            hashes[i] = _bytes_hash(
                bytes(data[int(offsets[i]) : int(offsets[i + 1])])
            )
        self._hash_order = np.argsort(hashes, kind="stable")
        self._hash_sorted = hashes[self._hash_order]

    def intern_many(self, values: Iterable[Optional[str]]) -> List[int]:
        return [self.intern(v) for v in values]

    # -- reading -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._strings)

    def lookup(self, idx: int) -> Optional[str]:
        """String for ``idx``; NULL -> ``None``. Decodes lazily when the
        pool is backed by (possibly memory-mapped) arrays."""
        if idx == NULL:
            return None
        held = self._strings[idx]
        if held is None:
            start, end = int(self._offsets[idx]), int(self._offsets[idx + 1])
            held = bytes(self._data[start:end]).decode("utf-8")
            self._strings[idx] = held
        return held

    def strings(self) -> List[str]:
        """Every pooled string, fully decoded, in id order."""
        return [self.lookup(i) for i in range(len(self._strings))]

    def ranks(self) -> np.ndarray:
        """``ranks[id]`` = lexicographic rank of the string with that id.

        Gives columnar code vectorised *string order* without comparing
        strings row by row: sorting rows by their ids' ranks equals
        sorting by the strings themselves (ids are unique, so ranks are
        a permutation). Computed over the pool (unique strings), not the
        rows referencing it.
        """
        order = sorted(range(len(self._strings)), key=self.lookup)
        ranks = np.empty(len(self._strings), dtype=np.int64)
        ranks[np.asarray(order, dtype=np.int64)] = np.arange(
            len(self._strings), dtype=np.int64
        )
        return ranks

    def subset_ranks(self, ids: np.ndarray) -> np.ndarray:
        """Like :meth:`ranks` but only for the ids actually present in
        ``ids`` (NULLs ignored); every other slot is ``-1``.

        Key columns reference a tiny fraction of a corpus pool (the rest
        is file text), so ranking just the used ids avoids decoding —
        and, under mmap, faulting in — the bulk of the pool.
        """
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        used = np.unique(ids[ids >= 0])
        order = sorted(range(len(used)), key=lambda i: self.lookup(int(used[i])))
        ranks = np.full(len(self._strings), -1, dtype=np.int64)
        ranks[used[np.asarray(order, dtype=np.int64)]] = np.arange(
            len(used), dtype=np.int64
        )
        return ranks

    # -- persistence -------------------------------------------------------
    def freeze(self) -> Dict[str, np.ndarray]:
        """The pool as flat arrays: UTF-8 ``data`` + ``offsets`` (n+1)."""
        encoded = [
            s.encode("utf-8") for s in (self.lookup(i) for i in range(len(self)))
        ]
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        if encoded:
            np.cumsum([len(b) for b in encoded], out=offsets[1:])
        data = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
        return {"data": data, "offsets": offsets}

    @classmethod
    def from_arrays(cls, data: np.ndarray, offsets: np.ndarray) -> "StringPool":
        """Rehydrate from :meth:`freeze` output (arrays may be mmapped);
        strings decode lazily on first :meth:`lookup`."""
        pool = cls()
        pool._data = data
        pool._offsets = offsets
        pool._strings = [None] * (len(offsets) - 1)
        pool._frozen_count = len(offsets) - 1
        return pool

    def intern_into(self, value: Optional[str]) -> int:
        """:meth:`intern` against a pool that may have been loaded from
        arrays. Kept as a separate name for call sites that want to
        document they expect a loaded pool; :meth:`intern` itself now
        probes frozen storage, so this is a plain alias."""
        return self.intern(value)
