"""Concurrent-load benchmark for the enrichment HTTP server (not a paper
table).

Two surfaces:

1. **pytest mode** (``pytest benchmarks/bench_service_concurrency.py``)
   boots the server on an ephemeral port over the default-world service,
   then sweeps threads x batch-size combinations driving real HTTP
   traffic from a thread pool: single-indicator ``GET /v1/enrich`` for
   batch size 1, ``POST /v1/enrich/batch`` otherwise. Reports
   requests/sec and client-observed tail latency (p50/p95/p99) per
   combination, and asserts the server's own ``/v1/metrics`` accounting
   matches the traffic sent — a lost request or a swallowed error fails
   the bench.

2. **standalone mode** (what CI runs)::

       PYTHONPATH=src python benchmarks/bench_service_concurrency.py --fast

   sweeps worker counts over the in-process read path twice — once
   against the lock-free snapshot service, once against a baseline that
   recreates the pre-snapshot design (one service-wide lock across
   every read). Each enrichment carries a fixed GIL-releasing stall
   emulating the downstream I/O a production lookup waits on; the
   contrast the gates enforce is whether those waits overlap:

   * lock-free req/s at the top worker count must scale >= 3x over one
     worker, while the locked baseline stays < 2x (the lock serialises
     the stalls, so adding workers buys ~nothing);
   * lock-free p99 latency must stay flat (within a small factor of the
     single-worker p99) — no convoy behind a service lock;
   * shard-summed cache books must be exact for every combination
     (``hits + misses == gets``);
   * a refresh-under-load pass must show no torn generations: two
     packages published together are always both visible or both
     absent, with the books still exact.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Tuple

import pytest

from repro.collection.records import (
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.core.malgraph import MalGraph
from repro.ecosystem.package import PackageId, make_artifact
from repro.service.cache import EnrichmentService, build_service
from repro.service.enrich import EnrichmentEngine, Indicator
from repro.service.index import IntelIndex
from repro.service.refresh import refresh_index
from repro.service.server import create_server, server_address

#: lock-free req/s at the top worker count vs one worker (the tentpole gate)
SCALING_FLOOR = 3.0
#: the locked baseline must stay below this (it serialises the stalls)
LOCKED_CEILING = 2.0
#: lock-free p99 at the top worker count may grow at most this much
P99_FLAT_FACTOR = 5.0

THREAD_SWEEP = (1, 4, 8)
BATCH_SIZES = (1, 32)
REQUESTS_PER_COMBO = 200


@pytest.fixture(scope="module")
def live_server(artifacts):
    """The default-world service behind a real socket; yields the URL."""
    service = build_service(artifacts.malgraph, capacity=65_536)
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service, server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def names(artifacts) -> List[str]:
    return [e.package.name for e in artifacts.dataset.entries[:512]]


def _request(base: str, names: List[str], batch_size: int, i: int) -> Tuple[int, float]:
    """One timed request; returns (status, seconds)."""
    started = time.perf_counter()
    if batch_size == 1:
        url = f"{base}/v1/enrich?name={names[i % len(names)]}"
        with urllib.request.urlopen(url, timeout=30) as response:
            status = response.status
            response.read()
    else:
        payload = {
            "indicators": [
                {"name": names[(i + j) % len(names)]} for j in range(batch_size)
            ]
        }
        request = urllib.request.Request(
            f"{base}/v1/enrich/batch",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            status = response.status
            response.read()
    return status, time.perf_counter() - started


def _percentile(sorted_values: List[float], p: float) -> float:
    index = min(len(sorted_values) - 1, int(p * len(sorted_values)))
    return sorted_values[index]


def test_concurrent_load_sweep(live_server, names, show):
    base, _, server = live_server
    lines = [
        f"{'threads':>7} {'batch':>5} {'req/s':>10} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}"
    ]
    sent = 0
    for batch_size in BATCH_SIZES:
        for threads in THREAD_SWEEP:
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=threads) as pool:
                outcomes = list(
                    pool.map(
                        lambda i: _request(base, names, batch_size, i),
                        range(REQUESTS_PER_COMBO),
                    )
                )
            elapsed = time.perf_counter() - started
            sent += REQUESTS_PER_COMBO
            assert all(status == 200 for status, _ in outcomes)
            latencies = sorted(seconds for _, seconds in outcomes)
            lines.append(
                f"{threads:>7} {batch_size:>5} "
                f"{REQUESTS_PER_COMBO / elapsed:>10.0f} "
                f"{_percentile(latencies, 0.50) * 1000:>8.2f} "
                f"{_percentile(latencies, 0.95) * 1000:>8.2f} "
                f"{_percentile(latencies, 0.99) * 1000:>8.2f}"
            )
    show("Service concurrent load (requests/sec, client latency)", "\n".join(lines))

    # the server accounted for every request we sent, none dropped
    snapshot = server.metrics.snapshot()
    assert snapshot["total_requests"] == sent
    by_endpoint = snapshot["endpoints"]
    assert by_endpoint["/v1/enrich"]["status"] == {
        "200": len(THREAD_SWEEP) * REQUESTS_PER_COMBO
    }
    assert by_endpoint["/v1/enrich/batch"]["status"] == {
        "200": len(THREAD_SWEEP) * REQUESTS_PER_COMBO
    }


def test_single_enrich_http_roundtrip(benchmark, live_server, names):
    """One warmed single-indicator HTTP round-trip (the floor latency)."""
    base, _, _ = live_server
    counter = iter(range(10_000_000))
    result = benchmark(lambda: _request(base, names, 1, next(counter)))
    assert result[0] == 200


# ---------------------------------------------------------------------------
# standalone mode: the lock-free-vs-locked scaling gates CI runs
# ---------------------------------------------------------------------------


def _mk_entry(name: str, code: str) -> DatasetEntry:
    """One synthetic malicious entry (no tests.* imports: CI runs this
    file with only ``src`` on the path)."""
    return DatasetEntry(
        package=PackageId("pypi", name, "1.0"),
        claims=[SourceClaim(source="snyk", report_day=12, shares_artifact=True)],
        artifact=make_artifact("pypi", name, "1.0", {"pkg/main.py": code}),
        artifact_origin="source:bench",
        release_day=10,
        downloads=0,
        campaign_id=None,
    )


def _bench_engine(packages: int) -> EnrichmentEngine:
    entries = [
        _mk_entry(f"corpus-{i}", f"def payload():\n    return {i}\n")
        for i in range(packages)
    ]
    dataset = MalwareDataset(entries=entries, reports=[])
    return EnrichmentEngine(IntelIndex.build(MalGraph.build(dataset)))


class _StallingEngine:
    """Adds a fixed GIL-releasing stall to every engine call, standing in
    for the downstream I/O (feed fetch, artifact read) a production
    lookup waits on. The bench contrasts whether those waits overlap
    across worker threads or serialise behind a service lock."""

    def __init__(self, inner: EnrichmentEngine, stall: float):
        self._inner = inner
        self._stall = stall

    def enrich(self, indicator: Indicator):
        time.sleep(self._stall)
        return self._inner.enrich(indicator)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class _LockedService(EnrichmentService):
    """The pre-snapshot design: one service-wide lock across every read.

    Reuses ``self.lock`` — which the lock-free service holds only for
    writes — exactly the way the old read path did, so the baseline
    differs from the real service by nothing but the lock scope.
    """

    def enrich(self, indicator: Indicator):
        with self.lock:
            return super().enrich(indicator)


def _drive(
    service: EnrichmentService, workers: int, requests: int, tag: str
) -> Tuple[float, float, float]:
    """Drive ``requests`` distinct-name enrichments; (req/s, p50, p99).

    Every name is fresh, so every request takes the miss path through
    the (stalling) engine — the worst case for read-path contention.
    """
    names = [f"{tag}-{i}-ghost" for i in range(requests)]
    latencies: List[float] = []
    collect = threading.Lock()
    counter = itertools.count()
    barrier = threading.Barrier(workers + 1)

    def run() -> None:
        local = []
        barrier.wait(timeout=30)
        while True:
            i = next(counter)
            if i >= requests:
                break
            t0 = time.perf_counter()
            service.enrich(Indicator(name=names[i]))
            local.append(time.perf_counter() - t0)
        with collect:
            latencies.extend(local)

    pool = [threading.Thread(target=run) for _ in range(workers)]
    for t in pool:
        t.start()
    barrier.wait(timeout=30)
    started = time.perf_counter()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)
    return (
        requests / elapsed,
        _percentile(ordered, 0.50) * 1000,
        _percentile(ordered, 0.99) * 1000,
    )


def _sweep(
    label: str,
    engine: EnrichmentEngine,
    locked: bool,
    worker_sweep: Tuple[int, ...],
    requests: int,
) -> Dict[int, Tuple[float, float, float]]:
    """One design's worker sweep; exact-accounting gated per combo."""
    cls = _LockedService if locked else EnrichmentService
    print(f"\n-- {label} --")
    print(f"{'workers':>7} {'req/s':>10} {'p50 ms':>8} {'p99 ms':>8}")
    results: Dict[int, Tuple[float, float, float]] = {}
    for workers in worker_sweep:
        service = cls(engine, capacity=4 * requests)
        rps, p50, p99 = _drive(service, workers, requests, f"{label}-{workers}")
        stats = service.cache.stats()
        # distinct names: every request is exactly one counted miss
        assert stats["hits"] + stats["misses"] == requests, (
            f"{label} workers={workers}: books {stats['hits']}+"
            f"{stats['misses']} != {requests} gets"
        )
        assert stats["misses"] == requests and stats["hits"] == 0
        results[workers] = (rps, p50, p99)
        print(f"{workers:>7} {rps:>10.0f} {p50:>8.2f} {p99:>8.2f}")
    return results


def _refresh_consistency_gate(readers: int, generations: int) -> None:
    """Refresh under live readers: no torn generations, exact books."""
    base = [
        _mk_entry(f"corpus-{i}", f"def payload():\n    return {i}\n")
        for i in range(8)
    ]
    service = build_service(
        MalGraph.build(MalwareDataset(entries=base, reports=[])), capacity=1024
    )
    letters = "abcdefgh"[:generations]

    def pair(g: int) -> Tuple[str, str]:
        # letter-tripled stems keep pairs > edit-distance 2 apart, so a
        # near-miss typosquat verdict can never blur present vs absent
        stem = letters[g] * 3
        return f"{stem}pkg-a", f"{stem}pkg-b"

    stop = threading.Event()
    failures: List[BaseException] = []
    books = threading.Lock()
    probes = [0]

    def refresher() -> None:
        try:
            for g in range(len(letters)):
                left, right = pair(g)
                extra = MalwareDataset(
                    entries=[
                        _mk_entry(left, f"def l():\n    return {g}\n"),
                        _mk_entry(right, f"def r():\n    return {g + 100}\n"),
                    ],
                    reports=[],
                )
                refresh_index(service.index, extra, service=service)
                time.sleep(0.002)
        except BaseException as failure:  # noqa: BLE001 - gate target
            failures.append(failure)
        finally:
            stop.set()

    def reader(worker: int) -> None:
        try:
            rounds = 0
            while not stop.is_set() and rounds < 5000:
                left, right = pair((worker + rounds) % len(letters))
                got = service.batch_enrich(
                    [Indicator(name=left), Indicator(name=right)]
                )
                verdicts = [r.verdict == "malicious" for r in got]
                assert verdicts[0] == verdicts[1], (
                    f"torn read: {left}={got[0].verdict} "
                    f"{right}={got[1].verdict}"
                )
                with books:
                    probes[0] += 2
                rounds += 1
        except BaseException as failure:  # noqa: BLE001 - gate target
            failures.append(failure)

    pool = [threading.Thread(target=refresher)] + [
        threading.Thread(target=reader, args=(w,)) for w in range(readers)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=60)
    assert not failures, failures
    stats = service.cache.stats()
    assert stats["hits"] + stats["misses"] == probes[0], (
        f"refresh gate books: {stats['hits']}+{stats['misses']} "
        f"!= {probes[0]} probes"
    )
    assert service.generation == len(letters)
    assert service.index.package_count == 8 + 2 * len(letters)
    print(
        f"refresh consistency: {probes[0]} probes across "
        f"{len(letters)} generations, 0 torn reads, books exact  OK"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="lock-free vs locked read-path scaling gates"
    )
    parser.add_argument("--stall", type=float, default=0.005)
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--packages", type=int, default=48)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI mode: shorter stall and fewer requests (gates still run)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.stall, args.requests, args.packages = 0.003, 160, 24
    worker_sweep = tuple(sorted(set(args.workers)))
    low, high = worker_sweep[0], worker_sweep[-1]

    print(
        f"stall={args.stall * 1000:g}ms requests={args.requests} "
        f"workers={list(worker_sweep)}"
    )
    engine = _bench_engine(args.packages)
    stalling = _StallingEngine(engine, args.stall)

    lockfree = _sweep(
        "lock-free snapshots", stalling, False, worker_sweep, args.requests
    )
    locked = _sweep(
        "locked baseline", stalling, True, worker_sweep, args.requests
    )

    free_speedup = lockfree[high][0] / lockfree[low][0]
    locked_speedup = locked[high][0] / locked[low][0]
    p99_growth = lockfree[high][2] / max(lockfree[low][2], 1e-9)
    print(
        f"\nscaling at {high} workers: lock-free {free_speedup:.1f}x, "
        f"locked {locked_speedup:.1f}x; lock-free p99 x{p99_growth:.1f}"
    )
    assert free_speedup >= SCALING_FLOOR, (
        f"lock-free read path only {free_speedup:.1f}x at {high} workers "
        f"(need >= {SCALING_FLOOR:g}x)"
    )
    assert locked_speedup < LOCKED_CEILING, (
        f"locked baseline scaled {locked_speedup:.1f}x — the stall is no "
        f"longer serialised, so the comparison proves nothing"
    )
    assert p99_growth <= P99_FLAT_FACTOR, (
        f"lock-free p99 grew {p99_growth:.1f}x at {high} workers "
        f"(cap {P99_FLAT_FACTOR:g}x)"
    )
    print(
        f"scaling gate: {free_speedup:.1f}x >= {SCALING_FLOOR:g}x "
        f"(locked {locked_speedup:.1f}x < {LOCKED_CEILING:g}x)  OK"
    )

    _refresh_consistency_gate(readers=3, generations=4 if args.fast else 6)
    print("\nall concurrency gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
