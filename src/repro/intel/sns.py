"""Social-network feed (the paper's X/Twitter channel).

Section II-B collects package names from SNS accounts such as '@sscblog'
(observed releasing ~1.7 malicious packages per day). Here the
individual-blogs source emits one tweet per package record; the
collection pipeline parses the tweet text — not the structured entry —
to recover name/version/ecosystem.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.ecosystem.clock import day_to_date
from repro.intel.sources import AttributionOutcome, SourceEntry, SourceKind, SOURCE_INDEX

_TWEET_TEMPLATES = [
    "Heads up: malicious package {name} version {version} spotted on "
    "{eco}. Remove it from your lockfiles! #malware #SSC",
    "New supply chain attack: {eco} package {name}@{version} exfiltrates "
    "credentials. #opensource #malware",
    "{name} ({version}) on {eco} is malware — registry notified. #SSC",
]

_NOISE_TWEETS = [
    "Great talk on SBOM tooling at the conference today! #opensource",
    "Shipping a new release of our scanner next week. #security",
    "Coffee first, then dependency review. #devlife",
]


@dataclass(frozen=True)
class Tweet:
    """One post on the simulated SNS feed."""

    account: str
    day: int
    text: str

    @property
    def date(self) -> str:
        return day_to_date(self.day).isoformat()


def build_feed(
    outcome: AttributionOutcome, seed: int = 41, noise_every: int = 4
) -> List[Tweet]:
    """Emit the SNS feed for every SNS-kind source, with noise mixed in."""
    rng = random.Random(seed)
    tweets: List[Tweet] = []
    for entry in outcome.entries:
        profile = SOURCE_INDEX[entry.source]
        if profile.kind != SourceKind.SNS:
            continue
        template = rng.choice(_TWEET_TEMPLATES)
        tweets.append(
            Tweet(
                account="@sscblog",
                day=entry.report_day,
                text=template.format(
                    name=entry.package.name,
                    version=entry.package.version,
                    eco=entry.package.ecosystem.upper(),
                ),
            )
        )
        if rng.randrange(noise_every) == 0:
            tweets.append(
                Tweet(
                    account="@sscblog",
                    day=entry.report_day,
                    text=rng.choice(_NOISE_TWEETS),
                )
            )
    tweets.sort(key=lambda t: t.day)
    return tweets
