"""Observability over the stage DAG: what ran, what was cached, how long.

Every stage resolution appends one :class:`StageRun` to a
:class:`PipelineReport` — a hit (served from the memory tier, loaded
from disk, or elided because a downstream artifact made the stage
unnecessary) or a miss (built from scratch). The CLI exposes the
process-wide report via ``--report`` / ``--report-json`` and the
``warm`` command; ``scripts/smoke_pipeline.py`` asserts on its counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: A stage served from cache (memory, disk, or elided entirely).
STATUS_HIT = "hit"
#: A stage that had to be built.
STATUS_MISS = "miss"

SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_BUILD = "build"
#: The stage was never executed because a downstream artifact resolved
#: from cache without needing it (e.g. the world simulation when the
#: collected dataset came off disk).
SOURCE_ELIDED = "elided"


@dataclass
class StageRun:
    """One resolution of one stage."""

    stage: str
    status: str  # STATUS_HIT | STATUS_MISS
    source: str  # SOURCE_MEMORY | SOURCE_DISK | SOURCE_BUILD | SOURCE_ELIDED
    seconds: float
    fingerprint: str

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "status": self.status,
            "source": self.source,
            "seconds": self.seconds,
            "fingerprint": self.fingerprint,
        }


@dataclass
class SubstageRun:
    """One timed substage of a stage build (e.g. the malgraph stage's
    embed / cluster / split phases), with counters such as embedding
    cache hits in ``detail``."""

    stage: str
    name: str
    seconds: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "name": self.name,
            "seconds": self.seconds,
            "detail": dict(self.detail),
        }


@dataclass
class PipelineReport:
    """Append-only log of stage resolutions plus aggregate counts."""

    runs: List[StageRun] = field(default_factory=list)
    substages: List[SubstageRun] = field(default_factory=list)

    def record(
        self,
        stage: str,
        status: str,
        source: str,
        seconds: float,
        fingerprint: str,
    ) -> StageRun:
        run = StageRun(
            stage=stage,
            status=status,
            source=source,
            seconds=seconds,
            fingerprint=fingerprint,
        )
        self.runs.append(run)
        return run

    def record_substage(
        self,
        stage: str,
        name: str,
        seconds: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> SubstageRun:
        run = SubstageRun(
            stage=stage, name=name, seconds=seconds, detail=detail or {}
        )
        self.substages.append(run)
        return run

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Per-stage ``{"hits": n, "misses": n}`` totals."""
        totals: Dict[str, Dict[str, int]] = {}
        for run in self.runs:
            bucket = totals.setdefault(run.stage, {"hits": 0, "misses": 0})
            if run.status == STATUS_HIT:
                bucket["hits"] += 1
            else:
                bucket["misses"] += 1
        return totals

    @property
    def total_seconds(self) -> float:
        return sum(run.seconds for run in self.runs)

    def clear(self) -> None:
        self.runs.clear()
        self.substages.clear()

    def to_dict(self) -> dict:
        return {
            "runs": [run.to_dict() for run in self.runs],
            "substages": [run.to_dict() for run in self.substages],
            "counts": self.counts(),
            "total_seconds": self.total_seconds,
        }

    def render(self) -> str:
        """ASCII table of every stage resolution, oldest first."""
        lines = ["pipeline report", "stage       status  source   seconds"]
        for run in self.runs:
            lines.append(
                f"{run.stage:<11} {run.status:<7} {run.source:<8} "
                f"{run.seconds:8.3f}"
            )
        for sub in self.substages:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(sub.detail.items()))
            lines.append(
                f"  {sub.stage}.{sub.name:<17} {sub.seconds:8.3f}"
                + (f"  ({detail})" if detail else "")
            )
        counts = self.counts()
        summary = ", ".join(
            f"{stage}: {c['hits']} hit / {c['misses']} miss"
            for stage, c in sorted(counts.items())
        )
        lines.append(summary if summary else "(no stages resolved)")
        return "\n".join(lines)
