"""Table II — the detailed information of MALGRAPH.

Regenerates node/edge counts and average in/out degrees for the four
subgraphs (DG, DeG, SG, CG). Paper shape: SG is by far the densest
subgraph (millions of directed edges from clique construction), DeG is
tiny (tens of nodes, avg degree < 2), and the graph is symmetric so
average out-degree equals average in-degree for every subgraph.
"""

from __future__ import annotations


def test_table2_malgraph(benchmark, artifacts, show):
    stats = benchmark(artifacts.table2_malgraph)
    show("Table II: the detailed information of MALGRAPH", stats.render())

    rows = {row.edge_type.value: row for row in stats.rows}
    assert set(rows) == {"duplicated", "dependency", "similar", "coexisting"}
    for row in rows.values():
        assert abs(row.avg_out_degree - row.avg_in_degree) < 1e-9, (
            "all MALGRAPH relations are symmetric"
        )
    assert rows["dependency"].nodes < 100, "dependency attacks are rare (paper: 28)"
    assert rows["dependency"].avg_out_degree < 2.0
    assert rows["similar"].directed_edges > rows["dependency"].directed_edges * 100
    assert rows["similar"].avg_out_degree > rows["coexisting"].avg_out_degree, (
        "similarity cliques dominate edge volume (paper: 845 vs 196)"
    )
