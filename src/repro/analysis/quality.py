"""RQ1 dataset-quality analyses: Table V, Table VI and Fig. 5.

* Table V — update cadence of each source (profile cadence plus the
  observed last-update date from collected claims);
* Table VI — per-source missing rate, single-source vs after
  supplementation from other sources and mirrors;
* Fig. 5 — the two causes of unavailability, measured by classifying
  every unrecovered package against the mirror fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_bars, render_table
from repro.analysis.stats import percentage
from repro.collection.mirrorsearch import MissCause, classify_miss
from repro.collection.records import MalwareDataset
from repro.ecosystem.clock import day_to_date
from repro.ecosystem.mirror import MirrorNetwork
from repro.intel.sources import SOURCE_INDEX, SOURCE_PROFILES


def _cadence_label(interval_days: int) -> str:
    """Human cadence label in Table V's vocabulary."""
    if interval_days <= 0:
        return "Never update"
    if interval_days < 30:
        return "several per month"
    months = max(1, round(interval_days / 30))
    return f"one per {months} month"


@dataclass
class FreshnessRow:
    """One Table V row."""

    source: str
    label: str
    last_update_day: Optional[int]
    cadence: str

    @property
    def last_update_date(self) -> str:
        if self.last_update_day is None:
            return "-"
        return day_to_date(self.last_update_day).strftime("%b %Y")


@dataclass
class FreshnessTable:
    """Table V: update frequency of the sources."""

    rows: List[FreshnessRow]

    def render(self) -> str:
        return render_table(
            ["Source", "Last update", "Frequency"],
            [[r.label, r.last_update_date, r.cadence] for r in self.rows],
            title="Table V: the update frequency of different online sources",
        )


def compute_freshness(dataset: MalwareDataset) -> FreshnessTable:
    """Observed last report day per source + configured cadence (Table V)."""
    last_seen: Dict[str, int] = {}
    for entry in dataset.entries:
        for claim in entry.claims:
            if claim.source not in last_seen or claim.report_day > last_seen[claim.source]:
                last_seen[claim.source] = claim.report_day
    rows = [
        FreshnessRow(
            source=profile.key,
            label=profile.label,
            last_update_day=last_seen.get(profile.key),
            cadence=_cadence_label(profile.update_interval_days),
        )
        for profile in SOURCE_PROFILES
    ]
    return FreshnessTable(rows=rows)


@dataclass
class MissingRateRow:
    """One Table VI row."""

    source: str
    label: str
    total: int
    missing_single: int  # this source's sharing alone
    missing_all: int  # after supplementation from anywhere

    @property
    def single_rate(self) -> float:
        return percentage(self.missing_single, self.total)

    @property
    def all_rate(self) -> float:
        return percentage(self.missing_all, self.total)


@dataclass
class MissingRateTable:
    """Table VI: missing rates of all sources."""

    rows: List[MissingRateRow]
    overall_missing: int
    overall_total: int

    @property
    def overall_rate(self) -> float:
        return percentage(self.overall_missing, self.overall_total)

    def render(self) -> str:
        table_rows = [
            [
                r.label,
                f"{r.missing_single} ({r.total})",
                f"{r.single_rate:.2f}%",
                f"{r.all_rate:.2f}%",
            ]
            for r in self.rows
        ]
        table_rows.append(
            [
                "Total",
                f"{self.overall_missing} ({self.overall_total})",
                "",
                f"{self.overall_rate:.2f}%",
            ]
        )
        return render_table(
            ["Source", "Missing # (Total #)", "Single MR", "All MR"],
            table_rows,
            title="Table VI: the missing rate of all sources",
        )


def compute_missing_rates(dataset: MalwareDataset) -> MissingRateTable:
    """Single vs overall missing rate per source (Table VI)."""
    rows: List[MissingRateRow] = []
    for profile in SOURCE_PROFILES:
        entries = dataset.entries_of_source(profile.key)
        if not entries:
            rows.append(
                MissingRateRow(
                    source=profile.key, label=profile.label,
                    total=0, missing_single=0, missing_all=0,
                )
            )
            continue
        own_shared = sum(
            1
            for e in entries
            if any(c.source == profile.key and c.shares_artifact for c in e.claims)
        )
        available = sum(1 for e in entries if e.available)
        rows.append(
            MissingRateRow(
                source=profile.key,
                label=profile.label,
                total=len(entries),
                missing_single=len(entries) - own_shared,
                missing_all=len(entries) - available,
            )
        )
    overall_missing = len(dataset.unavailable_entries())
    return MissingRateTable(
        rows=rows, overall_missing=overall_missing, overall_total=len(dataset)
    )


@dataclass
class UnavailabilityCauses:
    """Fig. 5: why unrecovered packages could not be obtained."""

    counts: Dict[MissCause, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, cause: MissCause) -> float:
        return self.counts.get(cause, 0) / self.total if self.total else 0.0

    def render(self) -> str:
        labels = [cause.value for cause in MissCause]
        values = [float(self.counts.get(cause, 0)) for cause in MissCause]
        return render_bars(
            labels,
            values,
            title="Fig. 5: causes of package unavailability",
            value_format="{:.0f}",
        )


def compute_unavailability_causes(
    dataset: MalwareDataset, mirrors: MirrorNetwork
) -> UnavailabilityCauses:
    """Classify every still-missing package against the mirror fleet."""
    counts: Dict[MissCause, int] = {}
    for entry in dataset.unavailable_entries():
        cause = classify_miss(entry, mirrors)
        counts[cause] = counts.get(cause, 0) + 1
    return UnavailabilityCauses(counts=counts)
