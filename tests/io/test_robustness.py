"""Failure-path robustness of the persistence layer."""

from __future__ import annotations

import json

import pytest

from repro.core.graph import PropertyGraph
from repro.errors import NodeNotFoundError
from repro.io.datasets import entry_from_dict, load_dataset
from repro.io.jsonl import read_jsonl


def test_load_dataset_missing_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_dataset(tmp_path / "nope")


def test_read_jsonl_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\nnot-json\n')
    with pytest.raises(json.JSONDecodeError):
        list(read_jsonl(path))


def test_entry_from_dict_minimal_record():
    entry = entry_from_dict({"ecosystem": "pypi", "name": "x", "version": "1"})
    assert entry.claims == []
    assert entry.downloads == 0
    assert not entry.available


def test_entry_from_dict_missing_identity_raises():
    with pytest.raises(KeyError):
        entry_from_dict({"name": "x", "version": "1"})


def test_graph_loads_rejects_unknown_edge_type():
    payload = json.dumps(
        {
            "nodes": {"a": {}, "b": {}},
            "edges": {"teleport": [["a", "b"]]},
            "cliques": {},
        }
    )
    with pytest.raises(ValueError):
        PropertyGraph.loads(payload)


def test_graph_loads_rejects_edges_to_unknown_nodes():
    payload = json.dumps(
        {
            "nodes": {"a": {}},
            "edges": {"similar": [["a", "ghost"]]},
            "cliques": {},
        }
    )
    with pytest.raises(NodeNotFoundError):
        PropertyGraph.loads(payload)


def test_graph_loads_tolerates_partial_document():
    graph = PropertyGraph.loads(json.dumps({"nodes": {"solo": {"k": 1}}}))
    assert graph.node("solo") == {"k": 1}
