"""Fig. 11 — box plot of download-number evolution by release order.

Paper shape: the majority of release attempts get 0-1 downloads because
the registry removes malware quickly; a minority reach tens of
downloads; a handful of trojanised popular packages are extreme
outliers with download counts in the millions.
"""

from __future__ import annotations


def test_fig11_downloads(benchmark, artifacts, show):
    evolution = benchmark(artifacts.fig11_downloads)
    show("Fig. 11: download evolution (box plot)", evolution.render())

    boxes = [b for b in evolution.boxes if b is not None]
    assert boxes, "at least one release-order position must have data"
    medians = [b.median for b in boxes]
    assert sorted(medians)[len(medians) // 2] <= 5, (
        "typical release attempts see almost no downloads (paper: 0-1)"
    )
    assert evolution.outliers, "popular-package hijacks create outliers"
    top_outlier = max(downloads for _, downloads in evolution.outliers)
    assert top_outlier > evolution.outlier_threshold
    assert top_outlier > 100_000, (
        "outlier downloads reach into the hundreds of thousands+"
    )
