"""Tick-log streaming: registry logs as the O(delta) ``touched`` hint.

The equivalence contract from :mod:`repro.core.delta.stream`: a batch
emitted with a correct (or superset) ``touched`` hint is identical to
the full :func:`events_from_datasets` diff — and the hint is
load-bearing, because lying to it (a set missing a genuinely changed
key) changes the output.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.collection.merge import events_from_datasets
from repro.collection.records import DatasetEntry, MalwareDataset, SourceClaim
from repro.core.delta import (
    RegistryTickStream,
    graph_events_between,
    registry_touched_keys,
)
from repro.ecosystem.package import PackageId
from repro.ecosystem.registry import EventKind, RegistryEvent


def _pid(name: str) -> PackageId:
    return PackageId("pypi", name, "1.0")


def _registry(*events: RegistryEvent):
    return SimpleNamespace(events=list(events))


def _dataset(*specs) -> MalwareDataset:
    entries = [
        DatasetEntry(
            package=_pid(name),
            claims=[SourceClaim("snyk", 5, False)],
            downloads=downloads,
        )
        for name, downloads in specs
    ]
    return MalwareDataset(entries=entries, reports=[])


# -- registry_touched_keys ---------------------------------------------------

def test_touched_keys_respects_day_window():
    reg = _registry(
        RegistryEvent(EventKind.PUBLISH, _pid("a"), day=1),
        RegistryEvent(EventKind.DETECT, _pid("b"), day=10),
        RegistryEvent(EventKind.REMOVE, _pid("c"), day=20),
    )
    assert registry_touched_keys([reg]) == {_pid("a"), _pid("b"), _pid("c")}
    assert registry_touched_keys([reg], since_day=5) == {_pid("b"), _pid("c")}
    assert registry_touched_keys([reg], since_day=5, until_day=15) == {_pid("b")}


# -- RegistryTickStream ------------------------------------------------------

def test_tick_stream_drains_only_new_events():
    reg = _registry(RegistryEvent(EventKind.PUBLISH, _pid("a"), day=1))
    stream = RegistryTickStream([reg])
    assert stream.pending() == 1
    assert stream.drain() == {_pid("a")}
    assert stream.pending() == 0
    assert stream.drain() == set()

    reg.events.append(RegistryEvent(EventKind.DETECT, _pid("b"), day=2))
    reg.events.append(RegistryEvent(EventKind.REMOVE, _pid("a"), day=3))
    assert stream.pending() == 2
    assert stream.drain() == {_pid("a"), _pid("b")}
    assert stream.drain() == set()


def test_tick_stream_spans_registries():
    r1 = _registry(RegistryEvent(EventKind.PUBLISH, _pid("a"), day=1))
    r2 = _registry(RegistryEvent(EventKind.PUBLISH, _pid("b"), day=1))
    stream = RegistryTickStream([r1, r2])
    assert stream.drain() == {_pid("a"), _pid("b")}


# -- graph_events_between ----------------------------------------------------

def _serialise(events):
    import json

    return json.dumps([e.to_dict() for e in events], sort_keys=True)


def test_hinted_batch_equals_full_diff():
    old = _dataset(("a", 1), ("b", 1), ("c", 1))
    new = _dataset(("a", 1), ("b", 9), ("d", 1))  # b updated, c gone, d new

    full = events_from_datasets(old, new)
    hinted = graph_events_between(old, new, touched={_pid("b")})
    superset = graph_events_between(
        old, new, touched={_pid("a"), _pid("b"), _pid("c"), _pid("d")}
    )
    assert _serialise(hinted) == _serialise(full)
    assert _serialise(superset) == _serialise(full)
    # additions/removals never depend on the hint
    kinds = [e.kind.value for e in hinted]
    assert "package_removed" in kinds and "package_added" in kinds


def test_registry_hint_is_equivalent_and_load_bearing():
    old = _dataset(("a", 1), ("b", 1))
    new = _dataset(("a", 1), ("b", 9))
    reg = _registry(RegistryEvent(EventKind.DETECT, _pid("b"), day=7))

    via_registries = graph_events_between(old, new, registries=[reg])
    assert _serialise(via_registries) == _serialise(events_from_datasets(old, new))

    # a hint that misses the changed key silently drops the update —
    # which is exactly why the registry log must cover every lifecycle
    # change, and does by construction
    lying = graph_events_between(old, new, touched=set())
    assert _serialise(lying) != _serialise(events_from_datasets(old, new))
    assert lying == []


def test_no_hint_degrades_to_full_diff():
    old = _dataset(("a", 1))
    new = _dataset(("a", 2))
    assert _serialise(graph_events_between(old, new)) == _serialise(
        events_from_datasets(old, new)
    )


def test_world_tick_stream_covers_simulated_lifecycle(small_world):
    """Every package the simulation published shows up in one drain of
    the world's tick stream (the hint is a superset of any window)."""
    stream = small_world.tick_stream()
    touched = stream.drain()
    assert touched  # the simulation logged lifecycle events
    assert stream.pending() == 0
    published = {
        record.artifact.id
        for registry in small_world.registries
        for record in registry.all_packages()
    }
    assert published <= touched
