"""ASCII rendering of tables and figures.

Every analysis result can be rendered into the terminal the way the
paper's tables/figures read: aligned tables, horizontal-bar histograms
and step CDFs. Benchmarks print these so a run of the harness visually
regenerates the paper's evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import BoxStats, CdfPoint


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    align_left_first: bool = True,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]

    def fmt(row: List[str]) -> str:
        parts = []
        for col, value in enumerate(row):
            if col == 0 and align_left_first:
                parts.append(value.ljust(widths[col]))
            else:
                parts.append(value.rjust(widths[col]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 46,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart (used for Fig. 12-style distributions)."""
    lines = [title] if title else []
    peak = max(values) if values else 1.0
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * (value / peak))) if peak else ""
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def render_cdf(
    points: Sequence[CdfPoint],
    title: str = "",
    width: int = 46,
    height: int = 10,
    value_label: str = "value",
) -> str:
    """Step CDF as an ASCII plot (Figs. 4 and 9)."""
    lines = [title] if title else []
    if not points:
        lines.append("(empty)")
        return "\n".join(lines)
    values = [p.value for p in points]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for point in points:
        x = int((point.value - lo) / span * (width - 1))
        y = int(round((1.0 - point.fraction) * (height - 1)))
        grid[y][x] = "*"
    for row_idx, row in enumerate(grid):
        frac = 1.0 - row_idx / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {value_label}: {lo:g} .. {hi:g}")
    return "\n".join(lines)


def render_box_series(
    labels: Sequence[str],
    boxes: Sequence[Optional[BoxStats]],
    title: str = "",
) -> str:
    """Render a box-plot series as a quartile table (Fig. 11)."""
    rows = []
    for label, box in zip(labels, boxes):
        if box is None:
            rows.append([label, "-", "-", "-", "-", "-", "-"])
        else:
            rows.append(
                [
                    label,
                    box.count,
                    f"{box.minimum:g}",
                    f"{box.q1:g}",
                    f"{box.median:g}",
                    f"{box.q3:g}",
                    f"{box.maximum:g}",
                ]
            )
    return render_table(
        ["release #", "n", "min", "Q1", "median", "Q3", "max"], rows, title=title
    )


def render_timeline(
    labels: Sequence[str],
    counts: Sequence[int],
    title: str = "",
    width: int = 40,
) -> str:
    """Vertical-ish timeline rendered as label + bar rows (Fig. 2)."""
    return render_bars(labels, [float(c) for c in counts], title=title, width=width,
                       value_format="{:.0f}")
