"""MALGRAPH facade: build the full knowledge graph from a dataset.

This is the paper's primary contribution, assembled: nodes from the
collected dataset, all four edge types, Table II statistics and group
extraction, behind one class.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.delta.engine import DeltaReport, DeltaState
    from repro.core.delta.events import GraphEvent
    from repro.core.query.indexes import GraphIndexes

from repro.collection.records import MalwareDataset
from repro.core.edges import (
    SimilarBuildResult,
    add_dataset_nodes,
    build_coexisting_edges,
    build_dependency_edges,
    build_duplicated_edges,
    build_similar_edges,
)
from repro.core.graph import EdgeType, GraphStats, PropertyGraph
from repro.core.groups import (
    GroupKind,
    PackageGroup,
    extract_groups,
    groups_from_components,
)
from repro.core.similarity import SimilarityConfig


@dataclass
class MalGraph:
    """The malicious-package knowledge graph."""

    graph: PropertyGraph
    dataset: MalwareDataset
    similar: SimilarBuildResult
    duplicated_groups: List[List] = field(default_factory=list)
    dependency_edges: List = field(default_factory=list)
    coexisting_groups: List[List] = field(default_factory=list)
    _group_cache: Dict[GroupKind, List[PackageGroup]] = field(
        default_factory=dict, repr=False
    )
    # guards _group_cache: concurrent first calls (e.g. two HTTP threads
    # warming the intel index) must not both run extract_groups and
    # publish half-built lists
    _group_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    #: the SimilarityConfig this graph was built with (delta applications
    #: must cluster with the same configuration to stay byte-identical)
    similarity_config: Optional[SimilarityConfig] = None
    #: advanced once per applied delta batch
    delta_epoch: int = 0
    #: wall-clock time of the last applied delta batch (None = never)
    last_delta_at: Optional[float] = None
    _delta_state: Optional["DeltaState"] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: MalwareDataset,
        similarity: Optional[SimilarityConfig] = None,
        store=None,
    ) -> "MalGraph":
        """Build nodes and all four edge types from a collected dataset.

        ``store`` (an :class:`repro.pipeline.store.ArtifactStore`) turns
        on the persistent embedding cache for the similar-edge stage;
        the built graph is identical with or without it.
        """
        # A SimilarityConfig() default argument would be instantiated once
        # at import time and shared across every build() call.
        similarity = similarity if similarity is not None else SimilarityConfig()
        graph = PropertyGraph()
        add_dataset_nodes(graph, dataset)
        duplicated = build_duplicated_edges(graph, dataset)
        dependency = build_dependency_edges(graph, dataset)
        similar = build_similar_edges(graph, dataset, similarity, store=store)
        coexisting = build_coexisting_edges(graph, dataset)
        return cls(
            graph=graph,
            dataset=dataset,
            similar=similar,
            duplicated_groups=duplicated,
            dependency_edges=dependency,
            coexisting_groups=coexisting,
            similarity_config=similarity,
        )

    # ------------------------------------------------------------------
    def apply_delta(
        self,
        events: Sequence["GraphEvent"],
        store=None,
        in_place: bool = False,
        similarity: Optional[SimilarityConfig] = None,
    ) -> Tuple["MalGraph", "DeltaReport"]:
        """Surgically update this graph from an ordered event batch.

        Returns ``(updated, report)``. By default the update lands on a
        cheap fork (entry objects shared, graph structurally copied) and
        this instance is untouched — safe for cached bases. With
        ``in_place=True`` the update mutates ``self``.

        The result is byte-identical, after canonical serialisation
        (:func:`repro.io.malgraphs.canonical_malgraph_json`), to a cold
        ``MalGraph.build`` over the post-events collection.
        """
        from repro.core.delta.engine import apply_delta as _apply_delta

        return _apply_delta(
            self, events, store=store, in_place=in_place, similarity=similarity
        )

    # ------------------------------------------------------------------
    def groups(self, kind: GroupKind) -> List[PackageGroup]:
        """Connected-subgraph groups of one kind (memoised).

        Double-checked under a lock so concurrent first callers compute
        each kind exactly once; the query layer's index cache
        (:func:`repro.core.query.indexes.graph_indexes`) uses the same
        pattern.
        """
        held = self._group_cache.get(kind)
        if held is not None:
            return held
        with self._group_lock:
            held = self._group_cache.get(kind)
            if held is None:
                if self._delta_state is not None:
                    # delta-evolved graph: components come from the
                    # incremental tracker instead of a full graph sweep
                    held = groups_from_components(
                        self.graph,
                        self.dataset,
                        kind,
                        self._delta_state.trackers[kind.edge_type].components(),
                    )
                else:
                    held = extract_groups(self.graph, self.dataset, kind)
                self._group_cache[kind] = held
            return held

    def query_indexes(self) -> "GraphIndexes":
        """The graph's cached query indexes, enriched with this
        MalGraph's dataset ground truth and group memberships."""
        from repro.core.query.indexes import graph_indexes

        return graph_indexes(self.graph, self)

    def table2_stats(self) -> List[GraphStats]:
        """Table II: nodes / edges / degrees per subgraph (DG, DeG, SG, CG)."""
        order = [
            EdgeType.DUPLICATED,
            EdgeType.DEPENDENCY,
            EdgeType.SIMILAR,
            EdgeType.COEXISTING,
        ]
        return [self.graph.stats(edge_type) for edge_type in order]

    @property
    def node_count(self) -> int:
        return self.graph.node_count
