"""Property test: ``parse(render(ast)) == ast`` over canonical ASTs.

The renderer emits canonical query text and the parser produces
canonical ASTs, so for any AST in canonical form the two are exact
inverses. Canonical form means: OR nodes have >= 2 parts, each of which
is an AND group (the parser's precedence wrapping), and variable-length
hop ranges satisfy ``1 <= lo <= hi``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.graph import EdgeType
from repro.core.query import (
    BoolExpr,
    CallQuery,
    Comparison,
    EdgePattern,
    MatchQuery,
    NodePattern,
    PROCEDURES,
    ReturnItem,
    parse,
    render,
)
from repro.core.query.lexer import KEYWORDS

_names = st.text("abcdefghjk", min_size=1, max_size=4).filter(
    lambda s: s not in KEYWORDS
)
_attrs = st.sampled_from(
    ["name", "ecosystem", "release_day", "campaign", "actor", "x", "y"]
)
_strings = st.text("abcXYZ 9'-\\._:@", max_size=8)
_numbers = st.one_of(
    st.integers(-1000, 1000),
    st.integers(-400, 400).map(lambda i: i / 4),  # repr-stable floats
)
_literals = st.one_of(_strings, _numbers)


@st.composite
def _comparisons(draw, variables):
    var = draw(st.sampled_from(variables))
    attr = draw(_attrs)
    op = draw(
        st.sampled_from(["=", "!=", "<", "<=", ">", ">=", "contains", "is-null"])
    )
    if op == "is-null":
        literal = None
    elif op == "contains":
        literal = draw(_strings)
    else:
        literal = draw(_literals)
    return Comparison(
        var=var, attr=attr, op=op, literal=literal, negated=draw(st.booleans())
    )


@st.composite
def _and_exprs(draw, variables, depth):
    parts = []
    for _ in range(draw(st.integers(1, 3))):
        if depth > 0 and draw(st.integers(0, 3)) == 0:
            parts.append(draw(_or_exprs(variables, depth - 1)))
        else:
            parts.append(draw(_comparisons(variables)))
    return BoolExpr(op="and", parts=tuple(parts))


@st.composite
def _or_exprs(draw, variables, depth):
    parts = [
        draw(_and_exprs(variables, depth))
        for _ in range(draw(st.integers(2, 3)))
    ]
    return BoolExpr(op="or", parts=tuple(parts))


@st.composite
def _hops(draw):
    if draw(st.booleans()):
        return 1, 1
    lo = draw(st.integers(1, 4))
    hi = draw(st.none() | st.integers(lo, lo + 3))
    return lo, hi


@st.composite
def _match_queries(draw):
    n = draw(st.integers(1, 3))
    variables = draw(
        st.lists(_names, min_size=n, max_size=n, unique=True)
    )
    nodes = []
    for var in variables:
        props = draw(
            st.lists(
                st.tuples(_attrs, _literals),
                max_size=2,
                unique_by=lambda p: p[0],
            )
        )
        nodes.append(NodePattern(var=var, props=tuple(props)))
    edges = []
    for _ in range(n - 1):
        types = draw(
            st.lists(st.sampled_from(list(EdgeType)), max_size=3, unique=True)
        )
        lo, hi = draw(_hops())
        edges.append(
            EdgePattern(
                types=tuple(types),
                direction=draw(st.sampled_from(["any", "out", "in"])),
                min_hops=lo,
                max_hops=hi,
            )
        )
    where = draw(
        st.none()
        | _and_exprs(variables, depth=1)
        | _or_exprs(variables, depth=1)
    )
    if draw(st.integers(0, 4)) == 0:
        returns = (ReturnItem(var=None, attr=None, is_count=True),)
        order_by, order_desc = None, False
    else:
        returns = tuple(
            ReturnItem(
                var=draw(st.sampled_from(variables)),
                attr=draw(st.none() | _attrs),
            )
            for _ in range(draw(st.integers(1, 3)))
        )
        if draw(st.booleans()):
            order_by = ReturnItem(
                var=draw(st.sampled_from(variables)),
                attr=draw(st.none() | _attrs),
            )
            order_desc = draw(st.booleans())
        else:
            order_by, order_desc = None, False
    return MatchQuery(
        nodes=tuple(nodes),
        edges=tuple(edges),
        where=where,
        returns=returns,
        order_by=order_by,
        order_desc=order_desc,
        limit=draw(st.none() | st.integers(0, 50)),
    )


@st.composite
def _call_queries(draw):
    return CallQuery(
        procedure=draw(st.sampled_from(PROCEDURES)),
        args=tuple(
            draw(st.lists(_literals, max_size=3))
        ),
        limit=draw(st.none() | st.integers(0, 50)),
    )


@given(_match_queries())
@settings(max_examples=200, deadline=None)
def test_match_round_trip(query):
    assert parse(render(query)) == query


@given(_call_queries())
@settings(max_examples=100, deadline=None)
def test_call_round_trip(query):
    assert parse(render(query)) == query


@given(_match_queries())
@settings(max_examples=100, deadline=None)
def test_render_is_stable(query):
    """render ∘ parse ∘ render is the identity on rendered text."""
    text = render(query)
    assert render(parse(text)) == text
