"""The simulated web: HTML pages hosting security reports.

The collection pipeline must *crawl* website sources rather than read
their records directly (Section II-B), so every report is rendered into a
real HTML page with the package names/versions embedded in the markup the
way security blogs structure them: a prose narrative, a package list and
an IOC section. Noise pages (release notes, hiring posts, ...) are mixed
in to exercise the crawler's keyword filter.

Fault contract: chaos runs wrap this class in
``repro.reliability.FaultyWeb``, which proxies ``fetch``/``site_index``
and injects unreachable, slow and truncated responses. Two invariants
keep that wrapper honest: a URL absent from ``pages`` returns ``None``
without drawing a fault, and every rendered page ends with ``</html>``
(see ``repro.crawler.html.render_page``) so truncation is detectable by
the spider's integrity check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.crawler.html import render_page, tag, text
from repro.ecosystem.clock import day_to_date
from repro.intel.reports import ReportCorpus, SecurityReport, Website
from repro.intel.sources import (
    AttributionOutcome,
    SourceEntry,
    SourceKind,
    SourceProfile,
)


def advisory_site(profile: SourceProfile) -> str:
    """The per-package advisory database domain of a website source.

    Website sources publish *two* streams: narrative blog reports (a few
    packages each — the co-existing-edge corpus) and a per-package
    advisory database (the bulk record stream, like security.snyk.io/vuln
    with one page per advisory). The collection pipeline harvests records
    from both.
    """
    return "vuln." + profile.website.split("/")[0]


@dataclass
class WebPage:
    """One fetchable page of the simulated web."""

    url: str
    html: str
    site: str
    is_report: bool  # ground truth for crawler evaluation only


@dataclass
class SimulatedWeb:
    """URL -> page store with per-site listings (the crawl frontier)."""

    pages: Dict[str, WebPage] = field(default_factory=dict)
    sites: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, page: WebPage) -> None:
        if page.url not in self.pages:
            self.sites.setdefault(page.site, []).append(page.url)
        self.pages[page.url] = page

    def fetch(self, url: str) -> Optional[WebPage]:
        return self.pages.get(url)

    def site_index(self, site: str) -> List[str]:
        """URLs listed on a site's index page (the crawler's seed)."""
        return list(self.sites.get(site, ()))

    def __len__(self) -> int:
        return len(self.pages)


_NOISE_TOPICS = [
    ("Release notes for our SDK", "We shipped version {n} with faster builds."),
    ("We are hiring engineers", "Join our platform team; benefits include."),
    ("Quarterly product update", "New dashboards and alerting arrived."),
    ("Conference recap", "Highlights from the annual developer summit."),
    ("How we scaled our database", "Sharding lessons learned in production."),
]


def render_report_page(report: SecurityReport) -> str:
    """Render one security report in the structure real blogs use.

    The package list is an ``<ul class="package-list">`` of
    ``<code>name==version</code>`` items — the structured part the
    extractor prefers — while the narrative also mentions the first
    packages inline, exercising the regex fallback.
    """
    date = day_to_date(report.publish_day).isoformat()
    narrative_names = ", ".join(
        f"'{p.name}' (version {p.version})" for p in report.packages[:3]
    )
    paragraphs = [
        tag(
            "p",
            text(
                f"On {date} our research team identified malicious packages "
                f"in the {report.ecosystem.upper()} registry. The packages "
                f"{narrative_names} execute unauthorized behaviors on "
                "installation."
            ),
        ),
        tag(
            "p",
            text(
                f"We attribute this activity to the actor "
                f"{report.actor_alias or 'unknown'} based on shared "
                "infrastructure and code reuse. All identified packages "
                "have been reported to the registry for removal."
            ),
        ),
    ]
    items = [
        tag("li", tag("code", text(f"{p.name}=={p.version}")))
        for p in report.packages
    ]
    package_list = tag("ul", items, class_="package-list")
    iocs = tag(
        "ul",
        [
            tag("li", tag("code", text("hxxp://cdn-telemetry.example.invalid"))),
            tag("li", tag("code", text("198.51.100.23"))),
        ],
        class_="ioc-list",
    )
    body = [
        tag("h1", text(report.title)),
        tag("div", text(f"Published {date}"), class_="meta"),
        *paragraphs,
        tag("h2", text("Malicious packages")),
        package_list,
        tag("h2", text("Indicators of compromise")),
        iocs,
    ]
    return render_page(
        report.title, body, keywords=("malicious", "malware", "supply chain")
    )


def render_advisory_page(entry: SourceEntry) -> str:
    """Render one per-package advisory database page."""
    date = day_to_date(entry.report_day).isoformat()
    package = entry.package
    title = f"Malicious package advisory: {package.name}"
    body = [
        tag("h1", text(title)),
        tag("div", text(f"Published {date}"), class_="meta"),
        tag(
            "p",
            text(
                f"The {package.ecosystem.upper()} package below was "
                "determined to be malicious and reported to the registry."
            ),
        ),
        tag(
            "ul",
            [tag("li", tag("code", text(f"{package.name}=={package.version}")))],
            class_="package-list",
        ),
    ]
    return render_page(title, body, keywords=("malicious", "advisory"))


def render_noise_page(site: str, idx: int, rng: random.Random) -> str:
    title, body = rng.choice(_NOISE_TOPICS)
    return render_page(
        title,
        [
            tag("h1", text(title)),
            tag("p", text(body.format(n=rng.randrange(1, 30)))),
        ],
    )


def build_web(
    corpus: ReportCorpus,
    outcome: Optional[AttributionOutcome] = None,
    seed: int = 31,
    noise_per_site: int = 3,
) -> SimulatedWeb:
    """Render reports, advisory databases and noise pages into a web."""
    rng = random.Random(seed)
    web = SimulatedWeb()
    for report in corpus.reports:
        web.add(
            WebPage(
                url=report.url,
                html=render_report_page(report),
                site=report.website,
                is_report=True,
            )
        )
    if outcome is not None:
        # Resolve against the outcome's own profiles (not the module
        # global): a world attributed with custom/connector-registered
        # sources must render their advisory pages too.
        profile_index = {p.key: p for p in outcome.profiles}
        for entry in outcome.entries:
            profile = profile_index.get(entry.source)
            if profile is None or profile.kind != SourceKind.WEBSITE:
                continue
            site = advisory_site(profile)
            package = entry.package
            url = (
                f"https://{site}/{package.ecosystem}/{package.name}/"
                f"{package.version}"
            )
            web.add(
                WebPage(
                    url=url,
                    html=render_advisory_page(entry),
                    site=site,
                    is_report=False,
                )
            )
    for site in corpus.websites:
        for idx in range(noise_per_site):
            url = f"https://{site.domain}/post-{idx:03d}"
            web.add(
                WebPage(
                    url=url,
                    html=render_noise_page(site.domain, idx, rng),
                    site=site.domain,
                    is_report=False,
                )
            )
    return web
