"""Two-tier artifact store: bounded in-memory LRU + on-disk cache.

The memory tier keys live objects by ``(stage, fingerprint)`` so every
facade in one process (``repro.world`` defaults, ``PaperArtifacts``, the
service, benchmarks) shares a single copy of each expensive artifact.
The disk tier persists serialisable stages (the collected dataset and
the built MALGRAPH) under ``<cache_dir>/<stage>/<fingerprint>/`` so a
*new* process skips the simulation entirely.

Robustness rules, in order of importance:

* never crash the pipeline because of the cache — any I/O or decode
  failure degrades to a miss and the stage rebuilds;
* a reader never observes a partial entry — writers build a temp
  directory and ``os.replace`` it into place atomically;
* entries written by an incompatible version are detected by the
  ``schema_version`` stamp in ``meta.json`` and treated as misses.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.pipeline.fingerprint import SCHEMA_VERSION

PathLike = Union[str, Path]

#: Environment overrides honoured when no explicit argument is given.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
NO_DISK_CACHE_ENV = "REPRO_NO_DISK_CACHE"

META_FILENAME = "meta.json"

#: Tier name of the persistent embedding cache. Unlike the stage tiers
#: (one atomic directory per artifact) an embeddings entry grows
#: incrementally: one ``<sha256>.npy`` vector file per embedded
#: artifact, under one directory per embedder fingerprint.
EMBEDDINGS_STAGE = "embeddings"

#: Default bound on live artifacts held in memory (a full-scale world
#: plus its collection and MALGRAPH is three entries).
DEFAULT_MEMORY_CAPACITY = 8


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


class ArtifactStore:
    """Bounded memory LRU in front of an optional on-disk cache."""

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        disk_enabled: Optional[bool] = None,
        memory_capacity: int = DEFAULT_MEMORY_CAPACITY,
    ):
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
        )
        if disk_enabled is None:
            disk_enabled = not os.environ.get(NO_DISK_CACHE_ENV)
        self.disk_enabled = bool(disk_enabled)
        self.memory_capacity = memory_capacity
        self._memory: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.RLock()

    # -- memory tier -------------------------------------------------------
    def get_memory(self, stage: str, fingerprint: str) -> Optional[Any]:
        with self._lock:
            key = (stage, fingerprint)
            if key not in self._memory:
                return None
            self._memory.move_to_end(key)
            return self._memory[key]

    def put_memory(self, stage: str, fingerprint: str, obj: Any) -> None:
        with self._lock:
            key = (stage, fingerprint)
            self._memory[key] = obj
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_capacity:
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    @property
    def memory_size(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- disk tier ---------------------------------------------------------
    def _entry_dir(self, stage: str, fingerprint: str) -> Path:
        return self.cache_dir / stage / fingerprint

    def _read_meta(self, entry_dir: Path) -> Optional[dict]:
        try:
            raw = json.loads((entry_dir / META_FILENAME).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict):
            return None
        return raw

    def _meta_valid(self, meta: Optional[dict], stage: str, fingerprint: str) -> bool:
        return (
            meta is not None
            and meta.get("schema_version") == SCHEMA_VERSION
            and meta.get("stage") == stage
            and meta.get("fingerprint") == fingerprint
        )

    def has_disk(self, stage: str, fingerprint: str) -> bool:
        """A structurally valid (schema-matching) entry exists on disk."""
        if not self.disk_enabled:
            return False
        entry_dir = self._entry_dir(stage, fingerprint)
        return self._meta_valid(self._read_meta(entry_dir), stage, fingerprint)

    def get_disk(self, stage: str, fingerprint: str, codec) -> Optional[Any]:
        """Load one entry, or ``None`` on any miss/corruption/mismatch."""
        if not self.disk_enabled:
            return None
        entry_dir = self._entry_dir(stage, fingerprint)
        if not self._meta_valid(self._read_meta(entry_dir), stage, fingerprint):
            return None
        try:
            return codec.load(entry_dir)
        except Exception:
            # Corrupt payload: a miss, never a crash. Leave removal to the
            # writer that replaces the entry.
            return None

    def put_disk(
        self,
        stage: str,
        fingerprint: str,
        obj: Any,
        codec,
        config_payload: Optional[dict] = None,
    ) -> bool:
        """Atomically (re)write one entry; best-effort, returns success."""
        if not self.disk_enabled:
            return False
        final = self._entry_dir(stage, fingerprint)
        tmp = final.parent / f".tmp-{fingerprint}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        try:
            tmp.mkdir(parents=True, exist_ok=False)
            codec.save(obj, tmp)
            meta = {
                "schema_version": SCHEMA_VERSION,
                "stage": stage,
                "fingerprint": fingerprint,
                "config": config_payload or {},
            }
            (tmp / META_FILENAME).write_text(json.dumps(meta, sort_keys=True))
            if final.exists():
                # Stale or corrupt entry being replaced; a concurrent
                # reader mid-load falls back to a rebuild.
                shutil.rmtree(final, ignore_errors=True)
            os.replace(tmp, final)
            return True
        except OSError:
            # Lost a race with another writer, or the cache dir is not
            # writable; either way the build result is still returned.
            shutil.rmtree(tmp, ignore_errors=True)
            return False

    # -- embeddings tier ---------------------------------------------------
    def embedding_memory(self, embedder_fp: str) -> Dict[str, Any]:
        """The live sha256 → vector map for one embedder fingerprint.

        Held as a single memory-tier entry (so the LRU bound counts one
        slot per embedder config, not one per vector) and mutated in
        place by the similarity pipeline — a second build in the same
        process starts fully warm.
        """
        with self._lock:
            key = (EMBEDDINGS_STAGE, embedder_fp)
            cache = self._memory.get(key)
            if cache is None:
                cache = {}
                self._memory[key] = cache
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_capacity:
                self._memory.popitem(last=False)
            return cache

    def load_embeddings(
        self, embedder_fp: str, shas: List[str]
    ) -> Dict[str, Any]:
        """Read the requested vectors from disk; absent or corrupt
        vector files are simply misses (the caller re-embeds)."""
        import numpy as np

        loaded: Dict[str, Any] = {}
        if not self.disk_enabled:
            return loaded
        entry_dir = self._entry_dir(EMBEDDINGS_STAGE, embedder_fp)
        if not self._meta_valid(
            self._read_meta(entry_dir), EMBEDDINGS_STAGE, embedder_fp
        ):
            return loaded
        for sha in shas:
            try:
                loaded[sha] = np.load(
                    entry_dir / f"{sha}.npy", allow_pickle=False
                )
            except (OSError, ValueError):
                continue
        return loaded

    def save_embeddings(
        self,
        embedder_fp: str,
        vectors: Dict[str, Any],
        config_payload: Optional[dict] = None,
    ) -> int:
        """Persist vectors for one embedder fingerprint; best-effort.

        Each vector is written to a temp file and ``os.replace``d into
        place, so readers never observe a partial ``.npy``. Returns the
        number of vectors written.
        """
        import numpy as np

        if not self.disk_enabled or not vectors:
            return 0
        entry_dir = self._entry_dir(EMBEDDINGS_STAGE, embedder_fp)
        try:
            if not self._meta_valid(
                self._read_meta(entry_dir), EMBEDDINGS_STAGE, embedder_fp
            ):
                # Stale-schema or foreign leftovers: start the entry over
                # rather than mixing vector generations.
                if entry_dir.exists():
                    shutil.rmtree(entry_dir, ignore_errors=True)
                entry_dir.mkdir(parents=True, exist_ok=True)
                meta = {
                    "schema_version": SCHEMA_VERSION,
                    "stage": EMBEDDINGS_STAGE,
                    "fingerprint": embedder_fp,
                    "config": config_payload or {},
                }
                tmp_meta = entry_dir / f".tmp-meta-{os.getpid()}"
                tmp_meta.write_text(json.dumps(meta, sort_keys=True))
                os.replace(tmp_meta, entry_dir / META_FILENAME)
        except OSError:
            return 0
        written = 0
        for sha, vector in vectors.items():
            tmp = entry_dir / f".tmp-{sha}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
            try:
                with open(tmp, "wb") as handle:
                    np.save(handle, vector, allow_pickle=False)
                os.replace(tmp, entry_dir / f"{sha}.npy")
                written += 1
            except OSError:
                tmp.unlink(missing_ok=True)
        return written

    def clear_disk(self) -> int:
        """Delete every disk entry; returns the number removed."""
        removed = 0
        if not self.cache_dir.exists():
            return removed
        for stage_dir in sorted(self.cache_dir.iterdir()):
            if not stage_dir.is_dir():
                continue
            for entry in sorted(stage_dir.iterdir()):
                if entry.is_dir():
                    shutil.rmtree(entry, ignore_errors=True)
                    removed += 1
            try:
                stage_dir.rmdir()
            except OSError:
                pass
        return removed

    def disk_entries(self) -> List[Dict[str, Any]]:
        """Inventory of valid disk entries (for ``repro cache info``)."""
        entries: List[Dict[str, Any]] = []
        if not (self.disk_enabled and self.cache_dir.exists()):
            return entries
        for stage_dir in sorted(self.cache_dir.iterdir()):
            if not stage_dir.is_dir() or stage_dir.name.startswith("."):
                continue
            for entry in sorted(stage_dir.iterdir()):
                meta = self._read_meta(entry)
                if not self._meta_valid(meta, stage_dir.name, entry.name):
                    continue
                size = sum(
                    f.stat().st_size for f in entry.rglob("*") if f.is_file()
                )
                entries.append(
                    {
                        "stage": stage_dir.name,
                        "fingerprint": entry.name,
                        "bytes": size,
                        "config": meta.get("config", {}),
                    }
                )
        return entries
