"""Query planner and executor over :class:`GraphIndexes`.

**Planner.** A match chain can be entered at any variable: the planner
scores every equality constraint (inline ``{attr: value}`` props and
``var.attr = literal`` conjuncts on the WHERE's AND-spine) against the
inverted attribute indexes and starts the traversal at the variable
with the smallest candidate set. Unconstrained queries fall back to a
scan of every node.

**Executor.** From the start variable the chain is expanded rightwards
then leftwards with per-variable pruning (inline props plus the
AND-spine comparisons mentioning only that variable), using the
direction-appropriate neighbour map for each edge pattern. A
variable-length hop (``*lo..hi``) binds the far variable to every node
whose *shortest* distance over the selected edge types and direction
falls inside the range (breadth-first with a visited set, so the walk
is linear in the touched neighbourhood, not the path count).

Row order is canonical — bindings sort by their node-id tuple before
projection — so the indexed executor, the naive scan baseline and every
serving surface (Python API, CLI, ``/v1/query``) return identical rows
for the same query.

``naive=True`` disables index seeding, selectivity planning and WHERE
pushdown (the traversal starts at the leftmost variable over a full
node scan and filters complete bindings at the end; inline props still
apply, since they define the pattern); it exists as the correctness
baseline and the benchmark's comparison point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.graph import EdgeType
from repro.core.query.ast import (
    BoolExpr,
    CallQuery,
    Comparison,
    EdgePattern,
    MatchQuery,
    NodePattern,
    QueryAst,
    QueryError,
)
from repro.core.query.indexes import INDEXED_ATTRS, GraphIndexes


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Plan:
    """Where execution enters the pattern and why."""

    start: int  # index into query.nodes
    seed_attr: Optional[str] = None
    seed_value: Any = None
    estimated: int = 0

    def describe(self, query: MatchQuery) -> str:
        var = query.nodes[self.start].var
        if self.seed_attr is None:
            return f"scan all nodes as ({var})"
        return (
            f"seed ({var}) from index {self.seed_attr}="
            f"{self.seed_value!r} (~{self.estimated} candidates)"
        )


def _and_spine(where: Optional[BoolExpr]) -> List[Comparison]:
    """Top-level AND conjuncts of the WHERE clause (empty under OR)."""
    if where is None:
        return []
    if where.op == "or":
        return []
    return [part for part in where.parts if isinstance(part, Comparison)]


def _equality_constraints(
    query: MatchQuery, index: int
) -> List[Tuple[str, Any]]:
    """``attr == value`` constraints binding variable ``index``."""
    node = query.nodes[index]
    found: List[Tuple[str, Any]] = list(node.props)
    for comparison in _and_spine(query.where):
        if (
            comparison.var == node.var
            and comparison.op == "="
            and not comparison.negated
        ):
            found.append((comparison.attr, comparison.literal))
    return found


def plan_match(query: MatchQuery, indexes: GraphIndexes) -> Plan:
    """Pick the most selective indexed entry point into the pattern."""
    best: Optional[Plan] = None
    for i in range(len(query.nodes)):
        for attr, value in _equality_constraints(query, i):
            count = indexes.candidate_count(attr, value)
            if count is None:
                continue
            if best is None or count < best.estimated:
                best = Plan(start=i, seed_attr=attr, seed_value=value, estimated=count)
    if best is not None:
        return best
    return Plan(start=0, estimated=len(indexes.nodes))


# ---------------------------------------------------------------------------
# Traversal primitives
# ---------------------------------------------------------------------------

def _neighbor_fn(
    indexes: GraphIndexes, edge: EdgePattern, forward: bool
) -> Callable[[str], Iterable[str]]:
    """Neighbour expansion across ``edge`` in one chain direction.

    ``forward`` walks the pattern left-to-right; an ``out`` edge then
    follows the forward map, while walking right-to-left follows the
    reverse map (and vice versa for ``in``).
    """
    direction = edge.direction
    if direction == "out":
        direction = "out" if forward else "in"
    elif direction == "in":
        direction = "in" if forward else "out"
    types = edge.types
    return lambda node: indexes.neighbors(node, types, direction)


def reachable(
    neighbor_fn: Callable[[str], Iterable[str]],
    start: str,
    min_hops: int,
    max_hops: Optional[int],
) -> List[str]:
    """Nodes whose shortest distance from ``start`` is in [min, max].

    Breadth-first with a visited set: each node is bound at its minimal
    depth only, so the expansion is linear in the touched neighbourhood
    and never enumerates individual paths.
    """
    seen = {start}
    frontier: List[str] = [start]
    out: List[str] = []
    depth = 0
    while frontier and (max_hops is None or depth < max_hops):
        depth += 1
        next_frontier: set = set()
        for node in frontier:
            for other in neighbor_fn(node):
                if other not in seen:
                    next_frontier.add(other)
        seen.update(next_frontier)
        frontier = sorted(next_frontier)
        if depth >= min_hops:
            out.extend(frontier)
    return sorted(out)


def _hop_targets(
    indexes: GraphIndexes, node: str, edge: EdgePattern, forward: bool
) -> List[str]:
    neighbor_fn = _neighbor_fn(indexes, edge, forward)
    if not edge.is_variable:
        return list(neighbor_fn(node))
    return reachable(neighbor_fn, node, edge.min_hops, edge.max_hops)


# ---------------------------------------------------------------------------
# Match execution
# ---------------------------------------------------------------------------

def _node_predicate(
    query: MatchQuery, index: int, pushdown: bool
) -> Callable[[Dict[str, Any]], bool]:
    """Per-variable pruning.

    Always enforces the pattern's inline props (they define the match,
    not an optimisation). With ``pushdown`` the AND-spine WHERE
    comparisons mentioning only this variable are applied at bind time
    too; the naive baseline leaves them for the final filter.
    """
    node = query.nodes[index]
    comparisons = (
        [c for c in _and_spine(query.where) if c.var == node.var]
        if pushdown
        else []
    )
    props = node.props
    if not comparisons and not props:
        return lambda attrs: True

    def predicate(attrs: Dict[str, Any]) -> bool:
        for key, value in props:
            if attrs.get(key) != value:
                return False
        return all(c.evaluate(attrs) for c in comparisons)

    return predicate


def _match_bindings(
    query: MatchQuery, indexes: GraphIndexes, naive: bool
) -> Tuple[List[Tuple[str, ...]], Plan]:
    """All satisfying bindings as node-id tuples (canonically sorted)."""
    n = len(query.nodes)
    if naive:
        plan = Plan(start=0, estimated=len(indexes.nodes))
    else:
        plan = plan_match(query, indexes)
    prune = [_node_predicate(query, i, pushdown=not naive) for i in range(n)]

    if plan.seed_attr is not None:
        seeds: Iterable[str] = indexes.lookup(plan.seed_attr, plan.seed_value)
    else:
        seeds = indexes.nodes

    bindings: List[Tuple[str, ...]] = []
    assignment: List[Optional[str]] = [None] * n

    def emit_if_satisfied() -> None:
        bound = {
            query.nodes[i].var: indexes.node_attrs(assignment[i])
            for i in range(n)
        }
        if query.where is None or query.where.evaluate(bound):
            bindings.append(tuple(assignment))  # type: ignore[arg-type]

    def extend_right(i: int) -> None:
        """Bind node i+1..n-1, then hand off to the left expansion."""
        if i + 1 >= n:
            extend_left(plan.start)
            return
        edge = query.edges[i]
        for candidate in _hop_targets(indexes, assignment[i], edge, forward=True):
            if not prune[i + 1](indexes.node_attrs(candidate)):
                continue
            assignment[i + 1] = candidate
            extend_right(i + 1)
            assignment[i + 1] = None

    def extend_left(i: int) -> None:
        """Bind node i-1..0, then emit the complete binding."""
        if i - 1 < 0:
            emit_if_satisfied()
            return
        edge = query.edges[i - 1]
        for candidate in _hop_targets(indexes, assignment[i], edge, forward=False):
            if not prune[i - 1](indexes.node_attrs(candidate)):
                continue
            assignment[i - 1] = candidate
            extend_left(i - 1)
            assignment[i - 1] = None

    for seed in seeds:
        if not prune[plan.start](indexes.node_attrs(seed)):
            continue
        assignment[plan.start] = seed
        extend_right(plan.start)
        assignment[plan.start] = None

    bindings.sort()
    return bindings, plan


def _project(
    query: MatchQuery,
    bindings: List[Tuple[str, ...]],
    indexes: GraphIndexes,
) -> List[Tuple]:
    if any(item.is_count for item in query.returns):
        return [(len(bindings),)]

    var_index = {node.var: i for i, node in enumerate(query.nodes)}

    def cell(binding: Tuple[str, ...], var: str, attr: Optional[str]):
        node = binding[var_index[var]]
        if attr is None:
            return node
        return indexes.node_attrs(node).get(attr)

    rows = [
        tuple(cell(b, item.var, item.attr) for item in query.returns)
        for b in bindings
    ]

    if query.order_by is not None:
        item = query.order_by
        # index tiebreak: equal keys must never fall through to comparing
        # row tuples (mixed None/str rows are unorderable), and ties stay
        # stable in canonical binding order
        decorated = sorted(
            (
                (cell(b, item.var, item.attr), idx, row)
                for idx, (b, row) in enumerate(zip(bindings, rows))
            ),
            key=lambda triple: ((triple[0] is None, triple[0]), triple[1]),
            reverse=query.order_desc,
        )
        rows = [row for _key, _idx, row in decorated]
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


# ---------------------------------------------------------------------------
# Procedures
# ---------------------------------------------------------------------------

def resolve_selector(indexes: GraphIndexes, spec: Any) -> List[str]:
    """Resolve a procedure argument to a node set.

    Accepted forms: an exact node id (``pypi:pkg@1.0``), a bare package
    name, or ``attr:value`` over any indexed attribute — e.g.
    ``actor:wolf-spider``, ``campaign:c-0001``, ``sg:SG-0003``,
    ``ecosystem:npm``.
    """
    if not isinstance(spec, str) or not spec:
        raise QueryError(f"bad node selector {spec!r} (need a string)")
    if spec in indexes.attrs:
        return [spec]
    if ":" in spec:
        attr, _, value = spec.partition(":")
        if attr in INDEXED_ATTRS:
            found = indexes.lookup(attr, value)
            if found:
                return list(found)
        members = indexes.group_members.get(spec.partition(":")[2], ())
        if members:
            return list(members)
    named = indexes.lookup("name", spec)
    if named:
        return list(named)
    raise QueryError(
        f"unknown node selector {spec!r}; use a node id, a package name, "
        f"or attr:value over one of {list(INDEXED_ATTRS)}"
    )


def _parse_types(spec: Any) -> Tuple[EdgeType, ...]:
    if spec is None or spec == "":
        return ()
    if not isinstance(spec, str):
        raise QueryError(f"bad edge-type list {spec!r}")
    types = []
    for part in spec.split("|"):
        try:
            types.append(EdgeType(part.strip().lower()))
        except ValueError:
            raise QueryError(
                f"unknown edge type {part.strip()!r}; expected one of "
                f"{[t.value for t in EdgeType]}"
            ) from None
    return tuple(types)


def shortest_path(
    indexes: GraphIndexes,
    sources: Sequence[str],
    targets: Sequence[str],
    edge_types: Sequence[EdgeType] = (),
) -> List[str]:
    """Deterministic multi-source BFS shortest path (node-id list).

    Traverses the undirected neighbour maps of the chosen edge types
    (all four when empty); returns ``[]`` when no path exists. Ties
    break toward lexicographically smaller expansion order.
    """
    target_set = set(targets)
    parents: Dict[str, Optional[str]] = {}
    queue: deque = deque()
    for source in sorted(set(sources)):
        parents[source] = None
        queue.append(source)
        if source in target_set:
            return [source]
    types = tuple(edge_types)
    while queue:
        node = queue.popleft()
        for other in indexes.neighbors(node, types, "any"):
            if other in parents:
                continue
            parents[other] = node
            if other in target_set:
                path = [other]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            queue.append(other)
    return []


def neighborhood(
    indexes: GraphIndexes,
    sources: Sequence[str],
    k: int,
    edge_types: Sequence[EdgeType] = (),
) -> List[Tuple[str, int]]:
    """Every node within ``k`` hops of ``sources`` with its distance.

    Sources are included at distance 0; rows sort by (distance, node).
    """
    if k < 0:
        raise QueryError(f"neighborhood radius must be >= 0, got {k}")
    types = tuple(edge_types)
    distance: Dict[str, int] = {source: 0 for source in sources}
    frontier = sorted(distance)
    depth = 0
    while frontier and depth < k:
        depth += 1
        next_frontier: set = set()
        for node in frontier:
            for other in indexes.neighbors(node, types, "any"):
                if other not in distance:
                    distance[other] = depth
                    next_frontier.add(other)
        frontier = sorted(next_frontier)
    return sorted(distance.items(), key=lambda pair: (pair[1], pair[0]))


def _execute_call(
    query: CallQuery, indexes: GraphIndexes
) -> Tuple[List[str], List[Tuple]]:
    args = query.args
    if query.procedure == "shortest_path":
        if not 2 <= len(args) <= 3:
            raise QueryError(
                "shortest_path(src, dst[, edge_types]) takes 2 or 3 arguments"
            )
        sources = resolve_selector(indexes, args[0])
        targets = resolve_selector(indexes, args[1])
        types = _parse_types(args[2] if len(args) == 3 else None)
        path = shortest_path(indexes, sources, targets, types)
        rows: List[Tuple] = [(step, node) for step, node in enumerate(path)]
        columns = ["step", "node"]
    elif query.procedure == "neighborhood":
        if not 2 <= len(args) <= 3:
            raise QueryError(
                "neighborhood(node, k[, edge_types]) takes 2 or 3 arguments"
            )
        if not isinstance(args[1], int):
            raise QueryError(
                f"neighborhood radius must be an integer, got {args[1]!r}"
            )
        sources = resolve_selector(indexes, args[0])
        types = _parse_types(args[2] if len(args) == 3 else None)
        rows = list(neighborhood(indexes, sources, args[1], types))
        columns = ["node", "distance"]
    else:  # pragma: no cover - the parser rejects unknown procedures
        raise QueryError(f"unknown procedure {query.procedure!r}")
    if query.limit is not None:
        rows = rows[: query.limit]
    return columns, rows


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def execute(
    query: QueryAst, indexes: GraphIndexes, naive: bool = False
) -> Tuple[List[str], List[Tuple], Optional[Plan]]:
    """Run a parsed query; returns (columns, rows, plan)."""
    if isinstance(query, CallQuery):
        columns, rows = _execute_call(query, indexes)
        return columns, rows, None
    bindings, plan = _match_bindings(query, indexes, naive=naive)
    rows = _project(query, bindings, indexes)
    columns = [item.label for item in query.returns]
    return columns, rows, plan
