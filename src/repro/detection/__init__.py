"""Rule-based malicious-package detection (GuardDog-style scanner)."""

from repro.detection.detector import (
    Detector,
    EvaluationResult,
    Verdict,
    evaluate,
)
from repro.detection.families import (
    CATEGORIES,
    FamilyVerdict,
    classify_artifact,
    classify_many,
)
from repro.detection.rules import DEFAULT_RULES, Finding, Rule
from repro.detection.scanner import (
    RegistryScanner,
    ScanAlert,
    evaluate_on_corpus,
)
from repro.detection.typosquat import (
    SquatMatch,
    TyposquatIndex,
    damerau_levenshtein,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_RULES",
    "Detector",
    "EvaluationResult",
    "FamilyVerdict",
    "Finding",
    "RegistryScanner",
    "Rule",
    "ScanAlert",
    "SquatMatch",
    "TyposquatIndex",
    "Verdict",
    "classify_artifact",
    "classify_many",
    "damerau_levenshtein",
    "evaluate",
    "evaluate_on_corpus",
]
