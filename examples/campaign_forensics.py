#!/usr/bin/env python
"""Campaign forensics: reconstruct one SSC attack campaign end to end.

Starting from the collected dataset, this example picks a multi-release
campaign, orders its release attempts, and reconstructs the life cycle
the paper describes in Figures 6/8/10:

    {changing -> release -> detection -> removal}

For each consecutive pair of attempts it diffs the artifacts to recover
the changing operations (CN/CV/CD/CDep/CC), then checks the recovered
story against the simulator's ground truth.

Run::

    python examples/campaign_forensics.py
"""

from __future__ import annotations

from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.ecosystem.clock import day_to_date
from repro.malware.operations import diff_ops, format_ops
from repro.world import WorldConfig, build_world, collect


def main() -> None:
    world = build_world(WorldConfig(seed=7, scale=0.4))
    dataset = collect(world).dataset
    graph = MalGraph.build(dataset)

    # Pick the richest co-existing group whose artifacts were recovered —
    # a campaign that a security report tied together.
    candidates = [
        g for g in graph.groups(GroupKind.CG)
        if sum(1 for e in g.members if e.artifact is not None) >= 4
    ]
    group = max(candidates, key=lambda g: len(g.members))
    members = sorted(
        group.members,
        key=lambda e: (e.release_day if e.release_day is not None else 1 << 30),
    )

    print(f"Campaign with {len(members)} release attempts "
          f"({members[0].package.ecosystem} ecosystem)\n")
    print("Release timeline:")
    for entry in members:
        pkg = entry.package
        release = (day_to_date(entry.release_day).isoformat()
                   if entry.release_day is not None else "unknown")
        removal = (day_to_date(entry.removal_day).isoformat()
                   if entry.removal_day is not None else "still live")
        print(f"  {release}  {pkg.name}@{pkg.version:<8} "
              f"downloads={entry.downloads:<6} removed={removal}")

    print("\nChanging operations between consecutive attempts:")
    previous = None
    for entry in members:
        if entry.artifact is None:
            continue
        if previous is not None:
            ops = diff_ops(previous.artifact, entry.artifact)
            print(f"  {previous.package.name}@{previous.package.version}"
                  f" -> {entry.package.name}@{entry.package.version}: "
                  f"{format_ops(ops)}")
        previous = entry

    # Ground truth check: the collection pipeline attaches the simulator's
    # campaign ids, so we can ask how pure the recovered group is.
    campaign_ids = [e.campaign_id for e in members if e.campaign_id]
    if campaign_ids:
        dominant = max(set(campaign_ids), key=campaign_ids.count)
        purity = campaign_ids.count(dominant) / len(campaign_ids)
        print(f"\nGround truth: dominant campaign {dominant} "
              f"(purity {purity:.0%} of attributed members)")
        actors = {e.actor for e in members if e.actor}
        print(f"Actors behind the group: {sorted(actors)}")


if __name__ == "__main__":
    main()
