"""PipelineRuntime: stage resolution, reporting, facade integration."""

from __future__ import annotations

from repro.core.similarity import SimilarityConfig
from repro.paper import PaperArtifacts, default_artifacts
from repro.pipeline import (
    ArtifactStore,
    PipelineReport,
    PipelineRuntime,
    STAGES,
)
from repro.world import WorldConfig, default_collection, default_dataset, default_world

SMALL = WorldConfig(seed=3, scale=0.05)


def runtime_for(tmp_path, disk_enabled=True, store=None) -> PipelineRuntime:
    store = store or ArtifactStore(
        cache_dir=tmp_path / "cache", disk_enabled=disk_enabled
    )
    return PipelineRuntime(SMALL, store=store, report=PipelineReport())


def test_first_resolution_builds_then_memory_hits(tmp_path):
    runtime = runtime_for(tmp_path, disk_enabled=False)
    first = runtime.malgraph()
    assert runtime.malgraph() is first
    counts = runtime.report.counts()
    for stage in STAGES:
        assert counts[stage]["misses"] == 1, counts
    # The second malgraph() call hit memory and elided the upstream stages.
    assert counts["malgraph"]["hits"] == 1
    assert counts["collection"]["hits"] >= 1
    assert counts["world"]["hits"] >= 1


def test_world_identity_is_preserved(tmp_path):
    runtime = runtime_for(tmp_path)
    assert runtime.world() is runtime.world()


def test_fresh_store_resolves_from_disk(tmp_path):
    warm = runtime_for(tmp_path).warm()
    baseline = warm.malgraph()

    # A fresh store + report over the same cache dir: a cold process.
    cold = runtime_for(tmp_path)
    reloaded = cold.malgraph()
    counts = cold.report.counts()
    for stage in STAGES:
        assert counts[stage] == {"hits": 1, "misses": 0}, counts
    assert reloaded is not baseline

    from repro.analysis import compute_graph_stats

    assert (
        compute_graph_stats(reloaded).render()
        == compute_graph_stats(baseline).render()
    )


def test_corrupt_disk_entry_triggers_clean_rebuild(tmp_path):
    warm = runtime_for(tmp_path).warm()
    store = warm.store
    for stage in ("collection", "malgraph"):
        fp = warm.fingerprint(stage)
        entry_dir = store.cache_dir / stage / fp
        for payload in entry_dir.iterdir():
            payload.write_text("corrupted beyond recognition")

    cold = runtime_for(tmp_path)
    rebuilt = cold.malgraph()  # must not raise
    assert rebuilt.graph.nodes()
    counts = cold.report.counts()
    assert counts["malgraph"]["misses"] == 1
    # The rebuild repaired the cache: the next cold store hits again.
    repaired = runtime_for(tmp_path)
    repaired.malgraph()
    assert repaired.report.counts()["malgraph"] == {"hits": 1, "misses": 0}


def test_report_render_mentions_every_stage(tmp_path):
    runtime = runtime_for(tmp_path, disk_enabled=False)
    runtime.warm()
    rendered = runtime.report.render()
    for stage in STAGES:
        assert stage in rendered


def test_malgraph_fingerprint_includes_similarity(tmp_path):
    default = PipelineRuntime(SMALL, store=ArtifactStore(disk_enabled=False))
    tweaked = PipelineRuntime(
        SMALL,
        SimilarityConfig(min_similarity=None),
        store=ArtifactStore(disk_enabled=False),
    )
    assert default.fingerprint("malgraph") != tweaked.fingerprint("malgraph")
    assert default.fingerprint("world") == tweaked.fingerprint("world")


# -- facade integration ------------------------------------------------------

def test_world_defaults_share_one_artifact():
    assert default_world(seed=3, scale=0.05) is default_world(seed=3, scale=0.05)
    assert default_collection(seed=3, scale=0.05) is default_collection(
        seed=3, scale=0.05
    )
    assert default_dataset(seed=3, scale=0.05) is default_dataset(seed=3, scale=0.05)


def test_paper_facade_shares_the_store_with_world_defaults():
    artifacts = PaperArtifacts(SMALL)
    assert artifacts.collection is default_collection(seed=3, scale=0.05)
    assert artifacts.dataset is default_dataset(seed=3, scale=0.05)


def test_default_artifacts_memoised_per_full_config():
    a = default_artifacts(seed=3, scale=0.05)
    assert default_artifacts(seed=3, scale=0.05) is a


def test_default_artifacts_distinguishes_horizon_and_latency():
    base = default_artifacts(seed=3, scale=0.05)
    horizon = default_artifacts(seed=3, scale=0.05, horizon=2000)
    latency = default_artifacts(seed=3, scale=0.05, detection_latency_scale=2.0)
    assert base is not horizon
    assert base is not latency
    assert horizon.config.horizon == 2000
    assert latency.config.detection_latency_scale == 2.0
    assert len(horizon.dataset) != 0
    assert horizon.collection is not base.collection


def test_default_artifacts_distinguishes_similarity_config():
    base = default_artifacts(seed=3, scale=0.05)
    tweaked = default_artifacts(
        seed=3, scale=0.05, similarity=SimilarityConfig(min_similarity=None)
    )
    assert base is not tweaked
    # Same world/collection (similarity only affects the graph stage) ...
    assert tweaked.collection is base.collection
    # ... but a distinct malgraph artifact.
    assert tweaked.malgraph is not base.malgraph


def test_malgraph_build_records_substage_timings(tmp_path):
    """A built malgraph leaves embed/cluster/split rows (with embedding
    cache counters) in the report; cache hits record nothing new."""
    runtime = runtime_for(tmp_path)
    runtime.malgraph()
    subs = {sub.name: sub for sub in runtime.report.substages}
    assert set(subs) == {"embed", "cluster", "split"}
    assert all(sub.stage == "malgraph" for sub in subs.values())
    assert all(sub.seconds >= 0.0 for sub in subs.values())
    embed = subs["embed"].detail
    assert embed["cache_misses"] == embed["unique"]  # cold store
    assert embed["artifacts"] >= embed["unique"] > 0

    before = len(runtime.report.substages)
    runtime.malgraph()  # memory hit: no build, no new substages
    assert len(runtime.report.substages) == before

    rendered = runtime.report.render()
    assert "malgraph.embed" in rendered
    assert "cache_misses" in rendered


def test_second_runtime_build_hits_the_embedding_cache(tmp_path):
    """A fresh store over the same cache dir skips every re-embed when
    only clustering knobs change (the sweep the cache exists for)."""
    runtime = runtime_for(tmp_path)
    runtime.malgraph()

    sweep = PipelineRuntime(
        SMALL,
        similarity=SimilarityConfig(min_similarity=0.5),
        store=ArtifactStore(cache_dir=tmp_path / "cache"),
        report=PipelineReport(),
    )
    sweep.malgraph()
    embed = next(
        sub for sub in sweep.report.substages if sub.name == "embed"
    ).detail
    assert embed["cache_misses"] == 0
    assert embed["cache_hits"] == embed["unique"]
