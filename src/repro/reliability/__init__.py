"""Fault injection and graceful degradation for the collection pipeline.

The paper's Section-II substrate — 68 crawled websites, lagging mirror
registries, open-dataset feeds — is inherently unreliable in the wild.
This package makes the reproduction survive that unreliability:

* :mod:`~repro.reliability.retry` — retry with exponential backoff,
  deterministic jitter, per-operation deadlines, and circuit breakers,
  all on a simulated :class:`RetryClock`;
* :mod:`~repro.reliability.faults` — a seeded :class:`FaultPlan` plus
  drop-in faulty wrappers for the web, the mirror fleet, and the
  open-dataset feeds (bit-reproducible chaos);
* :mod:`~repro.reliability.report` — the :class:`DegradationReport`
  ledger of everything a run retried, recovered, or gave up on;
* :mod:`~repro.reliability.context` — :class:`ResilienceContext`, the
  per-run bundle the collection components thread through.

Entry point: ``repro.world.run_collection(world, plan=...)`` or the CLI's
``collect --fault-plan`` subcommand.
"""

from repro.reliability.context import Outcome, ResilienceContext
from repro.reliability.faults import (
    FaultInjector,
    FaultPlan,
    FaultyFeed,
    FaultyMirrorNetwork,
    FaultyWeb,
    corrupt_wire,
)
from repro.reliability.report import DegradationReport
from repro.reliability.retry import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RetryClock,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "CircuitBreaker",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "FaultyFeed",
    "FaultyMirrorNetwork",
    "FaultyWeb",
    "Outcome",
    "ResilienceContext",
    "RetryClock",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "corrupt_wire",
    "retry_call",
]
