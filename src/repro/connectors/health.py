"""Per-source lifecycle health: the connector state machine.

A real intel source is not binary up/down — Table V's cadence column is
a study in sources that drift out of date, Table I's "never update"
datasets are sources that went dark and stayed useful, and a feed whose
schema drifted emits records that no longer parse. :class:`SourceHealth`
models that lifecycle as four states:

* **healthy** — the last pull answered in full and validated cleanly;
* **degraded** — answering, but wrong: records quarantined by schema
  validation, a partial emission, or a first consecutive fetch failure,
  or the source has gone stale against its advertised cadence;
* **dark** — not answering at all: ``dark_after`` consecutive failures,
  a whole-operation outage, or staleness past twice the budget;
* **recovering** — a dark source answered cleanly again; it must string
  ``recover_after`` consecutive clean pulls together before it earns
  ``healthy`` back (one good poll proves little after an outage).

Health feeds verdict confidence: :data:`HEALTH_RELIABILITY_FACTOR`
scales a source's static reliability (sector/cadence/artifact-sharing,
:func:`repro.service.index.source_reliability`) by its live state, so a
verdict backed only by a dark feed is worth a fraction of the same
verdict from a healthy one.

This module is dependency-free by design: the enrichment engine imports
the factor table without dragging the collection machinery along.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded"
HEALTH_DARK = "dark"
HEALTH_RECOVERING = "recovering"

HEALTH_STATES = (
    HEALTH_HEALTHY,
    HEALTH_DEGRADED,
    HEALTH_DARK,
    HEALTH_RECOVERING,
)

#: How much of a source's static reliability its live state retains.
HEALTH_RELIABILITY_FACTOR: Dict[str, float] = {
    HEALTH_HEALTHY: 1.0,
    HEALTH_RECOVERING: 0.75,
    HEALTH_DEGRADED: 0.6,
    HEALTH_DARK: 0.25,
}


class SourceHealth:
    """The health state machine for one connector.

    Driven by three signals: consecutive fetch failures
    (:meth:`record_failure` / :meth:`record_outage`), schema-validation
    quarantines on otherwise-successful pulls (``quarantined=`` on
    :meth:`record_success`), and staleness against the source's cadence
    (:meth:`check_staleness`). Every transition is appended to
    :attr:`transitions` as ``(day, from_state, to_state)`` so tests and
    operators can audit the full lifecycle, not just the latest state.
    """

    def __init__(
        self,
        key: str,
        degraded_after: int = 1,
        dark_after: int = 3,
        recover_after: int = 2,
        stale_after: Optional[int] = None,
    ):
        if degraded_after < 1 or dark_after < degraded_after:
            raise ValueError(
                "need 1 <= degraded_after <= dark_after "
                f"(got {degraded_after}, {dark_after})"
            )
        if recover_after < 1:
            raise ValueError("recover_after must be >= 1")
        self.key = key
        self.degraded_after = degraded_after
        self.dark_after = dark_after
        self.recover_after = recover_after
        #: days without a clean success before the source counts as
        #: stale (degraded); twice this budget darkens it. None = never.
        self.stale_after = stale_after
        self.state = HEALTH_HEALTHY
        self.consecutive_failures = 0
        self.recovery_streak = 0
        self.quarantined_total = 0
        self.last_success_day: Optional[int] = None
        self.last_attempt_day: Optional[int] = None
        self.transitions: List[Tuple[Optional[int], str, str]] = []

    def _move(self, state: str, day: Optional[int]) -> None:
        if state == self.state:
            return
        self.transitions.append((day, self.state, state))
        self.state = state

    # -- signals -----------------------------------------------------------
    def record_success(
        self, day: Optional[int] = None, quarantined: int = 0
    ) -> str:
        """A pull answered. Clean emissions heal; quarantines degrade."""
        self.last_attempt_day = day
        self.consecutive_failures = 0
        if quarantined > 0:
            # The feed answers but its records no longer validate —
            # schema drift is a degradation, not an outage, and it
            # interrupts any recovery streak.
            self.quarantined_total += quarantined
            self.recovery_streak = 0
            self._move(HEALTH_DEGRADED, day)
            return self.state
        self.last_success_day = day
        if self.state == HEALTH_DARK:
            self.recovery_streak = 1
            self._move(HEALTH_RECOVERING, day)
            if self.recovery_streak >= self.recover_after:
                self._move(HEALTH_HEALTHY, day)
        elif self.state == HEALTH_RECOVERING:
            self.recovery_streak += 1
            if self.recovery_streak >= self.recover_after:
                self._move(HEALTH_HEALTHY, day)
        else:
            self.recovery_streak = 0
            self._move(HEALTH_HEALTHY, day)
        return self.state

    def record_partial(self, day: Optional[int] = None) -> str:
        """A pull degraded to a partial emission: data, but not all of it."""
        self.last_attempt_day = day
        self.last_success_day = day
        self.consecutive_failures = 0
        self.recovery_streak = 0
        self._move(HEALTH_DEGRADED, day)
        return self.state

    def record_failure(self, day: Optional[int] = None) -> str:
        """One failed pull; consecutive failures escalate the state."""
        self.last_attempt_day = day
        self.recovery_streak = 0
        self.consecutive_failures += 1
        if self.state == HEALTH_RECOVERING:
            # A relapse during recovery goes straight back to dark.
            self._move(HEALTH_DARK, day)
        elif self.consecutive_failures >= self.dark_after:
            self._move(HEALTH_DARK, day)
        elif self.consecutive_failures >= self.degraded_after:
            self._move(HEALTH_DEGRADED, day)
        return self.state

    def record_outage(self, day: Optional[int] = None) -> str:
        """A whole operation (retries exhausted / breaker) got nothing:
        the source is dark now, whatever the failure count said."""
        self.last_attempt_day = day
        self.recovery_streak = 0
        self.consecutive_failures = max(
            self.consecutive_failures + 1, self.dark_after
        )
        self._move(HEALTH_DARK, day)
        return self.state

    def check_staleness(self, day: int) -> str:
        """Escalate a source whose last clean success is too old."""
        if self.stale_after is None or self.last_success_day is None:
            return self.state
        age = day - self.last_success_day
        if age > 2 * self.stale_after:
            self._move(HEALTH_DARK, day)
        elif age > self.stale_after and self.state == HEALTH_HEALTHY:
            self._move(HEALTH_DEGRADED, day)
        return self.state

    # -- summary -----------------------------------------------------------
    @property
    def reliability_factor(self) -> float:
        return HEALTH_RELIABILITY_FACTOR[self.state]

    def to_dict(self) -> Dict:
        """JSON-safe summary for stats/metrics surfaces."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "recovery_streak": self.recovery_streak,
            "quarantined_total": self.quarantined_total,
            "last_success_day": self.last_success_day,
            "last_attempt_day": self.last_attempt_day,
            "reliability_factor": self.reliability_factor,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceHealth({self.key!r}, state={self.state!r})"
