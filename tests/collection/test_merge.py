"""Dataset merge and diff (the update loop)."""

from __future__ import annotations

import pytest

from repro.collection.merge import diff_datasets, merge_datasets
from repro.collection.records import SourceClaim
from repro.errors import DatasetError

from tests.core.helpers import dataset, entry, report


def test_merge_unions_disjoint_entries():
    a = dataset([entry("only-a")])
    b = dataset([entry("only-b", code="B = 1\n")])
    merged = merge_datasets(a, b)
    assert {e.package.name for e in merged} == {"only-a", "only-b"}


def test_merge_does_not_mutate_inputs():
    a = dataset([entry("shared", sources=("snyk",))])
    b = dataset([entry("shared", sources=("phylum",))])
    merge_datasets(a, b)
    assert a.entries[0].sources == {"snyk"}
    assert b.entries[0].sources == {"phylum"}


def test_merge_combines_claims_earliest_day_wins():
    a_entry = entry("shared")
    a_entry.claims = [SourceClaim("snyk", 50, False)]
    b_entry = entry("shared")
    b_entry.claims = [SourceClaim("snyk", 30, False), SourceClaim("phylum", 60, False)]
    merged = merge_datasets(dataset([a_entry]), dataset([b_entry]))
    claims = {c.source: c for c in merged.entries[0].claims}
    assert set(claims) == {"snyk", "phylum"}
    assert claims["snyk"].report_day == 30


def test_merge_sharing_flag_is_sticky():
    a_entry = entry("shared")
    a_entry.claims = [SourceClaim("snyk", 50, False)]
    b_entry = entry("shared")
    b_entry.claims = [SourceClaim("snyk", 70, True)]
    merged = merge_datasets(dataset([a_entry]), dataset([b_entry]))
    claim = merged.entries[0].claims[0]
    assert claim.shares_artifact
    assert claim.report_day == 50


def test_merge_fills_artifact_from_new_run():
    stale = entry("victim", code=None, release_day=None)
    fresh = entry("victim", release_day=42)
    merged = merge_datasets(dataset([stale]), dataset([fresh]))
    assert merged.entries[0].available
    assert merged.entries[0].release_day == 42


def test_merge_conflicting_artifacts_raise():
    one = entry("victim", code="A = 1\n")
    other = entry("victim", code="B = 2\n")
    with pytest.raises(DatasetError):
        merge_datasets(dataset([one]), dataset([other]))


def test_merge_keeps_max_downloads():
    old = entry("pkg", downloads=10)
    new = entry("pkg", downloads=250)
    merged = merge_datasets(dataset([old]), dataset([new]))
    assert merged.entries[0].downloads == 250


def test_merge_deduplicates_reports():
    e = entry("pkg")
    a = dataset([e], [report("r1", [e.package])])
    b = dataset([entry("pkg")], [report("r1", [e.package]), report("r2", [e.package])])
    merged = merge_datasets(a, b)
    assert [r.report_id for r in merged.reports] == ["r1", "r2"]


def test_merge_world_with_itself_is_identity(small_dataset):
    merged = merge_datasets(small_dataset, small_dataset)
    assert len(merged) == len(small_dataset)
    assert len(merged.reports) == len(small_dataset.reports)
    for before, after in zip(small_dataset.entries, merged.entries):
        assert before.package == after.package
        assert before.sources == after.sources
        assert before.available == after.available


# -- diff ------------------------------------------------------------------

def test_diff_added_and_removed():
    old = dataset([entry("stay"), entry("gone", code="G = 1\n")])
    new = dataset([entry("stay"), entry("fresh", code="F = 1\n")])
    diff = diff_datasets(old, new)
    assert [p.name for p in diff.added] == ["fresh"]
    assert [p.name for p in diff.removed] == ["gone"]


def test_diff_newly_available_and_sources():
    old = dataset([entry("pkg", code=None, sources=("snyk",))])
    new = dataset([entry("pkg", sources=("snyk", "phylum"))])
    diff = diff_datasets(old, new)
    assert [p.name for p in diff.newly_available] == ["pkg"]
    assert list(diff.new_sources.values()) == [{"phylum"}]


def test_diff_new_reports():
    e = entry("pkg")
    old = dataset([e], [report("r1", [e.package])])
    new = dataset([entry("pkg")], [report("r1", [e.package]), report("r9", [e.package])])
    diff = diff_datasets(old, new)
    assert diff.new_reports == ["r9"]


def test_diff_identical_is_empty(small_dataset):
    diff = diff_datasets(small_dataset, small_dataset)
    assert diff.is_empty
    assert "+0 packages" in diff.summary()


def test_incremental_loop_merge_then_diff():
    """The future-work loop: merging a delta then diffing shows no
    remaining difference."""
    base = dataset([entry("a"), entry("b", code=None)])
    delta = dataset([entry("b"), entry("c", code="C = 1\n")])
    merged = merge_datasets(base, delta)
    assert diff_datasets(merged, merge_datasets(merged, delta)).is_empty
