"""Unified stage-DAG runtime with a fingerprinted, persistent artifact store.

The paper's evaluation is one chain of expensive stages — world
simulation, Section II collection, the MALGRAPH build — consumed by 15+
tables and figures, the CLI, the enrichment service, every example and
every benchmark. This package gives that chain an explicit runtime:

* :mod:`repro.pipeline.fingerprint` — canonical config fingerprints
  (every knob of ``WorldConfig`` and ``SimilarityConfig``, hashed);
* :mod:`repro.pipeline.store` — :class:`ArtifactStore`, a bounded
  in-memory LRU over live objects plus an optional on-disk cache under
  ``~/.cache/repro`` (``REPRO_CACHE_DIR`` / ``--cache-dir``) with
  schema-version stamps and corruption fallback;
* :mod:`repro.pipeline.stages` — :class:`PipelineRuntime`, resolving
  ``world -> collection -> malgraph`` through the store;
* :mod:`repro.pipeline.report` — :class:`PipelineReport`, per-stage
  wall-time and hit/miss accounting, queryable from the CLI.

One process-wide store and report back every facade (``repro.world``
defaults, :class:`repro.paper.PaperArtifacts`, the CLI and service), so
``python -m repro warm`` makes any later process's analysis path start
from disk instead of re-simulating the world.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.pipeline.fingerprint import (
    SCHEMA_VERSION,
    config_payload,
    fingerprint,
)
from repro.pipeline.report import PipelineReport, StageRun
from repro.pipeline.stages import (
    STAGE_COLLECTION,
    STAGE_COLUMNAR,
    STAGE_MALGRAPH,
    STAGE_WORLD,
    STAGES,
    PipelineRuntime,
)
from repro.pipeline.store import ArtifactStore, default_cache_dir

__all__ = [
    "ArtifactStore",
    "PipelineReport",
    "PipelineRuntime",
    "SCHEMA_VERSION",
    "STAGES",
    "STAGE_COLLECTION",
    "STAGE_COLUMNAR",
    "STAGE_MALGRAPH",
    "STAGE_WORLD",
    "StageRun",
    "config_payload",
    "configure",
    "default_cache_dir",
    "fingerprint",
    "get_report",
    "get_store",
    "reset_report",
]

_lock = threading.Lock()
_store: Optional[ArtifactStore] = None
_report = PipelineReport()


def get_store() -> ArtifactStore:
    """The process-wide artifact store (created on first use)."""
    global _store
    with _lock:
        if _store is None:
            _store = ArtifactStore()
        return _store


def configure(
    cache_dir=None,
    disk_enabled: Optional[bool] = None,
    memory_capacity: Optional[int] = None,
) -> ArtifactStore:
    """Replace the process-wide store (CLI ``--cache-dir``/``--no-disk-cache``)."""
    global _store
    with _lock:
        kwargs = {}
        if memory_capacity is not None:
            kwargs["memory_capacity"] = memory_capacity
        _store = ArtifactStore(
            cache_dir=cache_dir, disk_enabled=disk_enabled, **kwargs
        )
        return _store


def get_report() -> PipelineReport:
    """The process-wide pipeline report."""
    return _report


def reset_report() -> PipelineReport:
    """Clear the process-wide report (keeps the same object)."""
    _report.clear()
    return _report
