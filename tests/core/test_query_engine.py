"""QueryEngine end-to-end: the ROADMAP exemplar queries, CLI parity,
and the MalGraph.groups() memoisation under concurrency."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.query import QueryEngine


@pytest.fixture(scope="module")
def malgraph(small_dataset) -> MalGraph:
    return MalGraph.build(small_dataset)


@pytest.fixture(scope="module")
def engine(malgraph) -> QueryEngine:
    return QueryEngine(malgraph)


# ---------------------------------------------------------------------------
# The three ROADMAP exemplar queries
# ---------------------------------------------------------------------------

def test_similar_to_x_coexisting_with_campaign(engine):
    """'packages similar to X that co-exist with anything in campaign C'."""
    indexes = engine.indexes()
    # find a (name, campaign) pair the small world actually connects
    from repro.core.graph import EdgeType

    pick = None
    for node in indexes.nodes:
        for b in indexes.neighbors(node, (EdgeType.SIMILAR,)):
            for c in indexes.neighbors(b, (EdgeType.COEXISTING,)):
                campaign = indexes.node_attrs(c).get("campaign")
                if campaign:
                    pick = (indexes.node_attrs(node)["name"], campaign, b)
                    break
            if pick:
                break
        if pick:
            break
    assert pick, "small world should contain a similar→coexisting→campaign path"
    name, campaign, witness = pick
    rows = engine.rows(
        f"MATCH (a {{name: '{name}'}})-[similar]-(b)-[coexisting]-(c) "
        f"WHERE c.campaign = '{campaign}' RETURN b"
    )
    found = {r[0] for r in rows}
    assert witness in found
    # verify every row against raw adjacency
    for b in found:
        assert any(
            indexes.node_attrs(c).get("campaign") == campaign
            for c in indexes.neighbors(b, (EdgeType.COEXISTING,))
        )


def test_shortest_dependency_path_actor_to_package(engine):
    """'shortest dependency path actor→package' via the actor selector."""
    indexes = engine.indexes()
    actors = indexes.by_attr.get("actor", {})
    assert actors, "small world should attribute packages to actors"
    # pick an actor whose packages reach something beyond themselves
    actor, sources, target = None, set(), None
    for candidate in sorted(actors):
        held = set(actors[candidate])
        for source in sorted(held):
            for node, _distance in engine.neighborhood(source, 3):
                if node not in held:
                    actor, sources, target = candidate, held, node
                    break
            if target:
                break
        if target:
            break
    assert target, "some actor should reach a foreign package within 3 hops"
    path = engine.shortest_path(f"actor:{actor}", target)
    assert path, "selector-resolved path should exist"
    assert path[0] in sources
    assert path[-1] == target


def test_k_hop_neighborhood_for_a_report(engine):
    """'k-hop neighbourhood for a report' — a co-existing (CG) group."""
    indexes = engine.indexes()
    cg_ids = [g for g in indexes.group_members if g.startswith("CG-")]
    assert cg_ids, "small world should have co-existing report groups"
    group_id = sorted(cg_ids)[0]
    got = engine.neighborhood(f"cg:{group_id}", 2)
    members = set(indexes.group_members[group_id])
    at_zero = {node for node, distance in got if distance == 0}
    assert at_zero == members
    assert all(0 <= distance <= 2 for _node, distance in got)


# ---------------------------------------------------------------------------
# Surface parity: Python API vs CLI (the HTTP surface is covered in
# tests/service/test_query_endpoint.py against the same fixtures)
# ---------------------------------------------------------------------------

def test_cli_json_matches_python_api(engine, monkeypatch, capsys):
    from repro import cli

    query = "MATCH (a)-[similar]-(b) RETURN a.name, b.name ORDER BY a.name LIMIT 5"
    expected = engine.run(query)

    class _Artifacts:
        malgraph = engine.malgraph

    monkeypatch.setattr(cli, "_artifacts", lambda args: _Artifacts())
    code = cli.main(["query", query, "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["columns"] == list(expected.columns)
    assert [tuple(row) for row in payload["rows"]] == list(expected.rows)
    assert payload["row_count"] == expected.row_count


def test_cli_table_output_and_error_exit(engine, monkeypatch, capsys):
    from repro import cli

    class _Artifacts:
        malgraph = engine.malgraph

    monkeypatch.setattr(cli, "_artifacts", lambda args: _Artifacts())
    assert cli.main(["query", "MATCH (a) RETURN count(*)"]) == 0
    out = capsys.readouterr().out
    assert "count(*)" in out and "rows," in out
    assert cli.main(["query", "MATCH oops"]) == 2
    assert "query error" in capsys.readouterr().err


def test_explain_names_the_seed_index(engine):
    indexes = engine.indexes()
    name = indexes.node_attrs(indexes.nodes[0])["name"]
    text = engine.explain(f"MATCH (a {{name: '{name}'}})-[similar]-(b) RETURN b")
    assert "name=" in text
    assert engine.explain("MATCH (a) RETURN a").startswith("scan all nodes")


# ---------------------------------------------------------------------------
# MalGraph.groups() memoisation race (satellite fix)
# ---------------------------------------------------------------------------

def test_groups_memoisation_is_single_flight(malgraph, monkeypatch):
    import repro.core.malgraph as malgraph_module

    fresh = MalGraph(
        graph=malgraph.graph,
        dataset=malgraph.dataset,
        similar=malgraph.similar,
        duplicated_groups=malgraph.duplicated_groups,
        dependency_edges=malgraph.dependency_edges,
        coexisting_groups=malgraph.coexisting_groups,
    )
    calls = []
    real_extract = malgraph_module.extract_groups

    def counting_extract(graph, dataset, kind):
        calls.append(kind)
        return real_extract(graph, dataset, kind)

    monkeypatch.setattr(malgraph_module, "extract_groups", counting_extract)

    results = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        results.append(fresh.groups(GroupKind.CG))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert calls == [GroupKind.CG]  # extracted exactly once
    assert all(r is results[0] for r in results)
