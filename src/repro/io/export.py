"""Graph exporters: GraphML, DOT and Neo4j-style CSV.

The paper keeps MALGRAPH in Neo4j; these exporters write the property
graph into the formats external tooling ingests:

* :func:`to_graphml` — GraphML with typed edges and node attributes
  (loads into Gephi, yEd, networkx);
* :func:`to_dot` — Graphviz DOT, one colour per edge type;
* :func:`to_neo4j_csv` — ``nodes.csv`` + ``edges.csv`` in the shape
  ``neo4j-admin import`` expects.

Cliques are expanded to pairwise edges on export (external tools have no
clique compression), so exporting the full-scale similar subgraph can be
large — pass ``edge_types`` to restrict.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape, quoteattr

from repro.core.graph import EdgeType, PropertyGraph

PathLike = Union[str, Path]

#: Stable colours for DOT rendering, one per relationship.
_DOT_COLORS = {
    EdgeType.DUPLICATED: "firebrick",
    EdgeType.DEPENDENCY: "darkorange",
    EdgeType.SIMILAR: "steelblue",
    EdgeType.COEXISTING: "seagreen",
}


def iter_pairwise_edges(
    graph: PropertyGraph,
    edge_types: Optional[Sequence[EdgeType]] = None,
) -> Iterator[Tuple[str, str, EdgeType]]:
    """Every undirected edge as an (u, v, type) triple, cliques expanded,
    deduplicated within each type."""
    selected = list(edge_types) if edge_types is not None else list(EdgeType)
    for edge_type in selected:
        seen = set(graph._edges[edge_type])
        for u, v in sorted(seen):
            yield u, v, edge_type
        for clique in graph._cliques[edge_type]:
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    if (u, v) not in seen:
                        seen.add((u, v))
                        yield u, v, edge_type


def _node_attr_keys(graph: PropertyGraph) -> List[str]:
    keys = set()
    for node_id in graph.nodes():
        keys.update(graph.node(node_id))
    return sorted(keys)


def _attr_str(value) -> str:
    if value is None:
        return ""
    if isinstance(value, (list, tuple, set)):
        return ";".join(str(v) for v in value)
    return str(value)


def to_graphml(
    graph: PropertyGraph,
    edge_types: Optional[Sequence[EdgeType]] = None,
) -> str:
    """Serialise to a GraphML document string."""
    keys = _node_attr_keys(graph)
    out = io.StringIO()
    out.write('<?xml version="1.0" encoding="UTF-8"?>\n')
    out.write('<graphml xmlns="http://graphml.graphdrawing.org/xmlns">\n')
    for idx, key in enumerate(keys):
        out.write(
            f'  <key id="d{idx}" for="node" attr.name={quoteattr(key)} '
            'attr.type="string"/>\n'
        )
    out.write('  <key id="etype" for="edge" attr.name="type" attr.type="string"/>\n')
    out.write('  <graph edgedefault="undirected">\n')
    key_ids = {key: f"d{idx}" for idx, key in enumerate(keys)}
    for node_id in sorted(graph.nodes()):
        out.write(f"    <node id={quoteattr(node_id)}>\n")
        attrs = graph.node(node_id)
        for key, value in sorted(attrs.items()):
            out.write(
                f"      <data key=\"{key_ids[key]}\">{escape(_attr_str(value))}"
                "</data>\n"
            )
        out.write("    </node>\n")
    for idx, (u, v, edge_type) in enumerate(
        iter_pairwise_edges(graph, edge_types)
    ):
        out.write(
            f"    <edge id=\"e{idx}\" source={quoteattr(u)} target={quoteattr(v)}>"
            f"<data key=\"etype\">{edge_type.value}</data></edge>\n"
        )
    out.write("  </graph>\n</graphml>\n")
    return out.getvalue()


def to_dot(
    graph: PropertyGraph,
    edge_types: Optional[Sequence[EdgeType]] = None,
    name: str = "malgraph",
) -> str:
    """Serialise to Graphviz DOT (undirected)."""
    out = io.StringIO()
    out.write(f"graph {name} {{\n")
    out.write('  node [shape=box, fontsize=9];\n')
    for node_id in sorted(graph.nodes()):
        label = graph.node(node_id).get("name", node_id)
        out.write(f'  "{node_id}" [label="{label}"];\n')
    for u, v, edge_type in iter_pairwise_edges(graph, edge_types):
        color = _DOT_COLORS[edge_type]
        out.write(f'  "{u}" -- "{v}" [color={color}, tooltip="{edge_type.value}"];\n')
    out.write("}\n")
    return out.getvalue()


def to_neo4j_csv(
    graph: PropertyGraph,
    directory: PathLike,
    edge_types: Optional[Sequence[EdgeType]] = None,
) -> Tuple[Path, Path]:
    """Write ``nodes.csv`` and ``edges.csv`` for ``neo4j-admin import``.

    Returns the two paths. Node attribute columns are unioned across the
    graph; missing values are empty strings.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    keys = _node_attr_keys(graph)
    nodes_path = directory / "nodes.csv"
    edges_path = directory / "edges.csv"
    with open(nodes_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([":ID"] + keys + [":LABEL"])
        for node_id in sorted(graph.nodes()):
            attrs = graph.node(node_id)
            writer.writerow(
                [node_id]
                + [_attr_str(attrs.get(key)) for key in keys]
                + ["MaliciousPackage"]
            )
    with open(edges_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([":START_ID", ":END_ID", ":TYPE"])
        for u, v, edge_type in iter_pairwise_edges(graph, edge_types):
            writer.writerow([u, v, edge_type.value.upper()])
    return nodes_path, edges_path
