"""The simulated web: report/advisory/noise pages and their markup."""

from __future__ import annotations

import pytest

from repro.crawler.extract import extract_report, is_security_report
from repro.intel.reports import ReportFactory, SecurityReport
from repro.intel.sns import build_feed
from repro.intel.sources import SOURCE_INDEX, AttributionEngine, SourceKind
from repro.intel.web import (
    SimulatedWeb,
    WebPage,
    advisory_site,
    build_web,
    render_advisory_page,
    render_report_page,
)
from repro.ecosystem.package import PackageId


def _sample_report() -> SecurityReport:
    return SecurityReport(
        id="rep00001",
        source="snyk",
        website="snyk.io/blog",
        category="Commercial org.",
        publish_day=700,
        title="Malicious NPM packages deliver stealer payloads",
        packages=[
            PackageId("npm", "cloud-layout", "1.0.2"),
            PackageId("npm", "urs-remote", "0.3.1"),
        ],
        ecosystem="npm",
        actor_alias="Lolip0p01",
    )


def test_report_page_roundtrips_through_extractor():
    report = _sample_report()
    html = render_report_page(report)
    assert is_security_report(html)
    extracted = extract_report(report.url, report.website, html)
    assert extracted.usable
    assert extracted.ecosystem == "npm"
    assert set(extracted.packages) == {
        ("cloud-layout", "1.0.2"),
        ("urs-remote", "0.3.1"),
    }
    assert extracted.publish_day == report.publish_day


def test_advisory_page_roundtrips_through_extractor(small_corpus):
    outcome = AttributionEngine(seed=5).attribute(small_corpus)
    entry = next(
        e for e in outcome.entries
        if SOURCE_INDEX[e.source].kind == SourceKind.WEBSITE
    )
    html = render_advisory_page(entry)
    extracted = extract_report("u", "s", html)
    assert extracted.packages == [(entry.package.name, entry.package.version)]


def test_advisory_site_name():
    assert advisory_site(SOURCE_INDEX["snyk"]) == "vuln.snyk.io"
    assert advisory_site(SOURCE_INDEX["phylum"]) == "vuln.blog.phylum.io"


def test_simulated_web_add_and_fetch():
    web = SimulatedWeb()
    page = WebPage(url="https://a/x", html="<p>hi</p>", site="a", is_report=False)
    web.add(page)
    assert web.fetch("https://a/x") is page
    assert web.fetch("https://a/unknown") is None
    assert web.site_index("a") == ["https://a/x"]
    assert len(web) == 1


def test_simulated_web_re_add_updates_without_duplicate_listing():
    web = SimulatedWeb()
    web.add(WebPage(url="u", html="v1", site="s", is_report=False))
    web.add(WebPage(url="u", html="v2", site="s", is_report=False))
    assert web.site_index("s") == ["u"]
    assert web.fetch("u").html == "v2"


def test_build_web_contains_reports_advisories_and_noise(small_corpus):
    outcome = AttributionEngine(seed=6).attribute(small_corpus)
    corpus = ReportFactory(seed=7).build(outcome)
    web = build_web(corpus, outcome, seed=8, noise_per_site=2)
    report_pages = [p for p in web.pages.values() if p.is_report]
    assert len(report_pages) == len(corpus.reports)
    advisory_pages = [p for p in web.pages.values() if p.site.startswith("vuln.")]
    assert advisory_pages
    noise = [
        p for p in web.pages.values()
        if not p.is_report and not p.site.startswith("vuln.")
    ]
    assert len(noise) >= 2 * len(corpus.websites)


def test_noise_pages_fail_keyword_filter(small_world):
    noise = [
        p for p in small_world.web.pages.values()
        if not p.is_report and not p.site.startswith("vuln.")
    ]
    assert noise
    assert not any(is_security_report(p.html) for p in noise)


# -- SNS feed ------------------------------------------------------------------

def test_feed_parses_back_to_entries(small_corpus):
    from repro.crawler.extract import extract_tweet

    outcome = AttributionEngine(seed=9).attribute(small_corpus)
    feed = build_feed(outcome, seed=10)
    sns_entries = [
        e for e in outcome.entries
        if SOURCE_INDEX[e.source].kind == SourceKind.SNS
    ]
    parsed = [extract_tweet(t.text) for t in feed]
    recovered = {p for p in parsed if p is not None}
    expected = {
        (e.package.ecosystem, e.package.name, e.package.version)
        for e in sns_entries
    }
    assert expected <= recovered


def test_feed_sorted_by_day(small_corpus):
    outcome = AttributionEngine(seed=9).attribute(small_corpus)
    feed = build_feed(outcome, seed=10)
    days = [t.day for t in feed]
    assert days == sorted(days)
    assert all(t.account == "@sscblog" for t in feed)
