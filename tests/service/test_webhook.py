"""WebhookDispatcher: retry/backoff, dead letters, exact delivery books."""

from __future__ import annotations

import threading

import pytest

from repro.core.malgraph import MalGraph
from repro.service.cache import build_service
from repro.service.index import IntelIndex
from repro.service.webhook import WebhookDispatcher

from tests.core.helpers import dataset, entry


class FlakyTransport:
    """Fails the first ``failures`` calls, then delivers. Thread-safe."""

    def __init__(self, failures: int = 0):
        self.failures = failures
        self.calls = 0
        self.delivered = []
        self._lock = threading.Lock()

    def __call__(self, url: str, payload: dict) -> None:
        with self._lock:
            self.calls += 1
            if self.calls <= self.failures:
                raise OSError(f"refused (call {self.calls})")
            self.delivered.append((url, payload))


def dispatcher(transport, **kwargs) -> WebhookDispatcher:
    slept = kwargs.pop("slept", None)
    return WebhookDispatcher(
        "http://hook.test/detections",
        transport=transport,
        sleep=(slept.append if slept is not None else lambda s: None),
        **kwargs,
    )


ITEMS = [{"id": "indicator--npm--evil--1.0.0"}]


def test_delivers_and_books_balance():
    transport = FlakyTransport()
    hook = dispatcher(transport)
    hook.notify(ITEMS, generation=3)
    assert hook.flush()
    stats = hook.stats()
    assert stats["delivered"] == 1 and stats["retries"] == 0
    assert stats["pending"] == 0 and stats["dead_lettered"] == 0
    url, event = transport.delivered[0]
    assert url == "http://hook.test/detections"
    assert event == {
        "event": "new-detections",
        "generation": 3,
        "count": 1,
        "items": ITEMS,
    }


def test_empty_notifications_are_not_enqueued():
    hook = dispatcher(FlakyTransport())
    hook.notify([], generation=1)
    assert hook.stats()["enqueued"] == 0


def test_retries_with_exponential_backoff():
    transport = FlakyTransport(failures=2)
    slept = []
    hook = dispatcher(transport, backoff=0.5, backoff_factor=2.0, slept=slept)
    hook.notify(ITEMS, generation=1)
    assert hook.flush()
    stats = hook.stats()
    assert stats["delivered"] == 1
    assert stats["retries"] == 2
    assert slept == [0.5, 1.0]  # exponential, injectable (test runs fast)


def test_exhausted_delivery_lands_in_the_dead_letter_book():
    transport = FlakyTransport(failures=99)
    hook = dispatcher(transport, max_retries=3)
    hook.notify(ITEMS, generation=2)
    assert hook.flush()
    stats = hook.stats()
    assert stats["dead_lettered"] == 1 and stats["delivered"] == 0
    assert stats["retries"] == 3
    assert stats["pending"] == 0  # books balance: enqueued == settled
    assert transport.calls == 4  # first try + 3 retries
    (letter,) = hook.dead_letters
    assert letter["attempts"] == 4
    assert "OSError" in letter["error"]
    assert letter["event"]["generation"] == 2


def test_dead_letters_are_replayable():
    transport = FlakyTransport(failures=99)
    hook = dispatcher(transport, max_retries=0)
    hook.notify(ITEMS, generation=1)
    assert hook.flush()
    assert hook.stats()["dead_lettered"] == 1
    transport.failures = 0  # the subscriber came back
    assert hook.redeliver_dead() == 1
    assert hook.flush()
    stats = hook.stats()
    assert stats["delivered"] == 1
    assert stats["dead_letter_size"] == 0
    assert stats["pending"] == 0


def test_dead_letter_book_is_bounded():
    hook = dispatcher(
        FlakyTransport(failures=10**6), max_retries=0, dead_letter_capacity=2
    )
    for generation in range(5):
        hook.notify(ITEMS, generation=generation)
    assert hook.flush()
    assert hook.stats()["dead_lettered"] == 5
    assert len(hook.dead_letters) == 2  # only the newest survive
    kept = [letter["event"]["generation"] for letter in hook.dead_letters]
    assert kept == [3, 4]


def test_closed_dispatcher_refuses_new_events():
    hook = dispatcher(FlakyTransport())
    hook.notify(ITEMS, generation=1)
    assert hook.flush()
    hook.close()
    with pytest.raises(RuntimeError):
        hook.notify(ITEMS, generation=2)
    hook.close()  # idempotent


# -- wired into the service publish path -------------------------------------

def code_for(tag: str) -> str:
    return f"def payload_{tag}():\n    return '{tag}'\n"


def test_publish_pushes_only_new_detections():
    held = [entry("known", code=code_for("known"))]
    transport = FlakyTransport()
    hook = dispatcher(transport)
    service = build_service(MalGraph.build(dataset(held)), webhook=hook)

    grown = held + [entry("fresh", code=code_for("fresh"))]
    service.publish(IntelIndex.build(MalGraph.build(dataset(grown))))
    assert hook.flush()
    (_, event) = transport.delivered[0]
    assert event["generation"] == 1
    assert [i["id"] for i in event["items"]] == ["indicator--pypi--fresh--1.0"]

    # republishing the same dataset adds nothing: no event
    service.publish(IntelIndex.build(MalGraph.build(dataset(grown))))
    assert hook.flush()
    assert hook.stats()["enqueued"] == 1


def test_service_without_webhook_publishes_silently():
    held = [entry("known", code=code_for("known"))]
    service = build_service(MalGraph.build(dataset(held)))
    assert service.webhook is None
    service.publish(IntelIndex.build(MalGraph.build(dataset(held))))
    assert service.generation == 1
