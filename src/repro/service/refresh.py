"""Incremental index refresh, fed by graph events.

The paper's future-work loop keeps collecting; a live service cannot
rebuild its index (and certainly not the similarity clustering) for
every re-collection. Both refresh entry points speak the delta engine's
event language (:mod:`repro.core.delta.events`):

* :func:`refresh_index` merges a re-collected dataset into the served
  one with :func:`repro.collection.merge.merge_datasets`, derives the
  event batch via
  :func:`~repro.collection.merge.events_from_datasets`, and applies
  exactly those events to the
  :class:`~repro.service.index.IntelIndex`;
* :func:`refresh_from_events` applies an externally produced batch
  (e.g. one replayed from an events JSONL) directly — and, when handed
  the served :class:`~repro.core.malgraph.MalGraph`, first evolves the
  graph in place with ``apply_delta`` and then mirrors its exact
  DG/DeG/SG/CG group extraction into the index wholesale, so even
  similarity and dependency memberships stay live instead of waiting
  for the next cold build.

Without a graph, refreshed packages get the cheap approximations only:
signature collisions link duplicated families, multi-package reports
become refresh-scoped campaign groups, SG/DeG memberships stay frozen.

Every applied batch advances ``index.epoch`` and stamps
``index.last_delta_at`` — surfaced by ``/v1/healthz`` and ``/v1/stats``
so operators can tell how fresh the served index is.

**Consistency model.** Handed a bare index (``service=None``) the batch
mutates it in place — the caller owns the only reference. Handed a
:class:`~repro.service.cache.EnrichmentService`, the refresh takes the
service's *writer* lock (serialising concurrent refreshes; readers
never touch it), **clones** the currently published index, applies the
batch to the clone off to the side, and installs the clone as the next
immutable snapshot generation with one reference assignment
(:meth:`~repro.service.cache.EnrichmentService.publish`). Lock-free
readers therefore observe either the old generation or the new one in
full — never a half-applied batch — and the generation-tagged verdict
cache can never serve a result computed against the outgoing index to
a reader of the incoming one. The one documented exception: the
``malgraph`` path evolves the caller's graph *in place* (callers keep
feeding the same graph across batches), so ``related()`` neighbour
lists read through an old-generation snapshot during the evolution
window are eventually-consistent; every verdict-bearing structure
(names, signatures, groups, actors, dataset) swaps atomically.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.collection.merge import (
    DatasetDiff,
    diff_datasets,
    events_from_datasets,
    merge_datasets,
)
from repro.collection.records import MalwareDataset
from repro.core.delta.events import (
    EventKind,
    GraphEvent,
    apply_events_to_dataset,
)
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.service.cache import EnrichmentService
from repro.service.index import IntelIndex


@dataclass
class RefreshStats:
    """What one incremental refresh changed."""

    packages_added: int = 0
    packages_removed: int = 0
    signatures_updated: int = 0
    families_linked: int = 0
    campaigns_added: int = 0
    reports_added: int = 0
    groups_replaced: int = 0
    cache_cleared: bool = False

    def summary(self) -> str:
        return (
            f"+{self.packages_added} packages, -{self.packages_removed}, "
            f"{self.signatures_updated} signatures updated, "
            f"{self.families_linked} family links, "
            f"+{self.campaigns_added} campaigns, "
            f"+{self.reports_added} reports"
            f"{f', {self.groups_replaced} groups replaced' if self.groups_replaced else ''}"
            f"{', cache cleared' if self.cache_cleared else ''}"
        )


def _link_duplicate_family(index: IntelIndex, sha256: Optional[str]) -> bool:
    """Group every package sharing ``sha256`` as a duplicated family.

    Reuses an existing DG group when one of the signature's packages is
    already in it; otherwise mints a refresh-scoped group id.
    """
    if sha256 is None:
        return False
    members = index.sha_bucket(sha256)
    if len(members) < 2:
        return False
    group_id = None
    for pid in members:
        for held in index.groups_of(pid):
            if index.group_kind(held) is GroupKind.DG:
                group_id = held
                break
        if group_id:
            break
    if group_id is None:
        group_id = index.next_refresh_group_id(GroupKind.DG)
    index.register_group(group_id, GroupKind.DG, members)
    return True


def refresh_index(
    index: IntelIndex,
    new_dataset: MalwareDataset,
    service: Optional[EnrichmentService] = None,
) -> Tuple[MalwareDataset, DatasetDiff, RefreshStats]:
    """Merge a re-collected dataset into the live index, delta only.

    Returns the merged dataset (now the one the index serves), the diff
    that was applied, and counters describing the change. With a
    ``service``, the base is the service's *currently published* index
    (read under the writer lock, so back-to-back refreshes from
    different threads compose instead of clobbering each other) and the
    change lands as a fresh snapshot generation.
    """
    guard = service.lock if service is not None else contextlib.nullcontext()
    with guard:
        base = service.index if service is not None else index
        target = base.clone() if service is not None else base
        old = base.dataset
        merged = merge_datasets(old, new_dataset)
        diff = diff_datasets(old, merged)
        events = events_from_datasets(old, merged)
        stats = _apply_events(
            target, events, old, malgraph=None, dataset_override=merged
        )
        if service is not None:
            service.publish(target)
            stats.cache_cleared = True
        return merged, diff, stats


def refresh_from_events(
    index: IntelIndex,
    events: Sequence[GraphEvent],
    service: Optional[EnrichmentService] = None,
    malgraph: Optional[MalGraph] = None,
) -> Tuple[MalwareDataset, RefreshStats]:
    """Apply an event batch straight to the live index.

    With ``malgraph`` (the graph the index was built from), the graph is
    evolved in place first and its exact group extraction replaces the
    index's groups wholesale; without it, only the per-event index
    updates (and their DG/CG approximations) run. Returns the dataset
    the index now serves and the change counters. With a ``service``
    the batch lands as a fresh snapshot generation (see the module
    docstring for the consistency model).
    """
    guard = service.lock if service is not None else contextlib.nullcontext()
    with guard:
        base = service.index if service is not None else index
        target = base.clone() if service is not None else base
        stats = _apply_events(target, list(events), base.dataset, malgraph)
        if service is not None:
            service.publish(target)
            stats.cache_cleared = True
        return target.dataset, stats


def _apply_events(
    index: IntelIndex,
    events: List[GraphEvent],
    old: MalwareDataset,
    malgraph: Optional[MalGraph],
    dataset_override: Optional[MalwareDataset] = None,
) -> RefreshStats:
    """Apply one event batch to ``index`` (which nobody else reads yet).

    ``old`` is the dataset the batch was derived against — the snapshot
    path hands the published index's dataset while ``index`` is a
    clone, so in-batch "previous state" lookups resolve correctly.
    """
    stats = RefreshStats()

    if malgraph is not None:
        evolved, _ = malgraph.apply_delta(events, in_place=True)
        new_dataset = evolved.dataset
        index.graph = evolved.graph
    else:
        new_dataset = apply_events_to_dataset(old, events)

    # The index resolves entries through its dataset reference, so the
    # swap retargets every already-indexed PackageId at the new entries
    # for free. ``dataset_override`` lets refresh_index serve the merged
    # (canonically sorted) dataset rather than event-application order —
    # same entries per key either way.
    index.dataset = dataset_override if dataset_override is not None else new_dataset

    # Running view of the batch: later events must see what earlier ones
    # in the same batch did (None marks an in-batch removal).
    seen = {}

    def previous(pid):
        return seen[pid] if pid in seen else old.get(pid)

    for event in events:
        if event.kind is EventKind.PACKAGE_ADDED:
            entry = event.entry()
            index.add_entry(entry)
            stats.packages_added += 1
            if _link_duplicate_family(index, entry.sha256()):
                stats.families_linked += 1
            seen[entry.package] = entry
        elif event.kind is EventKind.PACKAGE_DETECTED:
            entry = event.entry()
            prev = previous(entry.package)
            prev_sha = prev.sha256() if prev is not None else None
            new_sha = entry.sha256()
            if new_sha != prev_sha:
                index.unregister_sha(prev_sha, entry.package)
                if new_sha is not None:
                    index.register_sha(entry)
                    stats.signatures_updated += 1
                    if _link_duplicate_family(index, new_sha):
                        stats.families_linked += 1
            seen[entry.package] = entry
        elif event.kind is EventKind.PACKAGE_REMOVED:
            pid = event.package_id()
            prev = previous(pid)
            if prev is not None:
                index.remove_entry(prev)
                stats.packages_removed += 1
            seen[pid] = None
        elif event.kind is EventKind.REPORT_INGESTED:
            report = event.report()
            index.add_report(report)
            stats.reports_added += 1
            resolvable = {
                p for p in report.packages if index.dataset.get(p) is not None
            }
            if len(resolvable) >= 2:
                group_id = index.next_refresh_group_id(GroupKind.CG)
                index.register_group(group_id, GroupKind.CG, sorted(resolvable))
                stats.campaigns_added += 1

    if malgraph is not None:
        # The evolved graph knows the *exact* group structure — mirror it
        # wholesale (this supersedes the per-event DG/CG approximations,
        # including any refresh-scoped ids minted above).
        for kind in GroupKind:
            groups = [
                [m.package for m in group.members]
                for group in malgraph.groups(kind)
            ]
            index.replace_groups(kind, groups)
            stats.groups_replaced += len(groups)

    index.epoch += 1
    index.last_delta_at = time.time()
    return stats
