"""RQ4: Fig. 11 downloads, Fig. 12 operations, Table VIII IDN."""

from __future__ import annotations

import pytest

from repro.analysis.evolution import (
    compute_download_evolution,
    compute_operation_distribution,
    compute_top_idn,
    evolution_groups,
)
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.malware.operations import ChangeOp

from tests.core.helpers import dataset, entry


def _sequence_malgraph():
    """One similarity group of four releases with known diffs/downloads."""
    base = (
        "import os\n"
        "import json\n\n"
        "def gather():\n"
        "    rows = []\n"
        "    for key, value in os.environ.items():\n"
        "        rows.append({'key': key, 'value': value})\n"
        "    return rows\n\n"
        "def send(rows):\n"
        "    blob = json.dumps(rows)\n"
        "    return len(blob)\n\n"
        "def payload():\n"
        "    return send(gather())\n"
    )
    entries = [
        entry("first", code=base, release_day=10, downloads=2),
        entry("second", code=base, release_day=20, downloads=0),
        entry(
            "third",
            code=base + "_rev = 3\n",
            release_day=30,
            downloads=50,
        ),
        entry("third", version="2.0", code=base + "_rev = 3\n",
              release_day=40, downloads=9),
    ]
    # One K-Means cluster; the cosine >= 0.9 pass keeps all four releases
    # connected (the CC edit is one line on a ~15-line payload).
    return MalGraph.build(
        dataset(entries), SimilarityConfig(seed=0, start_k=1, max_k=1)
    )


def test_evolution_groups_require_artifacts_and_days():
    missing = entry("gone", code=None)
    undated = entry("undated", code="U = 1\n", release_day=None)
    present = [
        entry("p1", code="P = 1\n", release_day=1),
        entry("p2", code="P = 1\n", release_day=2),
    ]
    malgraph = MalGraph.build(
        dataset([missing, undated] + present), SimilarityConfig(seed=0, max_k=3)
    )
    groups = evolution_groups(malgraph)
    names = {e.package.name for g in groups for e in g.members}
    assert "gone" not in names
    assert "undated" not in names
    assert {"p1", "p2"} <= names


def test_operation_distribution_counts():
    dist = compute_operation_distribution(_sequence_malgraph())
    assert dist.attempt_count == 3
    # first->second: CN only; second->third: CN+CC; third->third2.0: CV
    assert dist.percentages[ChangeOp.CN] == pytest.approx(100 * 2 / 3)
    assert dist.percentages[ChangeOp.CC] == pytest.approx(100 * 1 / 3)
    assert dist.percentages[ChangeOp.CV] == pytest.approx(100 * 1 / 3)
    assert dist.percentages[ChangeOp.CD] == 0.0
    assert dist.avg_changed_lines == pytest.approx(1.0)


def test_operation_distribution_render():
    out = compute_operation_distribution(_sequence_malgraph()).render()
    assert "Fig. 12" in out
    assert "CC" in out and "CN" in out


def test_download_evolution_boxes():
    evo = compute_download_evolution(_sequence_malgraph(), every=1)
    assert evo.positions == [0, 1, 2, 3]
    assert evo.boxes[0].median == 2.0
    assert evo.boxes[2].median == 50.0
    assert evo.outliers == []


def test_download_evolution_decimation():
    evo = compute_download_evolution(_sequence_malgraph(), every=2)
    assert evo.positions == [0, 2]


def test_download_evolution_outliers():
    code = "def payload():\n    return 'big'\n"
    entries = [
        entry("a", code=code, release_day=1, downloads=10),
        entry("b", code=code, release_day=2, downloads=2_000_000),
    ]
    malgraph = MalGraph.build(dataset(entries), SimilarityConfig(seed=0, max_k=3))
    evo = compute_download_evolution(malgraph, every=1)
    assert evo.outliers == [("pypi:b@1.0", 2_000_000)]
    assert "outliers" in evo.render()


def test_top_idn_ranks_positive_jumps():
    table = compute_top_idn(_sequence_malgraph())
    # 2→0 and 50→9 are declines; only the 0→50 jump qualifies
    assert [r.idn for r in table.rows] == [50]
    best = table.rows[0]
    assert best.from_package == "pypi:second@1.0"
    assert best.to_package == "pypi:third@1.0"
    assert best.ops == frozenset({ChangeOp.CN, ChangeOp.CC})
    assert best.render_ops() == "(CN, CC)"


def test_top_idn_respects_limit():
    table = compute_top_idn(_sequence_malgraph(), top=1)
    assert len(table.rows) == 1
    assert "Table VIII" in table.render()


# -- world shape (RQ4) ------------------------------------------------------------

def test_world_operation_distribution_shape(paper):
    """Fig. 12: CN dominates but is < 100%; CV and CDep are rarest;
    CC sits in between; CC edits are small."""
    dist = paper.fig12_operations()
    cn = dist.percentages[ChangeOp.CN]
    assert 90 < cn < 100
    assert dist.percentages[ChangeOp.CV] < 20
    assert dist.percentages[ChangeOp.CDEP] < 20
    assert 20 < dist.percentages[ChangeOp.CC] < 70
    assert dist.avg_changed_lines < 40


def test_world_download_evolution_shape(paper):
    """Fig. 11: typical medians are ~0-2 downloads; outliers exist and
    are orders of magnitude larger."""
    evo = paper.fig11_downloads()
    medians = [b.median for b in evo.boxes if b is not None]
    assert medians, "boxes exist"
    assert sorted(medians)[len(medians) // 2] <= 5
    assert evo.outliers
    assert evo.outliers[0][1] > 100_000


def test_world_top_idn_multi_op(paper):
    """Table VIII: top IDN jumps come from multi-operation changes."""
    table = paper.table8_idn()
    assert len(table.rows) == 10
    assert table.rows[0].idn >= table.rows[-1].idn
    multi = sum(1 for r in table.rows if len(r.ops) >= 3)
    assert multi >= 5
