#!/usr/bin/env python
"""Explore MALGRAPH with the Cypher-like query language.

The paper stores MALGRAPH in Neo4j and explores it interactively; this
example runs the same kind of queries against the in-memory property
graph: who depends on whom, which NPM packages share a code base, and
how large the co-reporting cliques are.

Run::

    python examples/graph_queries.py
"""

from __future__ import annotations

from repro.core.query import QueryEngine
from repro.paper import PaperArtifacts
from repro.world import WorldConfig

QUERIES = [
    (
        "Malicious dependency pairs (Fig. 7 attacks)",
        "MATCH (front)-[:dependency]-(lib) "
        "RETURN front.name, lib.name ORDER BY front.name LIMIT 8",
    ),
    (
        "NPM packages similar to a 'cloud-*' package",
        "MATCH (a)-[:similar]-(b) "
        "WHERE a.name CONTAINS 'cloud' AND a.ecosystem = 'npm' "
        "RETURN a.name, b.name LIMIT 8",
    ),
    (
        "Recent releases reported by multiple relationships",
        "MATCH (a)-[:coexisting]-(b) WHERE a.release_day > 1800 "
        "RETURN a.name, b.name LIMIT 8",
    ),
    (
        "How many duplicated-code pairs exist?",
        "MATCH (a)-[:duplicated]-(b) RETURN count(*)",
    ),
    (
        "PyPI nodes collected with an artifact in hand",
        "MATCH (a) WHERE a.ecosystem = 'pypi' AND a.sha256 != '' "
        "RETURN count(*)",
    ),
    (
        "Two-hop pivot: similar code that also co-exists in a report",
        "MATCH (a)-[similar]-(b)-[coexisting]-(c) "
        "WHERE a.ecosystem = 'npm' "
        "RETURN a.name, b.name, c.name LIMIT 8",
    ),
    (
        "Three-hop similarity neighbourhood of one package",
        "MATCH (a)-[similar*1..3]-(b) "
        "WHERE a.ecosystem = 'npm' RETURN b.name LIMIT 8",
    ),
]


def main() -> None:
    print("Building a reduced-scale world and its MALGRAPH ...")
    artifacts = PaperArtifacts(WorldConfig(seed=7, scale=0.4))
    engine = QueryEngine(artifacts.malgraph)
    print(f"  graph has {artifacts.malgraph.node_count} nodes\n")
    for title, query in QUERIES:
        print(f"== {title}")
        print(f"   {query}")
        print(f"   plan: {engine.explain(query)}")
        result = engine.run(query)
        print(result.render_table())
        print(f"   ({result.row_count} rows in {result.elapsed_ms:.2f} ms)")
        print()

    # the procedure surface: pick any co-reporting group and walk out
    indexes = engine.indexes()
    reports = sorted(g for g in indexes.group_members if g.startswith("CG-"))
    if reports:
        print(f"== Two-hop neighbourhood of report group {reports[0]}")
        print(f"   CALL neighborhood('cg:{reports[0]}', 2)")
        print(engine.run(f"CALL neighborhood('cg:{reports[0]}', 2)").render_table())


if __name__ == "__main__":
    main()
