"""Dataset merging and diffing (the paper's future-work update loop).

Section III-C closes with *"In future work, we will continue to find and
collect new malicious packages and security reports to improve the
MALGRAPH coverage."* That loop needs two primitives a one-shot pipeline
lacks:

* :func:`merge_datasets` — union two collected datasets: claims merge
  per source (earliest report day wins), artifacts fill in from
  whichever side has them, reports deduplicate by id;
* :func:`diff_datasets` — what changed between two collection runs:
  packages added/removed, packages whose artifact was newly recovered,
  and new reports.

Both are pure in the sense that inputs are never *mutated*. Since the
columnar scale-out (DESIGN.md §12) the merge is also **copy-on-write**:
entries the merge does not touch — base entries whose key is absent from
``new``, and ``new``-only entries — are shared by identity into the
output instead of being cloned and re-normalised, exactly as reports
always were (and as ``apply_events_to_dataset`` shares untouched
entries). Only overlapping keys are cloned, claim-normalised and folded.
The practical consequences:

* ``merge_datasets(base, empty)`` returns ``base`` itself;
* merging a small delta into a million-row base allocates O(delta), not
  O(base);
* a hand-built entry with duplicate per-source claims keeps them unless
  the merge actually touches that key (the collection pipeline never
  produces such duplicates; :func:`_normalized_claims` still runs on
  every touched entry).

Columnar corpora merge without any of this hydrating:
:func:`repro.core.columnar.merge.merge_columnar` implements the same
semantics over arrays and is what the scaling benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.ecosystem.package import PackageId
from repro.errors import DatasetError


def _normalized_claims(entry: DatasetEntry) -> List[SourceClaim]:
    """One claim per source: earliest report day, sticky sharing flag.

    The pipeline already guarantees per-source uniqueness; hand-built
    datasets may not, and merging must not amplify such duplicates.
    """
    by_source: Dict[str, SourceClaim] = {}
    for claim in entry.claims:
        held = by_source.get(claim.source)
        if held is None:
            by_source[claim.source] = SourceClaim(
                claim.source, claim.report_day, claim.shares_artifact
            )
        else:
            by_source[claim.source] = SourceClaim(
                claim.source,
                min(held.report_day, claim.report_day),
                held.shares_artifact or claim.shares_artifact,
            )
    return list(by_source.values())


def _clone_entry(entry: DatasetEntry) -> DatasetEntry:
    clone = DatasetEntry(
        package=entry.package,
        claims=_normalized_claims(entry),
        artifact=entry.artifact,
        artifact_origin=entry.artifact_origin,
        release_day=entry.release_day,
        removal_day=entry.removal_day,
        detection_day=entry.detection_day,
        downloads=entry.downloads,
        campaign_id=entry.campaign_id,
        actor=entry.actor,
        archetype=entry.archetype,
        behavior_key=entry.behavior_key,
    )
    return clone


def _merge_into(base: DatasetEntry, extra: DatasetEntry) -> None:
    """Fold ``extra``'s knowledge into ``base`` (same package)."""
    by_source = {c.source: c for c in base.claims}
    for claim in extra.claims:
        held = by_source.get(claim.source)
        if held is None:
            merged = SourceClaim(claim.source, claim.report_day, claim.shares_artifact)
            base.claims.append(merged)
            by_source[claim.source] = merged
        elif claim.report_day < held.report_day:
            by_source[claim.source] = SourceClaim(
                claim.source, claim.report_day,
                held.shares_artifact or claim.shares_artifact,
            )
            base.claims = [
                by_source[c.source] if c.source == claim.source else c
                for c in base.claims
            ]
        elif claim.shares_artifact and not held.shares_artifact:
            replacement = SourceClaim(held.source, held.report_day, True)
            by_source[claim.source] = replacement
            base.claims = [
                replacement if c.source == claim.source else c for c in base.claims
            ]
    if base.artifact is None and extra.artifact is not None:
        base.artifact = extra.artifact
        base.artifact_origin = extra.artifact_origin
    elif (
        base.artifact is not None
        and extra.artifact is not None
        and base.artifact.sha256() != extra.artifact.sha256()
    ):
        raise DatasetError(
            f"conflicting artifacts for {base.package}: "
            f"{base.artifact.sha256()[:12]} vs {extra.artifact.sha256()[:12]}"
        )
    for attr in ("release_day", "removal_day", "detection_day"):
        if getattr(base, attr) is None:
            setattr(base, attr, getattr(extra, attr))
    base.downloads = max(base.downloads, extra.downloads)
    for attr in ("campaign_id", "actor", "archetype", "behavior_key"):
        if getattr(base, attr) is None:
            setattr(base, attr, getattr(extra, attr))


def _entry_sort_key(entry: DatasetEntry) -> Tuple[str, str, str]:
    return (
        entry.package.ecosystem,
        entry.package.name,
        entry.package.version,
    )


def merge_datasets(base: MalwareDataset, new: MalwareDataset) -> MalwareDataset:
    """Union of two collection runs; neither input is mutated.

    Copy-on-write: only entries whose key appears on *both* sides are
    cloned (and claim-normalised) before folding; every other entry —
    and every report — is shared by identity into the output. Output
    entries are sorted by (ecosystem, name, version), reports by id.
    ``merge_datasets(base, empty)`` short-circuits to ``base`` itself.
    """
    if not new.entries and not new.reports:
        return base
    new_keys: Set[PackageId] = set(new.package_keys())
    entries: List[DatasetEntry] = []
    base_keys: Set[PackageId] = set()
    for entry in base.entries:
        base_keys.add(entry.package)
        if entry.package in new_keys:
            clone = _clone_entry(entry)
            _merge_into(clone, new.get(entry.package))
            entries.append(clone)
        else:
            entries.append(entry)  # untouched: shared, not cloned
    for entry in new.entries:
        if entry.package not in base_keys:
            entries.append(entry)  # new-only: shared, not cloned
    entries.sort(key=_entry_sort_key)
    reports: Dict[str, CollectedReport] = {r.report_id: r for r in base.reports}
    for report in new.reports:
        reports.setdefault(report.report_id, report)
    return MalwareDataset(
        entries=entries,
        reports=sorted(reports.values(), key=lambda r: r.report_id),
    )


@dataclass
class DatasetDiff:
    """What changed from ``old`` to ``new``."""

    added: List[PackageId] = field(default_factory=list)
    removed: List[PackageId] = field(default_factory=list)
    newly_available: List[PackageId] = field(default_factory=list)
    new_sources: Dict[PackageId, Set[str]] = field(default_factory=dict)
    new_reports: List[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not (
            self.added
            or self.removed
            or self.newly_available
            or self.new_sources
            or self.new_reports
        )

    def summary(self) -> str:
        return (
            f"+{len(self.added)} packages, -{len(self.removed)}, "
            f"{len(self.newly_available)} newly available, "
            f"{len(self.new_sources)} with new sources, "
            f"+{len(self.new_reports)} reports"
        )


def events_from_datasets(
    old: MalwareDataset,
    new: MalwareDataset,
    touched: Optional[Iterable[PackageId]] = None,
) -> List["GraphEvent"]:
    """The event batch that carries ``old`` to ``new``'s contents.

    Emission order is removals, then updates, then additions (in
    ``new``'s entry order), then new reports. Applying the batch via
    :func:`repro.core.delta.events.apply_events_to_dataset` yields a
    dataset with exactly ``new``'s entries per key; entry *order* follows
    the event semantics (updates in place, additions appended), which is
    the order the delta engine's correctness contract anchors on.

    Updates compare serialised entries, so a re-collection that changed
    nothing emits nothing. ``touched``, when given, is a superset of the
    keys whose knowledge may have changed (e.g. the keys the simulator's
    tick log mentions): keys present on both sides but outside
    ``touched`` skip the O(entry) serialised comparison entirely, which
    is what lets a scale-100 tick window diff in O(delta) instead of
    O(corpus). Additions and removals are always detected from the full
    key sets (those are O(keys), not O(records)).
    """
    from repro.core.delta.events import GraphEvent
    from repro.io.datasets import entry_to_dict

    events: List["GraphEvent"] = []
    old_key_order = old.package_keys()
    new_keys = set(new.package_keys())
    old_keys = set(old_key_order)
    touched_keys = set(touched) if touched is not None else None
    for key in old_key_order:
        if key not in new_keys:
            events.append(GraphEvent.package_removed(key))
    for entry in new.entries:
        if entry.package not in old_keys:
            events.append(GraphEvent.package_added(entry))
            continue
        if touched_keys is not None and entry.package not in touched_keys:
            continue
        counterpart = old.get(entry.package)
        if entry_to_dict(entry) != entry_to_dict(counterpart):
            events.append(GraphEvent.package_detected(entry))
    old_reports = set(old.report_ids())
    for report in new.reports:
        if report.report_id not in old_reports:
            events.append(GraphEvent.report_ingested(report))
    return events


def diff_datasets(old: MalwareDataset, new: MalwareDataset) -> DatasetDiff:
    """Structured difference between two collection runs.

    Membership (added/removed/new reports) is computed from the key
    views alone; per-entry knowledge comparisons run only for keys
    present on both sides.
    """
    diff = DatasetDiff()
    old_keys = set(old.package_keys())
    new_key_order = new.package_keys()
    new_keys = set(new_key_order)
    diff.added = sorted(new_keys - old_keys)
    diff.removed = sorted(old_keys - new_keys)
    for key in new_key_order:
        if key not in old_keys:
            continue
        entry = new.get(key)
        counterpart = old.get(key)
        if entry.available and not counterpart.available:
            diff.newly_available.append(key)
        gained = entry.sources - counterpart.sources
        if gained:
            diff.new_sources[key] = gained
    old_reports = set(old.report_ids())
    diff.new_reports = sorted(
        rid for rid in new.report_ids() if rid not in old_reports
    )
    return diff
