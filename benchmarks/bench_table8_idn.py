"""Table VIII — top-10 increasing download number (IDN) with operations.

Paper shape: the biggest download jumps come from multi-faceted changes
— combinations like (CDep, CD, CN, CC) dominate the top-10 — matching
the trojan strategy of growing a seemingly-legitimate package before
arming it.
"""

from __future__ import annotations


def test_table8_idn(benchmark, artifacts, show):
    table = benchmark(artifacts.table8_idn)
    show("Table VIII: top-10 increasing download number", table.render())

    rows = table.rows
    assert rows, "there must be positive download jumps"
    assert len(rows) <= 10
    idns = [row.idn for row in rows]
    assert idns == sorted(idns, reverse=True), "ranked by decreasing IDN"
    assert idns[0] > 10_000, "the top IDN is a popular-package hijack"
    multi_op = sum(1 for row in rows if len(row.ops) >= 3)
    assert multi_op >= len(rows) // 2, (
        "most top IDNs come from multi-faceted changing operations"
    )
