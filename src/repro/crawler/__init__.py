"""Web-crawler substrate: HTML toolkit, spider, record extraction."""

from repro.crawler.extract import (
    ExtractedReport,
    extract_publish_day,
    extract_report,
    extract_tweet,
    infer_ecosystem,
    is_security_report,
)
from repro.crawler.html import MiniSoup, Node, render_page, tag, text
from repro.crawler.spider import CrawlResult, CrawlStats, Spider

__all__ = [
    "CrawlResult",
    "CrawlStats",
    "ExtractedReport",
    "MiniSoup",
    "Node",
    "Spider",
    "extract_publish_day",
    "extract_report",
    "extract_tweet",
    "infer_ecosystem",
    "is_security_report",
    "render_page",
    "tag",
    "text",
]
