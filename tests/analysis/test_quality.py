"""Table V freshness, Table VI missing rates and Fig. 5 causes."""

from __future__ import annotations

import pytest

from repro.analysis.quality import (
    _cadence_label,
    compute_freshness,
    compute_missing_rates,
    compute_unavailability_causes,
)
from repro.collection.mirrorsearch import MissCause
from repro.collection.records import SourceClaim
from repro.ecosystem.mirror import MirrorNetwork

from tests.core.helpers import dataset, entry


def test_cadence_labels():
    assert _cadence_label(0) == "Never update"
    assert _cadence_label(-1) == "Never update"
    assert _cadence_label(7) == "several per month"
    assert _cadence_label(30) == "one per 1 month"
    assert _cadence_label(60) == "one per 2 month"
    assert _cadence_label(180) == "one per 6 month"


def test_freshness_observes_last_claim_day():
    ds = dataset([entry("a", sources=("snyk",)), entry("b", code="B=1\n")])
    ds.entries[0].claims[0] = SourceClaim("snyk", 500, True)
    ds.entries[1].claims[0] = SourceClaim("snyk", 900, True)
    table = compute_freshness(ds)
    snyk = next(r for r in table.rows if r.source == "snyk")
    assert snyk.last_update_day == 900
    assert snyk.cadence == "one per 2 month"
    assert snyk.last_update_date != "-"


def test_freshness_unseen_source_renders_dash():
    ds = dataset([entry("a", sources=("snyk",))])
    table = compute_freshness(ds)
    socket = next(r for r in table.rows if r.source == "socket")
    assert socket.last_update_day is None
    assert socket.last_update_date == "-"


def test_missing_rates_single_vs_all():
    """An entry whose claiming source shared nothing but whose artifact
    came from a mirror counts missing-single but not missing-all."""
    recovered = entry("rec")
    recovered.claims = [SourceClaim("phylum", 10, shares_artifact=False)]
    recovered.artifact_origin = "mirror:pypi-m1"
    gone = entry("gone", code=None)
    gone.claims = [SourceClaim("phylum", 12, shares_artifact=False)]
    ds = dataset([recovered, gone])
    table = compute_missing_rates(ds)
    phylum = next(r for r in table.rows if r.source == "phylum")
    assert phylum.total == 2
    assert phylum.missing_single == 2
    assert phylum.missing_all == 1
    assert phylum.single_rate == 100.0
    assert phylum.all_rate == 50.0
    assert table.overall_missing == 1
    assert table.overall_rate == 50.0


def test_missing_rates_empty_source_row():
    table = compute_missing_rates(dataset([entry("a")]))
    socket = next(r for r in table.rows if r.source == "socket")
    assert socket.total == 0
    assert socket.single_rate == 0.0


def test_missing_rate_all_never_exceeds_single(small_dataset):
    """Supplementation can only reduce the missing rate (Table VI)."""
    table = compute_missing_rates(small_dataset)
    for row in table.rows:
        assert row.all_rate <= row.single_rate + 1e-9


def test_unavailability_causes_empty_mirrors():
    ds = dataset([entry("gone", code=None, release_day=5)])
    causes = compute_unavailability_causes(ds, MirrorNetwork())
    assert causes.total == 1
    assert sum(causes.counts.values()) == 1


def test_unavailability_fraction():
    ds = dataset(
        [
            entry("g1", code=None, release_day=5),
            entry("g2", code=None, release_day=6),
        ]
    )
    causes = compute_unavailability_causes(ds, MirrorNetwork())
    top_cause = max(causes.counts, key=causes.counts.get)
    assert causes.fraction(top_cause) == pytest.approx(1.0)


def test_world_unavailability_covers_both_paper_causes(paper):
    """Fig. 5: both causes appear — released too early AND removed too
    fast — at full scale."""
    causes = paper.fig5_causes()
    assert causes.counts.get(MissCause.RELEASED_TOO_EARLY, 0) > 0
    assert causes.counts.get(MissCause.PERSISTED_TOO_BRIEFLY, 0) > 0
    assert causes.total == len(paper.dataset.unavailable_entries())


def test_world_sharing_sources_have_low_missing_rate(small_dataset):
    table = compute_missing_rates(small_dataset)
    by_key = {r.source: r for r in table.rows}
    if by_key["datadog"].total:
        assert by_key["datadog"].single_rate < 5.0
    if by_key["socket"].total:
        assert by_key["socket"].single_rate == 100.0
