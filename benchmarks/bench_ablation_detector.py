"""Ablation — detection rule families vs precision/recall.

The detector combines AST rules with typosquat checking. Each variant
drops one family and re-scores the labelled corpus; the deltas show
which signals carry the verdicts.

Expected shape: the full rule set dominates on F1; dropping the
install-hook rule costs recall (install-time execution is the dominant
trigger); dropping everything but metadata heuristics collapses recall.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.detection.detector import Detector
from repro.detection.rules import (
    DEFAULT_RULES,
    InstallHookRule,
    MetadataAnomalyRule,
)
from repro.detection.scanner import evaluate_on_corpus
from repro.detection.typosquat import TyposquatIndex
from repro.malware.corpus import CorpusConfig, build_corpus

SAMPLE = 250


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusConfig(seed=11, scale=0.25))


def _no_squat_index() -> TyposquatIndex:
    return TyposquatIndex(popular={})


VARIANTS: Dict[str, Detector] = {
    "full": Detector(),
    "no-install-hook": Detector(
        rules=tuple(r for r in DEFAULT_RULES if not isinstance(r, InstallHookRule))
    ),
    "no-typosquat": Detector(typosquat_index=_no_squat_index()),
    "metadata-only": Detector(
        rules=(MetadataAnomalyRule(),), typosquat_index=_no_squat_index()
    ),
}


@pytest.fixture(scope="module")
def results(corpus, request):
    show = request.getfixturevalue("show")
    scored = {
        name: evaluate_on_corpus(corpus, detector, sample=SAMPLE)
        for name, detector in VARIANTS.items()
    }
    lines = ["variant           precision  recall     F1"]
    for name, result in scored.items():
        lines.append(
            f"{name:<17} {result.precision:>9.3f} {result.recall:>7.3f} "
            f"{result.f1:>6.3f}"
        )
    show("Ablation: detector rule families", "\n".join(lines))
    _assert_shape(scored)
    return scored


def _assert_shape(results) -> None:
    full = results["full"]
    assert full.recall > 0.95 and full.precision > 0.9
    assert full.f1 >= results["no-install-hook"].f1
    assert results["no-install-hook"].recall < full.recall + 1e-9
    assert results["metadata-only"].recall < 0.5, (
        "metadata heuristics alone cannot carry detection"
    )


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_detector_variant(benchmark, corpus, results, variant):
    result = benchmark(
        evaluate_on_corpus, corpus, VARIANTS[variant], SAMPLE
    )
    assert result.f1 == pytest.approx(results[variant].f1)
