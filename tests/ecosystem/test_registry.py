"""Registry life cycle: publish -> detect -> remove (Fig. 6 phases 2-4)."""

import pytest

from repro.ecosystem.package import make_artifact
from repro.ecosystem.registry import (
    EventKind,
    Registry,
    RegistryHub,
)
from repro.errors import (
    DuplicatePackageError,
    PackageNotFoundError,
    PackageRemovedError,
)


def art(name="left-pad", version="1.0.0", ecosystem="npm"):
    return make_artifact(ecosystem, name, version, {"index.py": "x = 1\n"})


@pytest.fixture
def registry():
    return Registry("npm")


class TestPublish:
    def test_publish_makes_package_live(self, registry):
        record = registry.publish(art(), day=10)
        assert record.live
        assert record.release_day == 10
        assert ("left-pad", "1.0.0") in registry
        assert len(registry) == 1

    def test_publish_emits_event(self, registry):
        registry.publish(art(), day=10)
        (event,) = registry.events
        assert event.kind is EventKind.PUBLISH
        assert event.day == 10
        assert event.package.name == "left-pad"

    def test_duplicate_version_rejected(self, registry):
        registry.publish(art(), day=1)
        with pytest.raises(DuplicatePackageError):
            registry.publish(art(), day=2)

    def test_same_name_new_version_allowed(self, registry):
        registry.publish(art(version="1.0.0"), day=1)
        registry.publish(art(version="1.0.1"), day=2)
        assert len(registry) == 2

    def test_wrong_ecosystem_rejected(self, registry):
        with pytest.raises(DuplicatePackageError):
            registry.publish(art(ecosystem="pypi"), day=1)

    def test_malicious_flag_recorded(self, registry):
        record = registry.publish(art(), day=1, malicious=True)
        assert record.malicious


class TestFetch:
    def test_fetch_live_package(self, registry):
        registry.publish(art(), day=1)
        fetched = registry.fetch("left-pad", "1.0.0")
        assert fetched.name == "left-pad"

    def test_fetch_unknown_raises(self, registry):
        with pytest.raises(PackageNotFoundError):
            registry.fetch("ghost", "0.0.1")

    def test_fetch_removed_raises(self, registry):
        registry.publish(art(), day=1)
        registry.remove("left-pad", "1.0.0", day=5)
        with pytest.raises(PackageRemovedError):
            registry.fetch("left-pad", "1.0.0")

    def test_get_still_returns_removed_record(self, registry):
        registry.publish(art(), day=1)
        registry.remove("left-pad", "1.0.0", day=5)
        record = registry.get("left-pad", "1.0.0")
        assert not record.live
        assert record.persist_days == 4


class TestDetectAndRemove:
    def test_mark_detected_sets_first_detection_only(self, registry):
        registry.publish(art(), day=1)
        registry.mark_detected("left-pad", "1.0.0", day=3, by="snyk")
        registry.mark_detected("left-pad", "1.0.0", day=9, by="phylum")
        assert registry.get("left-pad", "1.0.0").detection_day == 3
        detects = [e for e in registry.events if e.kind is EventKind.DETECT]
        assert len(detects) == 1
        assert detects[0].detail == "snyk"

    def test_remove_is_idempotent(self, registry):
        registry.publish(art(), day=1)
        registry.remove("left-pad", "1.0.0", day=5)
        registry.remove("left-pad", "1.0.0", day=9)
        assert registry.get("left-pad", "1.0.0").removal_day == 5
        removes = [e for e in registry.events if e.kind is EventKind.REMOVE]
        assert len(removes) == 1

    def test_removed_name_stays_taken(self, registry):
        registry.publish(art(), day=1)
        registry.remove("left-pad", "1.0.0", day=5)
        assert registry.name_taken("left-pad"), (
            "a removed name cannot be re-registered — the mechanism that "
            "forces the paper's changing->release loop"
        )

    def test_persist_days_none_while_live(self, registry):
        registry.publish(art(), day=1)
        assert registry.get("left-pad", "1.0.0").persist_days is None


class TestDownloadsAndSnapshots:
    def test_record_downloads_accumulates(self, registry):
        registry.publish(art(), day=1)
        registry.record_downloads("left-pad", "1.0.0", 5)
        registry.record_downloads("left-pad", "1.0.0", 2)
        assert registry.get("left-pad", "1.0.0").downloads == 7

    def test_downloads_ignored_after_removal(self, registry):
        registry.publish(art(), day=1)
        registry.remove("left-pad", "1.0.0", day=2)
        registry.record_downloads("left-pad", "1.0.0", 100)
        assert registry.get("left-pad", "1.0.0").downloads == 0

    def test_live_snapshot_excludes_removed(self, registry):
        registry.publish(art(version="1.0.0"), day=1)
        registry.publish(art(version="1.0.1"), day=1)
        registry.remove("left-pad", "1.0.0", day=2)
        snapshot = registry.live_snapshot()
        assert set(snapshot) == {("left-pad", "1.0.1")}

    def test_live_packages_vs_all_packages(self, registry):
        registry.publish(art(version="1.0.0"), day=1)
        registry.publish(art(version="1.0.1"), day=1)
        registry.remove("left-pad", "1.0.0", day=2)
        assert len(list(registry.live_packages())) == 1
        assert len(list(registry.all_packages())) == 2


class TestRegistryHub:
    def test_lookup_routes_by_ecosystem(self):
        hub = RegistryHub(["npm", "pypi"])
        record = hub["npm"].publish(art(), day=1)
        assert hub.lookup(record.artifact.id) is record

    def test_unknown_ecosystem_raises(self):
        hub = RegistryHub(["npm"])
        with pytest.raises(PackageNotFoundError):
            hub["cargo"]

    def test_total_packages_sums_registries(self):
        hub = RegistryHub(["npm", "pypi"])
        hub["npm"].publish(art(), day=1)
        hub["pypi"].publish(art(ecosystem="pypi"), day=1)
        assert hub.total_packages() == 2
        assert sorted(hub.ecosystems) == ["npm", "pypi"]
