"""Section II-D "Dynamic Changing" — analysis stability over time.

Paper claim: "Our dataset covers an extended period, and the analysis
results are stable with time." Measured: the headline *rate* metrics
(overall missing rate, single-source fraction) on six growing snapshots
of the full dataset settle to within a few percent between the last two
snapshots, while the raw counts keep accumulating.
"""

from __future__ import annotations

import pytest

from repro.analysis.stability import compute_stability


def test_dynamic_changing_stability(benchmark, artifacts, show):
    series = benchmark(compute_stability, artifacts.dataset, 6)
    show(
        "Section II-D: analysis stability over growing snapshots",
        series.render(),
    )
    assert len(series.cutoffs) == 6
    assert series.final_drift("missing_rate_%") < 0.05, (
        "the missing rate has settled by the study horizon"
    )
    assert series.final_drift("single_source_%") < 0.05, (
        "the overlap structure has settled by the study horizon"
    )
    packages = series.metrics["packages"]
    assert packages == sorted(packages), "records only accumulate"
    assert packages[-1] == len(artifacts.dataset)
