"""Query evaluation vs a naive reference implementation (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import EdgeType, PropertyGraph
from repro.core.query import run_query

_ECOSYSTEMS = ["npm", "pypi", "rubygems"]


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 8))
    graph = PropertyGraph()
    attrs = {}
    for idx in range(n):
        node = f"n{idx}"
        eco = draw(st.sampled_from(_ECOSYSTEMS))
        day = draw(st.integers(0, 100))
        graph.add_node(node, ecosystem=eco, release_day=day, name=f"pkg{idx}")
        attrs[node] = {"ecosystem": eco, "release_day": day, "name": f"pkg{idx}"}
    pairs = draw(
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=10)
    )
    edges = set()
    for i, j in pairs:
        if i != j:
            graph.add_edge(f"n{i}", f"n{j}", EdgeType.SIMILAR)
            edges.add(frozenset((f"n{i}", f"n{j}")))
    return graph, attrs, edges


@given(graphs(), st.sampled_from(_ECOSYSTEMS))
@settings(max_examples=80, deadline=None)
def test_node_filter_matches_reference(data, eco):
    graph, attrs, _edges = data
    rows = run_query(
        graph, f"MATCH (a) WHERE a.ecosystem = '{eco}' RETURN a"
    )
    expected = {node for node, a in attrs.items() if a["ecosystem"] == eco}
    assert {r[0] for r in rows} == expected


@given(graphs(), st.integers(0, 100))
@settings(max_examples=80, deadline=None)
def test_numeric_filter_matches_reference(data, threshold):
    graph, attrs, _edges = data
    rows = run_query(
        graph, f"MATCH (a) WHERE a.release_day <= {threshold} RETURN a"
    )
    expected = {n for n, a in attrs.items() if a["release_day"] <= threshold}
    assert {r[0] for r in rows} == expected


@given(graphs())
@settings(max_examples=80, deadline=None)
def test_edge_expansion_matches_reference(data):
    graph, _attrs, edges = data
    rows = run_query(graph, "MATCH (a)-[:similar]-(b) RETURN a, b")
    seen = {frozenset(row) for row in rows}
    assert seen == edges
    # every undirected edge appears exactly twice (both orientations)
    assert len(rows) == 2 * len(edges)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_count_matches_row_count(data):
    graph, attrs, _edges = data
    (count,) = run_query(graph, "MATCH (a) RETURN count(*)")[0]
    assert count == len(attrs)


@given(graphs(), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_limit_truncates(data, limit):
    graph, attrs, _edges = data
    rows = run_query(graph, f"MATCH (a) RETURN a ORDER BY a.release_day LIMIT {limit}")
    assert len(rows) == min(limit, len(attrs))


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_order_by_sorts(data):
    graph, attrs, _edges = data
    rows = run_query(graph, "MATCH (a) RETURN a.release_day ORDER BY a.release_day")
    days = [r[0] for r in rows]
    assert days == sorted(days)
