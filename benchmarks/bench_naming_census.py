"""Naming-tactic census — name imitation as the dominant attack vector.

Related-work claim (Spellbound et al.), measured on the collected
dataset: a large share of malicious package names imitate a popular
package (typosquat or combosquat), and the most-imitated targets are
the ecosystem's flagship packages.
"""

from __future__ import annotations

import pytest

from repro.analysis.naming import compute_naming_census
from repro.malware.naming import POPULAR_NAMES


def test_naming_census(benchmark, artifacts, show):
    census = benchmark(compute_naming_census, artifacts.dataset)
    show("Naming-tactic census", census.render())

    assert census.overall_imitation_share > 30.0, (
        "a large share of malicious names imitate popular packages"
    )
    by_eco = {row.ecosystem: row for row in census.rows}
    assert by_eco["npm"].packages > 0 and by_eco["pypi"].packages > 0
    # flagship packages dominate the watch list
    assert census.top_targets
    for ecosystem, target, hits in census.top_targets:
        assert target in POPULAR_NAMES[ecosystem]
        assert hits >= 1
