"""Degradation accounting for a resilient collection run.

A :class:`DegradationReport` is the quarantine ledger: everything that
failed, how hard we tried, and what the run gave up on. Its central
invariant — checked by the chaos tests — is that the books balance::

    sum(faults_injected.values())
        == errors_recovered + errors_fatal
        == sum(errors_by_kind.values())

i.e. every injected fault surfaced as exactly one observed transient
error, and every observed error was either retried away or ended in a
quarantined skip. Record-drift faults (``record_*`` kinds) are the one
deliberate exception: they never raise — each corrupted record is
quarantined by connector schema validation instead — so for them the
matching invariant is ``injected record_* faults ==
sum(quarantine_by_kind.values())``. ``to_dict`` is canonical (sorted
keys, plain types) so two runs with the same fault-plan seed serialise
byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class DegradationReport:
    """What a resilient collection run survived, and at what cost."""

    #: fault plan that drove the run (canonical dict), if any.
    fault_plan: Optional[dict] = None
    #: ledger of faults the injector actually fired, by kind.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: resilient operations attempted / total retries spent.
    operations: int = 0
    retries: int = 0
    #: attempts-per-operation histogram: {attempts: operation count}.
    retry_histogram: Dict[int, int] = field(default_factory=dict)
    #: observed transient errors by error ``kind`` and by source label.
    errors_by_kind: Dict[str, int] = field(default_factory=dict)
    errors_by_source: Dict[str, int] = field(default_factory=dict)
    #: errors absorbed by a later successful attempt vs. errors whose
    #: operation exhausted its budget (these led to a quarantine entry).
    errors_recovered: int = 0
    errors_fatal: int = 0
    #: what the run gave up on.
    skipped_urls: List[str] = field(default_factory=list)
    skipped_sites: List[str] = field(default_factory=list)
    skipped_sources: List[str] = field(default_factory=list)
    #: source -> records lost to a partial (truncated) feed emission.
    partial_sources: Dict[str, int] = field(default_factory=dict)
    #: source -> fetch attempts its feed pulls consumed (retries
    #: included), so "how hard did we hammer this source" is auditable
    #: per source, not only in the global retry histogram.
    feed_attempts: Dict[str, int] = field(default_factory=dict)
    #: source -> records quarantined by connector schema validation
    #: (format drift), and the same count broken down by drift kind.
    #: Under a drift plan ``sum(quarantined_records.values()) ==
    #: sum(quarantine_by_kind.values()) == injected record_* faults``.
    quarantined_records: Dict[str, int] = field(default_factory=dict)
    quarantine_by_kind: Dict[str, int] = field(default_factory=dict)
    mirror_lookups_skipped: int = 0
    #: breakers that opened at least once, and ops refused while open.
    tripped_breakers: List[str] = field(default_factory=list)
    breaker_skips: int = 0

    # -- bookkeeping hooks -------------------------------------------------
    def note_error(self, source: str, kind: str) -> None:
        """One observed transient error of ``kind`` while working ``source``."""
        self.errors_by_kind[kind] = self.errors_by_kind.get(kind, 0) + 1
        self.errors_by_source[source] = (
            self.errors_by_source.get(source, 0) + 1
        )

    def note_success(self, attempts: int) -> None:
        """An operation succeeded on its ``attempts``-th attempt."""
        self._note_operation(attempts)
        self.errors_recovered += attempts - 1

    def note_exhausted(self, attempts: int) -> None:
        """An operation failed all ``attempts`` attempts."""
        self._note_operation(attempts)
        self.errors_fatal += attempts

    def _note_operation(self, attempts: int) -> None:
        self.operations += 1
        self.retries += attempts - 1
        self.retry_histogram[attempts] = (
            self.retry_histogram.get(attempts, 0) + 1
        )

    def skip_url(self, url: str) -> None:
        self.skipped_urls.append(url)

    def skip_site(self, site: str) -> None:
        self.skipped_sites.append(site)

    def skip_source(self, source: str) -> None:
        self.skipped_sources.append(source)

    def partial_source(self, source: str, records_lost: int) -> None:
        self.partial_sources[source] = records_lost

    def feed_attempt(self, source: str, attempts: int) -> None:
        """Book ``attempts`` feed-fetch attempts against ``source``."""
        self.feed_attempts[source] = (
            self.feed_attempts.get(source, 0) + attempts
        )

    def quarantine_record(self, source: str, kind: str) -> None:
        """One record of ``source`` failed schema validation (``kind``)."""
        self.quarantined_records[source] = (
            self.quarantined_records.get(source, 0) + 1
        )
        self.quarantine_by_kind[kind] = (
            self.quarantine_by_kind.get(kind, 0) + 1
        )

    def skip_mirror_lookup(self) -> None:
        self.mirror_lookups_skipped += 1

    def trip_breaker(self, name: str) -> None:
        self.tripped_breakers.append(name)

    def skip_for_breaker(self) -> None:
        self.breaker_skips += 1

    # -- summary -----------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True when the run gave anything up (vs. recovering everything)."""
        return bool(
            self.skipped_urls
            or self.skipped_sites
            or self.skipped_sources
            or self.partial_sources
            or self.quarantined_records
            or self.mirror_lookups_skipped
            or self.breaker_skips
        )

    def to_dict(self) -> dict:
        """Canonical plain-dict form (stable ordering, JSON-safe keys)."""
        return {
            "fault_plan": self.fault_plan,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "operations": self.operations,
            "retries": self.retries,
            "retry_histogram": {
                str(attempts): count
                for attempts, count in sorted(self.retry_histogram.items())
            },
            "errors_by_kind": dict(sorted(self.errors_by_kind.items())),
            "errors_by_source": dict(sorted(self.errors_by_source.items())),
            "errors_recovered": self.errors_recovered,
            "errors_fatal": self.errors_fatal,
            "skipped_urls": list(self.skipped_urls),
            "skipped_sites": list(self.skipped_sites),
            "skipped_sources": list(self.skipped_sources),
            "partial_sources": dict(sorted(self.partial_sources.items())),
            "feed_attempts": dict(sorted(self.feed_attempts.items())),
            "quarantined_records": dict(
                sorted(self.quarantined_records.items())
            ),
            "quarantine_by_kind": dict(
                sorted(self.quarantine_by_kind.items())
            ),
            "mirror_lookups_skipped": self.mirror_lookups_skipped,
            "tripped_breakers": list(self.tripped_breakers),
            "breaker_skips": self.breaker_skips,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DegradationReport":
        return cls(
            fault_plan=raw.get("fault_plan"),
            faults_injected=dict(raw.get("faults_injected", {})),
            operations=raw.get("operations", 0),
            retries=raw.get("retries", 0),
            retry_histogram={
                int(attempts): count
                for attempts, count in raw.get("retry_histogram", {}).items()
            },
            errors_by_kind=dict(raw.get("errors_by_kind", {})),
            errors_by_source=dict(raw.get("errors_by_source", {})),
            errors_recovered=raw.get("errors_recovered", 0),
            errors_fatal=raw.get("errors_fatal", 0),
            skipped_urls=list(raw.get("skipped_urls", [])),
            skipped_sites=list(raw.get("skipped_sites", [])),
            skipped_sources=list(raw.get("skipped_sources", [])),
            partial_sources=dict(raw.get("partial_sources", {})),
            feed_attempts=dict(raw.get("feed_attempts", {})),
            quarantined_records=dict(raw.get("quarantined_records", {})),
            quarantine_by_kind=dict(raw.get("quarantine_by_kind", {})),
            mirror_lookups_skipped=raw.get("mirror_lookups_skipped", 0),
            tripped_breakers=list(raw.get("tripped_breakers", [])),
            breaker_skips=raw.get("breaker_skips", 0),
        )

    def render(self) -> str:
        """Human-readable multi-line summary for CLI output."""
        status = "DEGRADED" if self.degraded else "fully recovered"
        lines = [
            f"degradation: {status}",
            f"  operations: {self.operations}  retries: {self.retries}",
            f"  errors: {self.errors_recovered} recovered, "
            f"{self.errors_fatal} fatal",
        ]
        if self.faults_injected:
            injected = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.faults_injected.items())
            )
            lines.append(f"  faults injected: {injected}")
        if self.retry_histogram:
            histogram = ", ".join(
                f"{attempts}x:{count}"
                for attempts, count in sorted(self.retry_histogram.items())
            )
            lines.append(f"  attempts histogram: {histogram}")
        if self.skipped_urls:
            lines.append(f"  skipped URLs: {len(self.skipped_urls)}")
        if self.skipped_sites:
            lines.append(
                "  skipped sites: " + ", ".join(self.skipped_sites)
            )
        if self.skipped_sources:
            lines.append(
                "  skipped sources: " + ", ".join(self.skipped_sources)
            )
        if self.partial_sources:
            partial = ", ".join(
                f"{source} (-{lost})"
                for source, lost in sorted(self.partial_sources.items())
            )
            lines.append(f"  partial sources: {partial}")
        if self.quarantined_records:
            quarantined = ", ".join(
                f"{source} ({count})"
                for source, count in sorted(self.quarantined_records.items())
            )
            lines.append(f"  records quarantined: {quarantined}")
        if self.mirror_lookups_skipped:
            lines.append(
                f"  mirror lookups skipped: {self.mirror_lookups_skipped}"
            )
        if self.tripped_breakers:
            lines.append(
                "  tripped breakers: " + ", ".join(self.tripped_breakers)
            )
        if self.breaker_skips:
            lines.append(f"  breaker fast-fails: {self.breaker_skips}")
        return "\n".join(lines)
