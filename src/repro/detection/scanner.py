"""Registry scanning with the detector.

The continuous-scanning loop the paper's intel sources run: walk a
registry's recently published packages, score each with the
:class:`~repro.detection.detector.Detector` and emit alerts. Also hosts
the labelled-corpus evaluation used by the detector benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detection.detector import Detector, EvaluationResult, Verdict, evaluate
from repro.ecosystem.registry import Registry, RegistryHub
from repro.malware.corpus import Corpus


@dataclass
class ScanAlert:
    """One flagged package from a registry sweep."""

    ecosystem: str
    name: str
    version: str
    release_day: int
    verdict: Verdict


@dataclass
class RegistryScanner:
    """Sweeps registries with a detector."""

    detector: Detector = field(default_factory=Detector)

    def sweep(
        self,
        registry: Registry,
        since_day: int = 0,
        until_day: Optional[int] = None,
    ) -> List[ScanAlert]:
        """Scan everything published in [since_day, until_day]."""
        alerts: List[ScanAlert] = []
        for record in registry.all_packages():
            if record.release_day < since_day:
                continue
            if until_day is not None and record.release_day > until_day:
                continue
            verdict = self.detector.scan(record.artifact)
            if verdict.malicious:
                alerts.append(
                    ScanAlert(
                        ecosystem=registry.ecosystem,
                        name=record.artifact.name,
                        version=record.artifact.version,
                        release_day=record.release_day,
                        verdict=verdict,
                    )
                )
        return alerts

    def sweep_hub(self, hub: RegistryHub, since_day: int = 0) -> List[ScanAlert]:
        alerts: List[ScanAlert] = []
        for registry in hub:
            alerts.extend(self.sweep(registry, since_day=since_day))
        return alerts


def evaluate_on_corpus(
    corpus: Corpus, detector: Optional[Detector] = None, sample: Optional[int] = None
) -> EvaluationResult:
    """Precision/recall of the detector on the generated ground truth.

    Malicious side: payload-carrying release artifacts. Benign side: the
    corpus's legitimate package population. ``sample`` caps each side
    for quick runs.
    """
    detector = detector or Detector()
    malicious = [
        release.artifact
        for campaign, release in corpus.releases()
        if release.carries_payload
    ]
    benign = [b.artifact for b in corpus.benign]
    if sample is not None:
        malicious = malicious[:sample]
        benign = benign[:sample]
    return evaluate(detector, malicious, benign)
