"""Fig. 5 — the two causes of package unavailability.

Paper shape: a package is unrecoverable from mirrors either because it
was released too early (all mirrors had re-synced the removal) or
because it persisted too briefly (removed before any mirror synced it).
Short persistence is the dominant cause — registries remove malware
quickly.
"""

from __future__ import annotations

from repro.collection.mirrorsearch import MissCause


def test_fig5_causes(benchmark, artifacts, show):
    causes = benchmark(artifacts.fig5_causes)
    show("Fig. 5: causes of package unavailability", causes.render())

    counts = causes.counts
    assert counts.get(MissCause.PERSISTED_TOO_BRIEFLY, 0) > 0
    assert counts.get(MissCause.RELEASED_TOO_EARLY, 0) > 0
    assert counts[MissCause.PERSISTED_TOO_BRIEFLY] >= counts[
        MissCause.RELEASED_TOO_EARLY
    ], "fast registry takedown is the dominant cause of missing artifacts"
    total = sum(counts.values())
    assert abs(sum(causes.fraction(c) for c in counts) - 1.0) < 1e-9
    assert total > 0
