"""Similar-edge stage performance: serial vs parallel, cold vs warm.

Standalone script (not a pytest bench) so CI can run it in fast mode:

    PYTHONPATH=src python benchmarks/bench_similarity_perf.py --fast

Three comparisons, each with a hard correctness gate before any number
is reported:

1. **serial vs parallel** ``MalGraph.build`` — the parallel graph must
   serialise byte-identically to the serial one (``jobs`` is an
   execution knob, never a result knob);
2. **cold vs warm embedding cache** — a similarity-knob sweep over a
   warmed cache must skip 100% of re-embeds and produce the same
   groups;
3. **cold vs warm-start** ``grow_kmeans`` — on recoverable structure the
   warm-started growth loop must reach the identical partition, in no
   more total Lloyd iterations.

Speedups depend on the host (a single-core runner cannot show a
parallel win); the correctness gates do not.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.kmeans import grow_kmeans
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig, cluster_artifacts
from repro.io.malgraphs import malgraph_to_dict
from repro.pipeline.store import ArtifactStore
from repro.world import WorldConfig, build_world, collect


def _timed(fn, rounds: int):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _canonical(malgraph: MalGraph) -> bytes:
    return json.dumps(malgraph_to_dict(malgraph), sort_keys=True).encode()


def bench_serial_vs_parallel(dataset, jobs: int, rounds: int) -> None:
    print(f"\n== serial vs parallel MalGraph.build (jobs={jobs}) ==")
    serial_s, serial = _timed(
        lambda: MalGraph.build(dataset, SimilarityConfig(jobs=1)), rounds
    )
    parallel_s, parallel = _timed(
        lambda: MalGraph.build(dataset, SimilarityConfig(jobs=jobs)), rounds
    )
    assert _canonical(serial) == _canonical(parallel), (
        "parallel build is not byte-identical to serial"
    )
    print(f"serial   {serial_s:8.3f}s")
    print(
        f"parallel {parallel_s:8.3f}s   speedup {serial_s / parallel_s:5.2f}x"
        "   (byte-identical: yes)"
    )


def bench_embedding_cache(artifacts, rounds: int) -> None:
    print("\n== cold vs warm embedding cache (min_similarity sweep) ==")
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-embed-cache-"))
    try:
        cold_s, cold = _timed(
            lambda: cluster_artifacts(
                artifacts,
                SimilarityConfig(),
                store=ArtifactStore(cache_dir=cache_dir),
            ),
            1,
        )
        sweep_s, sweep = _timed(
            lambda: cluster_artifacts(
                artifacts,
                SimilarityConfig(min_similarity=0.5),
                store=ArtifactStore(cache_dir=cache_dir),
            ),
            rounds,
        )
        same_knobs_s, warm = _timed(
            lambda: cluster_artifacts(
                artifacts,
                SimilarityConfig(),
                store=ArtifactStore(cache_dir=cache_dir),
            ),
            rounds,
        )
        assert sweep.timings.cache_misses == 0, "sweep re-embedded vectors"
        assert warm.timings.cache_misses == 0, "warm run re-embedded vectors"
        assert warm.groups == cold.groups, "warm groups differ from cold"
        unique = cold.timings.unique_artifacts
        print(
            f"cold  {cold_s:8.3f}s   ({cold.timings.cache_misses}/{unique} embedded)"
        )
        print(
            f"sweep {sweep_s:8.3f}s   speedup {cold_s / sweep_s:5.2f}x"
            f"   (re-embeds skipped: {unique}/{unique})"
        )
        print(
            f"warm  {same_knobs_s:8.3f}s   speedup {cold_s / same_knobs_s:5.2f}x"
            "   (identical groups: yes)"
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def bench_warm_start(rounds: int) -> None:
    print("\n== cold vs warm-start grow_kmeans (separable structure) ==")

    def blobs(seed: int, centers=6, per=200, dim=64, noise=0.01):
        rng = np.random.default_rng(seed)
        points = []
        for _ in range(centers):
            center = rng.normal(size=dim)
            center /= np.linalg.norm(center)
            blob = center + noise * rng.normal(size=(per, dim))
            points.append(blob / np.linalg.norm(blob, axis=1, keepdims=True))
        return np.vstack(points)

    X = blobs(0)
    cold_s, (cold, cold_trace) = _timed(
        lambda: grow_kmeans(X, start_k=3, seed=0, max_k=6), rounds
    )
    warm_s, (warm, warm_trace) = _timed(
        lambda: grow_kmeans(X, start_k=3, seed=0, max_k=6, warm_start=True),
        rounds,
    )
    parts = lambda r: sorted(tuple(sorted(m.tolist())) for m in r.clusters())
    assert parts(cold) == parts(warm), "warm start changed the partition"
    cold_iters = sum(t.iterations for t in cold_trace)
    warm_iters = sum(t.iterations for t in warm_trace)
    assert warm_iters <= cold_iters, "warm start took more Lloyd iterations"
    print(f"cold  {cold_s:8.3f}s   {cold_iters:3d} Lloyd iterations")
    print(
        f"warm  {warm_s:8.3f}s   {warm_iters:3d} Lloyd iterations"
        f"   speedup {cold_s / warm_s:5.2f}x   (identical partition: yes)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI mode: 1 round at a small scale",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.scale, args.rounds = 0.15, 1

    print(f"scale={args.scale} jobs={args.jobs} rounds={args.rounds}")
    world = build_world(WorldConfig(seed=7, scale=args.scale))
    dataset = collect(world).dataset
    artifacts = [
        e.artifact for e in dataset.available_entries() if e.artifact.code_files()
    ]
    print(f"dataset: {len(dataset.entries)} entries, {len(artifacts)} embeddable")

    bench_serial_vs_parallel(dataset, args.jobs, args.rounds)
    bench_embedding_cache(artifacts, args.rounds)
    bench_warm_start(args.rounds)
    print("\nall correctness gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
