"""Mirror recovery (Section II-C).

For every dataset entry whose artifact no source shared, search the
mirror fleet by (ecosystem, name, version). Mirrors lag — or never purge
— the root registry, so a fraction of removed packages is still
recoverable. The per-entry outcome also records *why* recovery failed,
feeding the Fig. 5 unavailability-cause analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.collection.records import DatasetEntry
from repro.ecosystem.mirror import MirrorNetwork


class MissCause(str, Enum):
    """Why a package could not be recovered from any mirror (Fig. 5)."""

    RELEASED_TOO_EARLY = "released-too-early"  # before mirror coverage
    PERSISTED_TOO_BRIEFLY = "persisted-too-briefly"  # removed inside the sync gap
    NO_MIRROR_COVERAGE = "no-mirror-coverage"  # ecosystem has no mirrors


@dataclass
class RecoveryStats:
    """Aggregate outcome of one mirror-recovery pass."""

    attempted: int = 0
    recovered: int = 0
    misses: Dict[MissCause, int] = field(default_factory=dict)
    #: lookups abandoned because the mirror fleet stayed unreachable
    #: (degraded runs only) — inconclusive, so not a Fig. 5 miss.
    skipped: int = 0

    def record_miss(self, cause: MissCause) -> None:
        self.misses[cause] = self.misses.get(cause, 0) + 1

    @property
    def recovery_rate(self) -> float:
        return self.recovered / self.attempted if self.attempted else 0.0


def classify_miss(
    entry: DatasetEntry, mirrors: MirrorNetwork
) -> MissCause:
    """Attribute a recovery failure to one of the Fig. 5 causes."""
    fleet = mirrors.for_ecosystem(entry.package.ecosystem)
    if not fleet:
        return MissCause.NO_MIRROR_COVERAGE
    earliest_archival_start = min(
        (m.start_day for m in fleet if m.archival), default=None
    )
    release = entry.release_day
    if release is not None and earliest_archival_start is not None:
        if release < earliest_archival_start:
            return MissCause.RELEASED_TOO_EARLY
        return MissCause.PERSISTED_TOO_BRIEFLY
    if release is not None and earliest_archival_start is None:
        return MissCause.PERSISTED_TOO_BRIEFLY
    return MissCause.RELEASED_TOO_EARLY


def recover_from_mirrors(
    entries: List[DatasetEntry], mirrors: MirrorNetwork, resilience=None
) -> RecoveryStats:
    """Try mirror recovery for every artifact-less entry, in place.

    With a :class:`repro.reliability.ResilienceContext`, each fleet scan
    is retried through a per-ecosystem circuit breaker; a scan that stays
    inconclusive (mirror down after every retry, or breaker open) is
    counted in ``stats.skipped`` and quarantined into the degradation
    report rather than misclassified as a Fig. 5 miss.
    """
    stats = RecoveryStats()
    for entry in entries:
        if entry.available:
            continue
        stats.attempted += 1
        package = entry.package
        if resilience is None:
            hit = mirrors.search(
                package.ecosystem, package.name, package.version
            )
        else:
            breaker = resilience.breaker(f"mirrors:{package.ecosystem}")
            outcome = resilience.call(
                f"mirrors:{package.ecosystem}",
                lambda package=package: mirrors.search(
                    package.ecosystem, package.name, package.version
                ),
                breaker=breaker,
            )
            if not outcome.ok:
                stats.skipped += 1
                resilience.report.skip_mirror_lookup()
                continue
            hit = outcome.value
        if hit is not None:
            mirror_name, artifact = hit
            entry.artifact = artifact
            entry.artifact_origin = f"mirror:{mirror_name}"
            stats.recovered += 1
        else:
            stats.record_miss(classify_miss(entry, mirrors))
    return stats
