"""CircuitBreaker: closed -> open -> half-open transitions."""

from __future__ import annotations

import pytest

from repro.reliability import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RetryClock,
)


def make(clock=None, threshold=3, cooldown=60.0) -> CircuitBreaker:
    return CircuitBreaker(
        clock if clock is not None else RetryClock(),
        name="dep",
        failure_threshold=threshold,
        cooldown=cooldown,
    )


def test_starts_closed_and_allows():
    breaker = make()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()


def test_opens_at_threshold_and_reports_the_trip():
    breaker = make(threshold=3)
    assert breaker.record_failure() is False
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True  # the transition
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()
    assert breaker.trips == 1


def test_success_resets_the_failure_streak():
    breaker = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    assert breaker.record_failure() is False
    assert breaker.state == STATE_CLOSED


def test_half_opens_after_cooldown():
    clock = RetryClock()
    breaker = make(clock, threshold=1, cooldown=60.0)
    breaker.record_failure()
    assert not breaker.allow()
    clock.sleep(59.0)
    assert not breaker.allow()
    clock.sleep(1.0)
    assert breaker.allow()
    assert breaker.state == STATE_HALF_OPEN


def test_half_open_probe_success_closes():
    clock = RetryClock()
    breaker = make(clock, threshold=1, cooldown=10.0)
    breaker.record_failure()
    clock.sleep(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()


def test_half_open_probe_failure_reopens_for_another_window():
    clock = RetryClock()
    breaker = make(clock, threshold=3, cooldown=10.0)
    for _ in range(3):
        breaker.record_failure()
    clock.sleep(10.0)
    assert breaker.allow()  # half-open probe
    assert breaker.record_failure() is True  # single failure re-opens
    assert breaker.state == STATE_OPEN
    assert not breaker.allow()
    assert breaker.trips == 2
    clock.sleep(10.0)
    assert breaker.allow()  # next window


def test_half_open_admits_exactly_one_probe():
    """No thundering herd: while the half-open probe is in flight, every
    other caller keeps fast-failing until the probe reports back."""
    clock = RetryClock()
    breaker = make(clock, threshold=1, cooldown=10.0)
    breaker.record_failure()
    clock.sleep(10.0)
    assert breaker.allow()  # the single probe
    for _ in range(20):  # the queue behind it
        assert not breaker.allow()
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert breaker.allow()  # closed again: everyone flows


def test_probe_failure_gates_the_next_window_too():
    clock = RetryClock()
    breaker = make(clock, threshold=1, cooldown=10.0)
    breaker.record_failure()
    clock.sleep(10.0)
    assert breaker.allow()
    assert not breaker.allow()  # queued caller during the probe
    breaker.record_failure()  # probe failed: re-open
    assert breaker.state == STATE_OPEN
    clock.sleep(10.0)
    assert breaker.allow()  # next window's single probe
    assert not breaker.allow()  # still one at a time


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        make(threshold=0)
