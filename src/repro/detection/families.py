"""Behaviour-family classification from static signals.

The paper's conclusion counts "200+ malware families" in the corpus.
Real triage assigns a family by reading the code; this module does the
same mechanically: an ordered cascade of static heuristics over the
payload's source and the detector's rule hits assigns one of the
behaviour *categories* the corpus exhibits (information-stealing,
financial, remote-access, dropper, resource-abuse, surveillance,
destructive, reconnaissance) — without ever consulting the generator's
ground truth. Accuracy against that ground truth is measured in
:mod:`repro.analysis.families`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.detection.detector import Detector, Verdict
from repro.ecosystem.package import PackageArtifact

#: The categories of :data:`repro.malware.behaviors.BEHAVIORS`, plus the
#: fallbacks the cascade can emit.
CATEGORIES = (
    "information-stealing",
    "financial",
    "remote-access",
    "dropper",
    "resource-abuse",
    "surveillance",
    "destructive",
    "reconnaissance",
    "persistence",
    "benign-looking",
    "unknown",
)


@dataclass(frozen=True)
class FamilyVerdict:
    """Category assignment with the signals that produced it."""

    category: str
    confidence: float
    signals: Tuple[str, ...] = ()


def _source_blob(artifact: PackageArtifact) -> str:
    return "\n".join(artifact.code_files().values())


def classify_artifact(
    artifact: PackageArtifact, verdict: Optional[Verdict] = None
) -> FamilyVerdict:
    """Assign a behaviour category to one package.

    ``verdict`` (a prior :meth:`Detector.scan` result) is reused when
    supplied; otherwise the artifact is scanned here. The cascade checks
    the most specific signals first — a cryptominer also downloads and
    executes, but the stratum pool URL is the stronger tell.
    """
    verdict = verdict if verdict is not None else Detector().scan(artifact)
    rules = set(verdict.rules_hit())
    source = _source_blob(artifact)
    signals: List[str] = []

    def hit(category: str, confidence: float) -> FamilyVerdict:
        return FamilyVerdict(
            category=category, confidence=confidence, signals=tuple(signals)
        )

    if "stratum+tcp" in source or "--share-bandwidth" in source:
        signals.append("mining pool / bandwidth-sharing agent")
        return hit("resource-abuse", 0.95)
    if "startup-persistence" in rules:
        signals.append("startup-file hook")
        return hit("persistence", 0.9)
    if ".locked" in source and "os.remove" in source:
        signals.append("encrypt-rename-delete loop")
        return hit("destructive", 0.95)
    if "clipboard-access" in rules:
        signals.append("clipboard read/write")
        return hit("financial", 0.9)
    if "obfuscated-exec" in rules:
        signals.append("exec of decoded blob")
        return hit("dropper", 0.85)
    if "download-execute" in rules:
        signals.append("fetch-and-spawn")
        return hit("dropper", 0.85)
    if "shell-exec" in rules and "socket" in source and "recv" in source:
        signals.append("socket command loop with shell execution")
        return hit("remote-access", 0.9)
    if "sensitive-env" in rules:
        signals.append("sensitive environment keys")
        return hit("information-stealing", 0.9)
    if "sensitive-path" in rules:
        signals.append("credential store paths")
        return hit("information-stealing", 0.85)
    if "gethostbyname" in source and ("b32encode" in source or "b64encode" in source):
        signals.append("encoded DNS queries")
        return hit("information-stealing", 0.8)
    if "Thread(" in source and "network-call" in rules:
        signals.append("buffered background exfil loop")
        return hit("surveillance", 0.6)
    if "platform" in source and "network-call" in rules:
        signals.append("host fingerprint beacon")
        return hit("reconnaissance", 0.6)
    if not verdict.malicious:
        return hit("benign-looking", 0.5)
    signals.append("malicious score without a family tell")
    return hit("unknown", 0.3)


def classify_many(
    artifacts: Sequence[PackageArtifact], detector: Optional[Detector] = None
) -> List[FamilyVerdict]:
    """Classify a batch, reusing one detector."""
    detector = detector or Detector()
    return [
        classify_artifact(artifact, detector.scan(artifact))
        for artifact in artifacts
    ]
