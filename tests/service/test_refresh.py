"""Incremental refresh: a merge diff updates the live index in place."""

from __future__ import annotations

import pytest

from repro.collection.records import MalwareDataset
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.service.cache import EnrichmentService, build_service
from repro.service.enrich import (
    VERDICT_MALICIOUS,
    EnrichmentEngine,
    Indicator,
)
from repro.core.delta.events import GraphEvent
from repro.service.index import IntelIndex
from repro.service.refresh import refresh_from_events, refresh_index

from tests.core.helpers import dataset, entry, report


def _engine(ds) -> EnrichmentEngine:
    return EnrichmentEngine(IntelIndex.build(MalGraph.build(ds)))


def test_added_packages_resolve_after_refresh():
    engine = _engine(dataset([entry("old-pkg")]))
    fresh = entry("new-pkg", code="def other():\n    return 1\n")
    merged, diff, stats = refresh_index(engine.index, dataset([fresh]))
    assert diff.added == [fresh.package]
    assert stats.packages_added == 1
    assert engine.index.dataset is merged
    result = engine.lookup(name="new-pkg", version="1.0")
    assert result.verdict == VERDICT_MALICIOUS
    by_sha = engine.lookup(sha256=fresh.sha256())
    assert by_sha.matches == ["pypi:new-pkg@1.0"]


def test_refresh_links_signature_duplicates_into_family():
    shared = "def payload():\n    return 'dup'\n"
    engine = _engine(dataset([entry("seed-pkg", code=shared)]))
    twin = entry("late-twin", code=shared)
    _, _, stats = refresh_index(engine.index, dataset([twin]))
    assert stats.families_linked == 1
    families = engine.index.families_of(twin.package)
    assert families
    assert engine.index.group_kind(families[0]) is GroupKind.DG
    members = {e.package.name for e in engine.index.lookup_group(families[0])}
    assert members == {"seed-pkg", "late-twin"}
    # and the family is reachable from the enrichment result
    assert engine.lookup(name="late-twin").families == families


def test_refresh_extends_existing_duplicated_group():
    shared = "def payload():\n    return 'trip'\n"
    engine = _engine(dataset([entry("twin-a", code=shared), entry("twin-b", code=shared)]))
    existing = engine.index.families_of(
        engine.index.lookup_name("twin-a")[0].package
    )
    assert existing, "seed world should already hold a DG family"
    third = entry("twin-c", code=shared)
    refresh_index(engine.index, dataset([third]))
    assert set(engine.index.families_of(third.package)) & set(existing)


def test_refresh_registers_new_reports_as_campaigns():
    a, b = entry("pkg-a"), entry("pkg-b", code="def b():\n    return 2\n")
    engine = _engine(dataset([a, b]))
    covering = report("r-new", [a.package, b.package])
    covering.actor_alias = "ShadyActor"
    _, diff, stats = refresh_index(engine.index, dataset([], [covering]))
    assert diff.new_reports == ["r-new"]
    assert stats.campaigns_added == 1
    result = engine.lookup(name="pkg-a")
    assert result.actors == ["ShadyActor"]
    assert any(g.startswith("CG-r") for g in result.campaigns)


def test_refresh_invalidates_wrapped_service():
    ds = dataset([entry("old-pkg")])
    service = build_service(MalGraph.build(ds))
    fresh = entry("fresh-pkg", code="def f():\n    return 3\n")
    # a stale negative sits in the cache before the refresh
    assert service.enrich(Indicator(name="fresh-pkg")).verdict != VERDICT_MALICIOUS
    _, _, stats = refresh_index(service.index, dataset([fresh]), service=service)
    assert stats.cache_cleared
    assert service.enrich(Indicator(name="fresh-pkg")).verdict == VERDICT_MALICIOUS


def test_refresh_merges_claims_for_known_packages():
    held = entry("known-pkg", sources=("snyk",))
    engine = _engine(dataset([held]))
    again = entry("known-pkg", sources=("phylum",))
    merged, diff, stats = refresh_index(engine.index, dataset([again]))
    assert stats.packages_added == 0
    assert diff.new_sources == {held.package: {"phylum"}}
    keys = {row["key"] for row in engine.lookup(name="known-pkg").sources}
    assert keys == {"snyk", "phylum"}


def test_refresh_bumps_epoch_and_timestamp():
    engine = _engine(dataset([entry("old-pkg")]))
    assert engine.index.epoch == 0
    assert engine.index.last_delta_at is None
    fresh = entry("new-pkg", code="def other():\n    return 1\n")
    refresh_index(engine.index, dataset([fresh]))
    assert engine.index.epoch == 1
    assert engine.index.last_delta_at is not None
    stats = engine.index.stats()
    assert stats["epoch"] == 1
    assert stats["last_delta_at"] == engine.index.last_delta_at
    refresh_index(engine.index, dataset([entry("third-pkg", code="x = 3\n")]))
    assert engine.index.epoch == 2


def test_refresh_from_events_without_graph():
    held = entry("old-pkg")
    engine = _engine(dataset([held]))
    fresh = entry("new-pkg", code="def other():\n    return 1\n")
    events = [
        GraphEvent.package_added(fresh),
        GraphEvent.package_removed(held.package),
    ]
    served, stats = refresh_from_events(engine.index, events)
    assert stats.packages_added == 1
    assert stats.packages_removed == 1
    assert engine.index.dataset is served
    assert served.get(fresh.package) is not None and served.get(held.package) is None
    assert engine.lookup(name="new-pkg").verdict == VERDICT_MALICIOUS
    assert engine.lookup(name="old-pkg").verdict != VERDICT_MALICIOUS
    assert engine.lookup(sha256=held.sha256()).verdict != VERDICT_MALICIOUS
    assert engine.index.epoch == 1


def test_refresh_from_events_with_malgraph_mirrors_exact_groups():
    shared = "def payload():\n    return 'dup'\n"
    ds = dataset([entry("seed-pkg", code=shared)])
    malgraph = MalGraph.build(ds)
    service = build_service(malgraph)
    twin = entry("late-twin", code=shared)
    events = [GraphEvent.package_added(twin)]
    served, stats = refresh_from_events(
        service.index, events, service=service, malgraph=malgraph
    )
    assert stats.cache_cleared
    assert stats.groups_replaced > 0
    assert served is malgraph.dataset  # index serves the evolved graph's dataset
    # group ids come from the exact extraction, not refresh-scoped ids
    families = service.index.families_of(twin.package)
    assert families and not any("-r" in g for g in families)
    members = {e.package.name for e in service.index.lookup_group(families[0])}
    assert members == {"seed-pkg", "late-twin"}
    assert service.index.epoch == 1
    assert service.enrich(Indicator(name="late-twin")).verdict == VERDICT_MALICIOUS


# -- snapshot publication ---------------------------------------------------


def test_refresh_publishes_a_new_snapshot_and_leaves_the_old_intact():
    service = build_service(MalGraph.build(dataset([entry("old-pkg")])))
    before = service.snapshot
    fresh = entry("fresh-pkg", code="def f():\n    return 3\n")
    refresh_index(service.index, dataset([fresh]), service=service)
    after = service.snapshot
    assert after is not before
    assert after.generation == before.generation + 1
    assert after.index is not before.index
    # the retired snapshot still answers exactly as it did pre-refresh:
    # a straggler mid-request never observes a half-applied delta
    assert before.index.package_count == 1
    assert before.index.lookup_name("fresh-pkg") == []
    assert after.index.package_count == 2


def test_concurrent_refreshes_compose_not_clobber():
    service = build_service(MalGraph.build(dataset([entry("old-pkg")])))
    stale_view = service.index  # both callers hold the same stale index
    left = entry("pkg-left", code="x = 1\n")
    right = entry("pkg-right", code="x = 2\n")
    # the service rebases each delta onto the currently published
    # snapshot under the writer lock, so the second refresh must not
    # wipe out the first even though its caller's view predates it
    refresh_index(stale_view, dataset([left]), service=service)
    refresh_index(stale_view, dataset([right]), service=service)
    assert service.index.package_count == 3
    assert service.enrich(Indicator(name="pkg-left")).verdict == VERDICT_MALICIOUS
    assert service.enrich(Indicator(name="pkg-right")).verdict == VERDICT_MALICIOUS
    assert service.generation == 2


# -- against the simulated world ------------------------------------------

@pytest.fixture(scope="module")
def split_world_service(small_dataset):
    """Index built from half the collected world; other half held back."""
    half = len(small_dataset.entries) // 2
    old = MalwareDataset(
        entries=list(small_dataset.entries[:half]),
        reports=list(small_dataset.reports[: len(small_dataset.reports) // 2]),
    )
    held_back = MalwareDataset(
        entries=list(small_dataset.entries[half:]),
        reports=list(small_dataset.reports[len(small_dataset.reports) // 2 :]),
    )
    return build_service(MalGraph.build(old)), held_back


def test_world_refresh_resolves_every_newly_merged_package(split_world_service):
    service, held_back = split_world_service
    merged, diff, stats = refresh_index(service.index, held_back, service=service)
    assert stats.packages_added == len(diff.added) > 0
    for e in held_back.entries:
        result = service.enrich(
            Indicator(
                name=e.package.name,
                version=e.package.version,
                ecosystem=e.package.ecosystem,
            )
        )
        assert result.verdict == VERDICT_MALICIOUS, str(e.package)
    assert service.index.package_count == len(merged)
