"""Table VI — the missing rate of all sources.

Paper shape: overall missing rate around 64%; artifact-sharing sources
(Maloss, Mal-PyPI, DataDog) have ~0% single-source missing rate while
names-only feeds (Socket, Phylum, GitHub Advisory, blogs) exceed 90%;
supplementing from other sources barely helps (all-sources MR tracks the
single-source MR).
"""

from __future__ import annotations


def test_table6_missing(benchmark, artifacts, show):
    table = benchmark(artifacts.table6_missing)
    show("Table VI: the missing rate of all sources", table.render())

    rows = {row.source: row for row in table.rows}
    for source in ("maloss", "mal-pypi", "datadog"):
        assert rows[source].missing_single == 0
    for source in ("socket", "phylum", "blogs"):
        assert rows[source].missing_single / rows[source].total > 0.8
    overall = table.overall_missing / table.overall_total
    assert 0.4 < overall < 0.85, (
        f"overall missing rate {overall:.1%} should sit near the paper's 64%"
    )
    # Supplementing from other sources can only lower the missing rate.
    for row in table.rows:
        assert row.missing_all <= row.missing_single
