"""The Connector protocol: fetch → parse → normalise, resiliently.

A connector is the unit of intel ingestion: one online source, one
wire format, one lifecycle. The stages are:

* **fetch** — pull the source's raw payload (a list of *wire records*,
  plain dicts). Under a fault plan this is the stage that fails: the
  resilient pull wraps it in :class:`~repro.reliability.FaultyFeed`
  behind the PR-4 retry/breaker machinery;
* **parse** — split the payload into individual wire records (identity
  for the builtin feeds, a real parser for custom formats);
* **normalise** — turn one *validated* wire record into the domain
  record the pipeline consumes.

Between parse and normalise sits :func:`validate_wire`: schema
validation against :data:`WIRE_SCHEMA` that quarantines drifted records
one-by-one (into the run's :class:`~repro.reliability.DegradationReport`)
instead of aborting the source — a feed whose upstream renamed a field
still contributes every record that survived the drift.

Byte-identity contract: builtin connectors encode each
:class:`~repro.intel.sources.SourceEntry` into its wire dict alongside
a private ``_record`` reference to the original object, and their
``normalise`` returns that object — so a null-plan pull emits the
*identical* record objects attribution produced, in the same order, and
collection output is byte-for-byte what it was before connectors
existed. Keys starting with ``_`` are transport-private and invisible
to schema validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.connectors.health import SourceHealth

if TYPE_CHECKING:  # imported lazily at runtime (intel pulls in the
    # crawler, and the crawler's spider reads intel.web back)
    from repro.intel.sources import SourceEntry

#: The wire schema every record must satisfy after parse. Values are
#: the required Python types; validation is exact-type (``bool`` is not
#: an ``int`` here) so malformed drift is always caught.
WIRE_SCHEMA: Dict[str, type] = {
    "source": str,
    "ecosystem": str,
    "name": str,
    "version": str,
    "report_day": int,
    "shares_artifact": bool,
}


def encode_wire(entry: "SourceEntry") -> dict:
    """Encode one attribution record into its wire form.

    The private ``_record`` key carries the original object through the
    fetch/validate path so ``normalise`` can return it unchanged.
    """
    return {
        "source": entry.source,
        "ecosystem": entry.package.ecosystem,
        "name": entry.package.name,
        "version": entry.package.version,
        "report_day": entry.report_day,
        "shares_artifact": entry.shares_artifact,
        "_record": entry,
    }


def validate_wire(wire: dict) -> List[str]:
    """Validate one wire record; returns the list of schema violations.

    An empty list means the record is clean. Keys starting with ``_``
    are transport-private and ignored; unknown public keys are
    violations (that is how a renamed field surfaces).
    """
    problems: List[str] = []
    for key, expected in WIRE_SCHEMA.items():
        if key not in wire:
            problems.append(f"missing field {key!r}")
            continue
        value = wire[key]
        # Exact-type check (not isinstance): bool subclasses int, and a
        # True where an int belongs is exactly the drift to catch.
        if type(value) is not expected:
            problems.append(
                f"field {key!r} has type {type(value).__name__}, "
                f"expected {expected.__name__}"
            )
    for key in wire:
        if not key.startswith("_") and key not in WIRE_SCHEMA:
            problems.append(f"unknown field {key!r}")
    return problems


def record_key(wire: dict) -> str:
    """Stable identity of a wire record (drives the drift draw seed)."""
    return f"{wire.get('ecosystem')}|{wire.get('name')}|{wire.get('version')}"


@dataclass(frozen=True)
class ConnectorSchedule:
    """When a connector polls, on the simulated day clock.

    ``interval_days == 0`` means the source never updates after its
    first pull (the Table V "Never update" cadence): it is due exactly
    once while active.
    """

    interval_days: int = 1
    active_from: int = 0
    active_until: Optional[int] = None

    def active_at(self, day: int) -> bool:
        if day < self.active_from:
            return False
        return self.active_until is None or day <= self.active_until

    def due(self, day: int, last_pull_day: Optional[int]) -> bool:
        """True when the connector should poll on ``day``."""
        if not self.active_at(day):
            return False
        if last_pull_day is None:
            return True
        if self.interval_days <= 0:
            return False  # never updates again after the first pull
        return day - last_pull_day >= self.interval_days


@dataclass
class PullResult:
    """What one connector pull contributed, and at what cost."""

    source: str
    #: "ok" (full emission), "partial" (best partial emission after
    #: exhausted retries), or "skipped" (nothing: the source was dark).
    status: str = "ok"
    #: normalised records that survived fetch + schema validation.
    records: List = field(default_factory=list)
    #: records quarantined by schema validation, by drift kind.
    quarantined: int = 0
    quarantine_kinds: Dict[str, int] = field(default_factory=dict)
    #: records lost to a partial emission (never even arrived).
    lost: int = 0
    #: fetch attempts the pull consumed (1 when nothing went wrong).
    attempts: int = 1

    @property
    def clean(self) -> bool:
        return self.status == "ok" and self.quarantined == 0


class Connector:
    """Base class for one intel source's ingestion lifecycle.

    Subclasses override :meth:`fetch` (and, for custom wire formats,
    :meth:`parse` / :meth:`normalise`). The :meth:`pull` template method
    owns the resilient plumbing — retries, partial degradation, drift
    quarantine, health transitions — so a custom connector is ~20 lines
    (see docs/TUTORIAL.md).
    """

    def __init__(
        self,
        key: str,
        schedule: Optional[ConnectorSchedule] = None,
        health: Optional[SourceHealth] = None,
    ):
        self.key = key
        self.schedule = schedule if schedule is not None else ConnectorSchedule()
        self.health = health if health is not None else SourceHealth(key)
        self.last_pull_day: Optional[int] = None

    # -- stages a subclass implements --------------------------------------
    def fetch(self) -> List[dict]:
        """Pull the source's raw payload (may raise transient errors)."""
        raise NotImplementedError

    def parse(self, payload: Sequence[dict]) -> List[dict]:
        """Split the payload into wire records. Identity by default."""
        return list(payload)

    def normalise(self, wire: dict) -> object:
        """Turn one validated wire record into a domain record."""
        record = wire.get("_record")
        if record is None:
            raise NotImplementedError(
                f"connector {self.key!r} must override normalise() for "
                "wire records without a _record reference"
            )
        return record

    # -- the template method ------------------------------------------------
    def pull(self, resilience=None, day: Optional[int] = None) -> PullResult:
        """One full fetch → parse → validate → normalise cycle.

        With a :class:`~repro.reliability.ResilienceContext` carrying an
        injector, the fetch runs through the retry/breaker machinery and
        record-level drift is drawn per surviving record; without one,
        the pull is the trivial fast path (and byte-identical to the
        pre-connector pipeline for the builtin feeds).
        """
        result = PullResult(source=self.key)
        if resilience is None or resilience.injector is None:
            wires = self.parse(self.fetch())
        else:
            wires = self._resilient_fetch(resilience, result)
        if result.status == "skipped":
            self.health.record_outage(day)
            self.last_pull_day = day
            return result
        injector = None if resilience is None else resilience.injector
        report = None if resilience is None else resilience.report
        for wire in wires:
            if injector is not None:
                # Draw keyed on the *clean* identity, then corrupt: the
                # drifted bytes must not perturb the draw sequence.
                kind = injector.record_fault(self.key, record_key(wire))
                if kind is not None:
                    from repro.reliability.faults import corrupt_wire

                    wire = corrupt_wire(wire, kind)
            problems = validate_wire(wire)
            if problems:
                fault = wire.get("_fault", "schema_invalid")
                result.quarantined += 1
                result.quarantine_kinds[fault] = (
                    result.quarantine_kinds.get(fault, 0) + 1
                )
                if report is not None:
                    report.quarantine_record(self.key, fault)
                continue
            result.records.append(self.normalise(wire))
        self._settle_health(result, day)
        self.last_pull_day = day
        return result

    def _resilient_fetch(self, resilience, result: PullResult) -> List[dict]:
        """Fetch through FaultyFeed + retries; degrade, don't die."""
        from repro.reliability.faults import FaultyFeed

        wires = self.parse(self.fetch())
        feed = FaultyFeed(self.key, wires, resilience.injector)
        outcome = resilience.call(f"feed:{self.key}", feed.fetch)
        result.attempts = outcome.attempts
        resilience.report.feed_attempt(self.key, outcome.attempts)
        if outcome.ok:
            return outcome.value
        if feed.best_partial:
            result.status = "partial"
            result.lost = len(wires) - len(feed.best_partial)
            resilience.report.partial_source(self.key, result.lost)
            return feed.best_partial
        result.status = "skipped"
        resilience.report.skip_source(self.key)
        return []

    def _settle_health(self, result: PullResult, day: Optional[int]) -> None:
        if result.status == "partial":
            self.health.record_partial(day)
            self.health.quarantined_total += result.quarantined
        else:
            self.health.record_success(day, quarantined=result.quarantined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.key!r}, "
            f"state={self.health.state!r})"
        )
