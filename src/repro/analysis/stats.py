"""Shared statistics helpers for the analyses: CDFs, box stats, binning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class CdfPoint:
    """One (value, cumulative fraction) step of an empirical CDF."""

    value: float
    fraction: float


def empirical_cdf(values: Sequence[float]) -> List[CdfPoint]:
    """Empirical CDF of a sample, one point per distinct value."""
    if not values:
        return []
    data = np.sort(np.asarray(values, dtype=np.float64))
    n = data.size
    points: List[CdfPoint] = []
    distinct, counts = np.unique(data, return_counts=True)
    cumulative = np.cumsum(counts)
    for value, cum in zip(distinct, cumulative):
        points.append(CdfPoint(value=float(value), fraction=float(cum) / n))
    return points


def cdf_fraction_at(values: Sequence[float], threshold: float) -> float:
    """P(X <= threshold) over the sample."""
    if not values:
        return 0.0
    data = np.asarray(values, dtype=np.float64)
    return float(np.mean(data <= threshold))


def quantile_at_fraction(values: Sequence[float], fraction: float) -> float:
    """Smallest value v with CDF(v) >= fraction."""
    if not values:
        return float("nan")
    data = np.sort(np.asarray(values, dtype=np.float64))
    index = min(int(np.ceil(fraction * data.size)) - 1, data.size - 1)
    return float(data[max(index, 0)])


@dataclass
class BoxStats:
    """Five-number summary for one box of a box plot (Fig. 11)."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def box_stats(values: Sequence[float]) -> Optional[BoxStats]:
    """Quartile summary of a sample; None when empty."""
    if not values:
        return None
    data = np.asarray(values, dtype=np.float64)
    return BoxStats(
        count=int(data.size),
        minimum=float(data.min()),
        q1=float(np.percentile(data, 25)),
        median=float(np.percentile(data, 50)),
        q3=float(np.percentile(data, 75)),
        maximum=float(data.max()),
    )


def bin_by(
    items: Sequence, key, sort_keys: bool = True
) -> Dict:
    """Group items into bins by a key function."""
    bins: Dict = {}
    for item in items:
        bins.setdefault(key(item), []).append(item)
    if sort_keys:
        return dict(sorted(bins.items(), key=lambda kv: kv[0]))
    return bins


def percentage(part: float, whole: float) -> float:
    """Percentage with a zero-safe denominator."""
    return 100.0 * part / whole if whole else 0.0
