"""Stdlib JSON HTTP API over the enrichment service.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
no new dependencies) exposing:

* ``GET /v1/healthz`` — liveness plus indexed-package count;
* ``GET /v1/stats`` — cache hit/miss counters and index shape;
* ``GET /v1/enrich?name=&version=&sha256=&ecosystem=`` — one indicator;
* ``POST /v1/enrich/batch`` — ``{"indicators": [{...}, ...]}``.

``create_server`` binds (``port=0`` picks an ephemeral port, which the
tests and the smoke script use); ``serve`` blocks until interrupted.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.cache import EnrichmentService
from repro.service.enrich import Indicator

#: Refuse batches beyond this size so one request cannot pin a worker.
MAX_BATCH_SIZE = 100_000


class IntelRequestHandler(BaseHTTPRequestHandler):
    """Routes the four ``/v1`` endpoints onto the service."""

    server_version = "repro-intel/1.0"

    @property
    def service(self) -> EnrichmentService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    # -- GET --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        if url.path == "/v1/healthz":
            self._reply(
                200, {"status": "ok", "packages": self.service.index.package_count}
            )
        elif url.path == "/v1/stats":
            self._reply(200, self.service.stats())
        elif url.path == "/v1/enrich":
            params = {k: v[0] for k, v in parse_qs(url.query).items()}
            indicator = Indicator.from_dict(params)
            if indicator.is_empty:
                self._error(400, "need at least ?name= or ?sha256=")
                return
            self._reply(200, self.service.enrich(indicator).to_dict())
        else:
            self._error(404, f"unknown path {url.path!r}")

    # -- POST -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if urlparse(self.path).path != "/v1/enrich/batch":
            self._error(404, f"unknown path {self.path!r}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            payload = json.loads(self.rfile.read(length) or b"")
        except json.JSONDecodeError:
            self._error(400, "body is not valid JSON")
            return
        raw = payload.get("indicators") if isinstance(payload, dict) else None
        if not isinstance(raw, list):
            self._error(400, 'body must be {"indicators": [...]}')
            return
        if len(raw) > MAX_BATCH_SIZE:
            self._error(413, f"batch larger than {MAX_BATCH_SIZE}")
            return
        indicators = [Indicator.from_dict(item) for item in raw]
        if any(i.is_empty for i in indicators):
            self._error(400, "every indicator needs a name or sha256")
            return
        results = self.service.batch_enrich(indicators)
        self._reply(
            200,
            {"count": len(results), "results": [r.to_dict() for r in results]},
        )


def create_server(
    service: EnrichmentService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind (but do not run) the API server; port 0 = ephemeral."""
    server = ThreadingHTTPServer((host, port), IntelRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def server_address(server: ThreadingHTTPServer) -> Tuple[str, int]:
    """The (host, port) the server actually bound."""
    host, port = server.server_address[:2]
    return str(host), int(port)


def serve(
    service: EnrichmentService,
    host: str = "127.0.0.1",
    port: int = 8742,
    verbose: bool = True,
) -> Optional[ThreadingHTTPServer]:
    """Run the API until interrupted (the ``repro serve`` entry point)."""
    server = create_server(service, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server_address(server)
    print(f"repro intel service on http://{bound_host}:{bound_port}/v1/enrich")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    finally:
        server.server_close()
    return server
