"""Bounded LRU caching and the batch enrichment path.

A production enrichment endpoint sees the same indicators over and over
(the same compromised package queried by every downstream scanner), so
the service fronts the engine with a bounded LRU keyed on the
indicator's normalised form. ``batch_enrich`` additionally deduplicates
within the request, which is what lets a million-indicator stream with
heavy repetition be answered with a few thousand engine calls and zero
graph walks.

Both layers are thread-safe: :class:`LRUCache` guards its ordered map
and counters with an internal ``RLock``, and :class:`EnrichmentService`
holds its own ``RLock`` across the whole lookup→resolve→store path so
the HTTP server's per-connection threads (and a concurrent
``refresh_index``, which swaps the served dataset under live readers)
always observe a consistent index and exact hit/miss accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.malgraph import MalGraph
from repro.core.query import QueryEngine
from repro.service.enrich import EnrichmentEngine, EnrichmentResult, Indicator
from repro.service.index import IntelIndex


class LRUCache:
    """Bounded least-recently-used map with hit/miss/eviction counters.

    Safe for concurrent use: every operation (including the counter
    updates) runs under one reentrant lock, so ``hits + misses`` always
    equals the number of ``get`` calls, even under thread churn.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        self._items: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._items

    def get(self, key: Hashable):
        """The cached value (counted as hit/miss), or None."""
        with self._lock:
            try:
                value = self._items[key]
            except KeyError:
                self.misses += 1
                return None
            self.hits += 1
            self._items.move_to_end(key)
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            if len(self._items) > self.capacity:
                self._items.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._items),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class EnrichmentService:
    """LRU-fronted enrichment: the object the HTTP server exposes.

    ``lock`` serialises every request against index mutation:
    :meth:`enrich` holds it across the cache probe, the engine walk and
    the store, and :func:`repro.service.refresh.refresh_index` holds it
    while swapping the served dataset, so a reader can never observe a
    half-refreshed index or a stale-but-cached verdict.
    """

    def __init__(
        self,
        engine: EnrichmentEngine,
        capacity: int = 4096,
        degraded: bool = False,
        query_engine: Optional[QueryEngine] = None,
    ):
        self.engine = engine
        self.cache = LRUCache(capacity)
        self.lock = threading.RLock()
        #: whether the backing collection artifact was built degraded
        #: (see repro.reliability) — surfaced by /v1/healthz and /v1/stats.
        self.degraded = degraded
        #: graph query engine backing POST /v1/query (None = endpoint
        #: answers 503; services built via build_service always have one)
        self.query_engine = query_engine

    @property
    def index(self) -> IntelIndex:
        return self.engine.index

    def enrich(self, indicator: Indicator) -> EnrichmentResult:
        """Cached single-indicator enrichment."""
        with self.lock:
            key = indicator.key()
            held = self.cache.get(key)
            if held is not None:
                return held
            result = self.engine.enrich(indicator)
            self.cache.put(key, result)
            return result

    def batch_enrich(self, indicators: Sequence[Indicator]) -> List[EnrichmentResult]:
        """Enrich a stream, resolving each distinct indicator once.

        Duplicates within the batch are answered from the batch-local
        table without touching the cache counters, so ``stats()`` reflects
        distinct-indicator traffic. The service lock is held for the whole
        batch, so a concurrent refresh cannot split one request across
        two index generations.
        """
        with self.lock:
            resolved: Dict[tuple, EnrichmentResult] = {}
            results: List[EnrichmentResult] = []
            for indicator in indicators:
                key = indicator.key()
                held = resolved.get(key)
                if held is None:
                    held = self.enrich(indicator)
                    resolved[key] = held
                results.append(held)
            return results

    def invalidate(self) -> None:
        """Drop every cached result (after an index refresh)."""
        with self.lock:
            self.cache.clear()

    def stats(self) -> Dict:
        """Cache and index counters for the ``/v1/stats`` endpoint."""
        with self.lock:
            return {
                "cache": self.cache.stats(),
                "index": self.index.stats(),
                "collection": {"degraded": self.degraded},
            }


def build_service(
    malgraph: MalGraph,
    capacity: int = 4096,
    engine: Optional[EnrichmentEngine] = None,
    degraded: bool = False,
) -> EnrichmentService:
    """Index a built graph and wrap it in a cached service.

    ``degraded`` marks a service built over a collection artifact that
    was assembled under graceful degradation (data was given up).
    """
    if engine is None:
        engine = EnrichmentEngine(IntelIndex.build(malgraph))
    return EnrichmentService(
        engine,
        capacity=capacity,
        degraded=degraded,
        query_engine=QueryEngine(malgraph),
    )
