"""Package signatures (Section III-C).

The paper computes a SHA256 over the code extracted from each package
(via ``hashlib``); two packages with the same signature are the same
malware regardless of their names — the basis of the duplicated edge.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional

from repro.ecosystem.package import PackageArtifact


def code_sha256(artifact: PackageArtifact) -> str:
    """SHA256 signature of the artifact's code files."""
    return artifact.sha256()


def file_sha256(source: str) -> str:
    """SHA256 of one source file's text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def signature_index(
    artifacts: Iterable[PackageArtifact],
) -> Dict[str, List[PackageArtifact]]:
    """Group artifacts by signature; groups of >1 are duplicate sets."""
    index: Dict[str, List[PackageArtifact]] = {}
    for artifact in artifacts:
        index.setdefault(artifact.sha256(), []).append(artifact)
    return index
