"""Incremental similar-edge stage.

A cold :func:`repro.core.similarity.cluster_artifacts` run spends almost
all of its time in two places: embedding every artifact and splitting
each K-Means cluster into cosine-similarity connected components. Both
are *incremental by nature*:

* embeddings are pure functions of the artifact bytes — the stage keeps
  a per-SHA256 vector cache (backed by the pipeline store's persistent
  ``embeddings`` tier when available), so a delta batch embeds only the
  artifacts it introduced;
* cosine similarity between two vectors does not depend on the K-Means
  clustering at all — the stage maintains *global* connected components
  of the "cosine ≥ threshold" graph over every unique rounded vector it
  has ever seen (append-only union-find over interned vector keys). A
  K-Means cluster's split then falls out almost for free: group the
  cluster's unique vectors by global component; a component whose every
  member sits in this cluster is one split-group verbatim (connectivity
  cannot depend on vectors the cluster does not contain when there are
  no vectors outside it), and only *fractured* components — those the
  clustering divided — need an exact recompute restricted to the
  cluster, which is a small matrix.

K-Means itself is deliberately re-run in full on every application: it
is cheap (well under a second at scale 10), globally unstable under
point insertion (a warm-started variant finds different basins), and the
byte-identity contract against a cold rebuild requires the exact cold
clustering. The expensive stages around it are what the caches remove.

Vector keys use the rounded row bytes. ``np.unique`` in the cold path
compares by value, which differs from byte identity only for ``-0.0``
vs ``0.0`` rows; numerically equal vectors have cosine 1.0 to every
common neighbour, so the induced components — the only thing consumed —
are identical either way.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collection.records import DatasetEntry
from repro.core.embedding import AstEmbedder
from repro.core.kmeans import grow_kmeans
from repro.core.similarity import (
    SIMILARITY_BLOCK_ROWS,
    SimilarityConfig,
    SimilarityResult,
    SimilarityTimings,
    embedder_payload,
)


class _IntUnionFind:
    """Append-only union-find over dense int ids (path compression)."""

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def add(self) -> int:
        idx = len(self._parent)
        self._parent.append(idx)
        self._size.append(1)
        return idx

    def find(self, i: int) -> int:
        parent = self._parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def component_size(self, i: int) -> int:
        return self._size[self.find(i)]


class IncrementalSimilarStage:
    """Stateful replacement for ``cluster_artifacts`` on the delta path.

    One instance accumulates vector and cosine-component knowledge
    across successive :meth:`recompute` calls; its output is exactly
    what the cold pipeline would produce over the same entries.
    """

    def __init__(self, config: SimilarityConfig):
        self.config = config
        self.embedder = AstEmbedder(
            dim=config.dim,
            structural_weight=config.structural_weight,
            lexical_weight=config.lexical_weight,
        )
        #: sha256 -> unit embedding vector (the per-artifact cache)
        self._vectors: Dict[str, np.ndarray] = {}
        #: sha256 -> row in the stacked vector matrix (gather source)
        self._sha_row: Dict[str, int] = {}
        self._sha_matrix: Optional[np.ndarray] = None
        #: sha256 -> interned key id of its rounded vector
        self._sha_key: Dict[str, int] = {}
        #: rounded-row-bytes -> interned key id
        self._key_ids: Dict[bytes, int] = {}
        #: key id -> rounded vector (row of the global key matrix)
        self._key_rows: List[np.ndarray] = []
        self._key_matrix: Optional[np.ndarray] = None  # stacked _key_rows
        self._components = _IntUnionFind()

    # -- embedding ---------------------------------------------------------
    def _embed(
        self,
        entries: Sequence[DatasetEntry],
        shas: Sequence[str],
        store,
        timings: SimilarityTimings,
    ) -> np.ndarray:
        unique = set(shas)
        timings.unique_artifacts = len(unique)
        fp = self.embedder.fingerprint() if store is not None else None
        if store is not None:
            missing = sorted(sha for sha in unique if sha not in self._vectors)
            if missing:
                self._vectors.update(store.load_embeddings(fp, missing))
        to_compute = sorted(sha for sha in unique if sha not in self._vectors)
        timings.cache_hits = len(unique) - len(to_compute)
        timings.cache_misses = len(to_compute)
        if to_compute:
            # one representative artifact per missing sha — cached shas
            # never reach the embedder, so the steady-state batch pays
            # only for the artifacts it introduced
            wanted = set(to_compute)
            pending = []
            for entry, sha in zip(entries, shas):
                if sha in wanted:
                    wanted.discard(sha)
                    pending.append(entry.artifact)
            self.embedder.embed_many(
                pending, jobs=self.config.jobs, cache=self._vectors
            )
            if store is not None:
                store.save_embeddings(
                    fp,
                    {sha: self._vectors[sha] for sha in to_compute},
                    embedder_payload(self.embedder),
                )
        # assemble the (n, dim) matrix as a vectorised row gather over a
        # persistent per-sha matrix instead of a python loop per entry;
        # rows are the exact cached vectors, so the matrix matches what
        # embed_many over the full batch would return
        new_rows: List[np.ndarray] = []
        for sha in shas:
            if sha not in self._sha_row:
                self._sha_row[sha] = len(self._sha_row)
                new_rows.append(self._vectors[sha])
        if new_rows:
            # float64 like embed_many's output matrix, whatever the
            # persistent tier handed back
            block = np.vstack(new_rows).astype(np.float64, copy=False)
            self._sha_matrix = (
                block
                if self._sha_matrix is None
                else np.vstack([self._sha_matrix, block])
            )
        index = np.fromiter(
            (self._sha_row[sha] for sha in shas), dtype=np.intp, count=len(shas)
        )
        return self._sha_matrix[index]

    # -- global cosine components ------------------------------------------
    def _ids_for(self, shas: Sequence[str]) -> List[int]:
        """Key id per row via the per-SHA cache.

        A vector's rounded key is a pure function of the artifact bytes,
        so only shas never seen before are rounded and interned; the
        steady state skips the full-matrix ``round`` entirely.
        """
        missing: List[str] = []
        seen = set()
        for sha in shas:
            if sha not in self._sha_key and sha not in seen:
                seen.add(sha)
                missing.append(sha)
        if missing:
            rounded = np.vstack([self._vectors[sha] for sha in missing]).round(9)
            for sha, key_id in zip(missing, self._intern_keys(rounded)):
                self._sha_key[sha] = key_id
        return [self._sha_key[sha] for sha in shas]

    def _intern_keys(self, rounded: np.ndarray) -> List[int]:
        """Key ids for every row, updating global components for new keys."""
        ids: List[int] = []
        new_ids: List[int] = []
        for row in rounded:
            key = row.tobytes()
            held = self._key_ids.get(key)
            if held is None:
                held = self._components.add()
                self._key_ids[key] = held
                # copy: a view would pin the whole per-apply matrix alive
                self._key_rows.append(row.copy())
                new_ids.append(held)
            ids.append(held)
        if new_ids:
            self._key_matrix = np.vstack(self._key_rows)
            matrix = self._key_matrix
            threshold = self.config.min_similarity
            first_new = new_ids[0]
            for start in range(first_new, matrix.shape[0], SIMILARITY_BLOCK_ROWS):
                block = matrix[start : start + SIMILARITY_BLOCK_ROWS]
                sims = block @ matrix.T
                rows, cols = np.nonzero(sims >= threshold)
                for i, j in zip((rows + start).tolist(), cols.tolist()):
                    if i != j:
                        self._components.union(i, j)
        return ids

    def _split_cluster(
        self, members: np.ndarray, member_keys: Sequence[int]
    ) -> List[List[int]]:
        """Cosine connected components of one cluster, via the cache.

        Mirrors ``_similarity_components``: members sharing one unique
        vector always stay together, and with a single unique vector the
        whole cluster is one component.
        """
        by_key: Dict[int, List[int]] = {}
        for member, key in zip(members.tolist(), member_keys):
            by_key.setdefault(key, []).append(int(member))
        if len(by_key) == 1:
            return [list(int(m) for m in members)]
        blocks: Dict[int, List[int]] = {}
        for key in by_key:
            blocks.setdefault(self._components.find(key), []).append(key)
        components: List[List[int]] = []
        for root, keys in blocks.items():
            if len(keys) == self._components.component_size(root):
                # the whole global component lives in this cluster: its
                # connectivity uses no outside vectors, so it is one
                # split-group verbatim
                merged: List[int] = []
                for key in keys:
                    merged.extend(by_key[key])
                components.append(merged)
                continue
            components.extend(self._split_block(keys, by_key))
        return components

    def _split_block(
        self, keys: List[int], by_key: Dict[int, List[int]]
    ) -> List[List[int]]:
        """Exact restricted recompute for a fractured global component."""
        vectors = np.vstack([self._key_rows[key] for key in keys])
        m = vectors.shape[0]
        parent = list(range(m))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        threshold = self.config.min_similarity
        for start in range(0, m, SIMILARITY_BLOCK_ROWS):
            block = vectors[start : start + SIMILARITY_BLOCK_ROWS]
            sims = block @ vectors.T
            rows, cols = np.nonzero(sims >= threshold)
            for i, j in zip((rows + start).tolist(), cols.tolist()):
                if i < j:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[rj] = ri
        grouped: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            grouped.setdefault(find(position), []).extend(by_key[key])
        return list(grouped.values())

    # -- the stage ---------------------------------------------------------
    def recompute(
        self, entries: Sequence[DatasetEntry], store=None
    ) -> SimilarityResult:
        """Re-run the similarity pipeline over ``entries`` incrementally.

        Byte-identical to ``cluster_artifacts([e.artifact for e in
        entries], config, store)`` — same groups, labels, kmeans_k.
        """
        config = self.config
        n = len(entries)
        labels = np.full(n, -1, dtype=np.int64)
        timings = SimilarityTimings(artifacts=n, jobs=config.jobs)
        if n == 0:
            return SimilarityResult(
                groups=[], labels=labels, kmeans_k=0, timings=timings
            )
        shas = [entry.artifact.sha256() for entry in entries]
        started = time.perf_counter()
        X = self._embed(entries, shas, store, timings)
        timings.embed_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result, trace = grow_kmeans(
            X,
            start_k=config.start_k,
            max_k=config.max_k,
            seed=config.seed,
            duplicate_eps=config.duplicate_eps,
        )
        timings.cluster_seconds = time.perf_counter() - started

        started = time.perf_counter()
        groups: List[List[int]] = []
        if config.min_similarity is None:
            for members in result.clusters():
                if len(members) >= 2:
                    groups.append(sorted(int(i) for i in members))
        else:
            ids = self._ids_for(shas)
            for members in result.clusters():
                member_keys = [ids[int(i)] for i in members]
                for component in self._split_cluster(members, member_keys):
                    if len(component) >= 2:
                        groups.append(sorted(component))
        groups.sort(key=lambda g: (-len(g), g[0]))
        for group_id, members in enumerate(groups):
            for member in members:
                labels[member] = group_id
        timings.split_seconds = time.perf_counter() - started
        return SimilarityResult(
            groups=groups,
            labels=labels,
            kmeans_k=result.k,
            trace=trace,
            timings=timings,
        )
