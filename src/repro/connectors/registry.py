"""Connector registry: the pluggable catalogue of intel sources.

The registry is how the framework stays open: the ten Table-I sources
register their builtin connectors (see :mod:`repro.connectors.builtin`)
and a custom source registers its own subclass the same way — the
pipeline, scheduler and health surfaces iterate the registry and never
special-case the builtins.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.connectors.base import Connector
from repro.errors import ConfigError


class ConnectorRegistry:
    """Keyed collection of connectors, in registration order."""

    def __init__(self, connectors: Iterable[Connector] = ()):
        self._connectors: Dict[str, Connector] = {}
        for connector in connectors:
            self.register(connector)

    def register(
        self, connector: Connector, replace: bool = False
    ) -> Connector:
        """Add a connector; re-registering a key requires ``replace``."""
        if connector.key in self._connectors and not replace:
            raise ConfigError(
                f"connector {connector.key!r} is already registered "
                "(pass replace=True to override)"
            )
        self._connectors[connector.key] = connector
        return connector

    def unregister(self, key: str) -> None:
        if key not in self._connectors:
            raise ConfigError(f"no connector registered for {key!r}")
        del self._connectors[key]

    def get(self, key: str) -> Connector:
        connector = self._connectors.get(key)
        if connector is None:
            raise ConfigError(f"no connector registered for {key!r}")
        return connector

    def maybe(self, key: str) -> Optional[Connector]:
        return self._connectors.get(key)

    def keys(self) -> List[str]:
        return list(self._connectors)

    def __iter__(self) -> Iterator[Connector]:
        return iter(self._connectors.values())

    def __len__(self) -> int:
        return len(self._connectors)

    def __contains__(self, key: str) -> bool:
        return key in self._connectors

    def health_snapshot(self) -> Dict[str, dict]:
        """JSON-safe per-source health, in registration order."""
        return {
            key: connector.health.to_dict()
            for key, connector in self._connectors.items()
        }
