"""RQ2 diversity analyses: Table II and Table VII.

* Table II — node/edge/degree statistics of each MALGRAPH subgraph;
* Table VII — group count and average size per ecosystem for SG, DeG
  and CG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_table
from repro.core.graph import GraphStats
from repro.core.groups import GroupKind, PackageGroup, groups_by_ecosystem
from repro.core.malgraph import MalGraph
from repro.ecosystem.package import MAJOR_ECOSYSTEMS


@dataclass
class GraphStatsTable:
    """Table II: the detailed information of MALGRAPH."""

    rows: List[GraphStats]

    _LABELS = {
        "duplicated": "DG",
        "dependency": "DeG",
        "similar": "SG",
        "coexisting": "CG",
    }

    def render(self) -> str:
        table_rows = [
            [
                self._LABELS[row.edge_type.value],
                row.nodes,
                row.directed_edges,
                f"{row.avg_out_degree:.2f}",
                f"{row.avg_in_degree:.2f}",
            ]
            for row in self.rows
        ]
        return render_table(
            ["", "Node", "Edge", "Ave. OutDegree", "Ave. InDegree"],
            table_rows,
            title="Table II: the detailed information of MALGRAPH",
        )


def compute_graph_stats(malgraph: MalGraph) -> GraphStatsTable:
    """Table II rows from the built graph."""
    return GraphStatsTable(rows=malgraph.table2_stats())


@dataclass
class DiversityCell:
    """One (ecosystem, group kind) cell of Table VII."""

    count: int
    average_size: float

    def render(self) -> str:
        if self.count == 0:
            return "0"
        return f"{self.count} ({self.average_size:.2f})"


@dataclass
class DiversityTable:
    """Table VII: overall group diversity per ecosystem."""

    ecosystems: List[str]
    cells: Dict[Tuple[str, GroupKind], DiversityCell]

    def cell(self, ecosystem: str, kind: GroupKind) -> DiversityCell:
        return self.cells.get((ecosystem, kind), DiversityCell(0, 0.0))

    def render(self) -> str:
        kinds = [GroupKind.SG, GroupKind.DEG, GroupKind.CG]
        rows = []
        for ecosystem in self.ecosystems:
            rows.append(
                [ecosystem.upper()]
                + [self.cell(ecosystem, kind).render() for kind in kinds]
            )
        return render_table(
            ["OSS", "SG # (avg)", "DeG # (avg)", "CG # (avg)"],
            rows,
            title="Table VII: the overall group diversity",
        )


def compute_diversity(
    malgraph: MalGraph, ecosystems: Sequence[str] = MAJOR_ECOSYSTEMS
) -> DiversityTable:
    """Group count and average size per ecosystem (Table VII)."""
    cells: Dict[Tuple[str, GroupKind], DiversityCell] = {}
    for kind in (GroupKind.SG, GroupKind.DEG, GroupKind.CG):
        buckets = groups_by_ecosystem(malgraph.groups(kind))
        for ecosystem in ecosystems:
            groups = buckets.get(ecosystem, [])
            if groups:
                average = sum(g.size for g in groups) / len(groups)
            else:
                average = 0.0
            cells[(ecosystem, kind)] = DiversityCell(
                count=len(groups), average_size=average
            )
    return DiversityTable(ecosystems=list(ecosystems), cells=cells)
