"""Intro claim — a single dataset's diversity is tiny.

The introduction motivates the knowledge graph with: "A large number of
malicious packages does not imply malware diversity. For example, we
only obtain 25 code groups from the prior PyPI malware dataset
(2,915)." Measured: clustering only the packages claimed by the
Mal-PyPI source yields far fewer code groups than packages — the same
two-orders-of-magnitude compression.
"""

from __future__ import annotations

import pytest

from repro.core.similarity import SimilarityConfig, cluster_artifacts


def _malpypi_artifacts(artifacts):
    entries = artifacts.dataset.entries_of_source("mal-pypi")
    return [
        e.artifact for e in entries if e.available and e.artifact.code_files()
    ]


def test_intro_malpypi_diversity(benchmark, artifacts, show):
    subset = _malpypi_artifacts(artifacts)
    assert len(subset) > 50, "the Mal-PyPI slice is non-trivial"
    result = benchmark(cluster_artifacts, subset, SimilarityConfig(seed=0))
    grouped = sum(len(g) for g in result.groups)
    show(
        "Intro claim: single-dataset diversity (Mal-PyPI slice)",
        (
            f"packages with code: {len(subset)}\n"
            f"code groups:        {result.group_count}\n"
            f"grouped packages:   {grouped}\n"
            f"compression:        {len(subset) / max(result.group_count, 1):.1f} "
            "packages per group"
        ),
    )
    # the paper: 2,915 packages -> 25 groups (~117x); shape: packages
    # per group is large, groups are few
    assert result.group_count < len(subset) / 5
    assert grouped > len(subset) * 0.5, "most packages fall into some group"
