"""Hand-rolled tokenizer for the MALGRAPH query language.

Splits query text into :class:`Token` objects that carry their byte
offset in the source, so the parser can raise
:class:`~repro.core.query.ast.QuerySyntaxError` with a caret pointing
at the exact failure position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.core.query.ast import QuerySyntaxError

#: multi-character operators/punctuation first, so ``->`` never lexes
#: as ``-`` then ``>`` and ``..`` never collides with attribute dots.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<number>-?\d+(?:\.(?!\.)\d+)?)
  | (?P<arrow><-|->)
  | (?P<range>\.\.)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),\[\]:.\-*{}|])
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

KEYWORDS = frozenset(
    {
        "match", "where", "return", "order", "by", "limit", "and", "or",
        "desc", "asc", "contains", "count", "not", "is", "null", "call",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexeme: kind, source text and start offset."""

    kind: str  # "string" | "number" | "arrow" | "range" | "op" | "punct" | "word"
    value: str
    pos: int

    @property
    def is_word(self) -> bool:
        return self.kind == "word"

    def lowered(self) -> str:
        return self.value.lower()


def unescape_string(raw: str) -> str:
    """The value of a quoted ``string`` token (strips quotes, unescapes)."""
    body = raw[1:-1]
    return body.replace("\\'", "'").replace("\\\\", "\\")


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens; raises :class:`QuerySyntaxError` on
    characters outside the language."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[pos]!r}", text, pos
            )
        start, pos = match.start(), match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(Token(kind=kind, value=match.group(), pos=start))
    return tokens
