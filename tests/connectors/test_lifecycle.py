"""Mid-run source lifecycle, tick by tick: a source appears, drifts,
goes dark, and recovers — with exact health transitions and books.

This is the satellite-4 scenario of the connector framework: the
scheduler drives one connector along the simulated day clock while the
fault plan changes phase underneath it (clean, drifting, dark, clean
again), and every state the health machine passes through is asserted
against the transition ledger, not just the final state.
"""

from __future__ import annotations

from repro.connectors import (
    HEALTH_DARK,
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    HEALTH_RECOVERING,
    Connector,
    ConnectorRegistry,
    ConnectorSchedule,
    ConnectorScheduler,
)
from repro.reliability import FaultPlan, ResilienceContext


class StubConnector(Connector):
    """A wire-level source: fetch serves plain dicts, no _record."""

    def __init__(self, key, schedule=None, wires=()):
        super().__init__(key, schedule=schedule)
        self.wires = list(wires)

    def fetch(self):
        return [dict(w) for w in self.wires]

    def normalise(self, wire):
        return (wire["name"], wire["version"])


def wire(name: str, version: str = "1.0.0") -> dict:
    return {
        "source": "stub",
        "ecosystem": "npm",
        "name": name,
        "version": version,
        "report_day": 10,
        "shares_artifact": False,
    }


WIRES = [wire("alpha"), wire("beta"), wire("gamma")]


def drifting_context() -> ResilienceContext:
    # Drift rates sum to 1.0: every record drifts, deterministically.
    return ResilienceContext(
        plan=FaultPlan(
            seed=7, record_malform_rate=0.5, record_rename_rate=0.5
        )
    )


def dark_context() -> ResilienceContext:
    return ResilienceContext(plan=FaultPlan(seed=7, dark_sources=("stub",)))


def clean_context() -> ResilienceContext:
    # A plan with faults for *other* scopes only, so the resilient path
    # runs (injector present) but this source pulls clean.
    return ResilienceContext(plan=FaultPlan(seed=7, mirror_down_rate=0.01))


def test_full_lifecycle_tick_by_tick():
    connector = StubConnector(
        "stub",
        schedule=ConnectorSchedule(interval_days=1, active_from=3),
        wires=WIRES,
    )
    scheduler = ConnectorScheduler(ConnectorRegistry([connector]))

    # -- before its activity window: invisible to the scheduler ----------
    for day in (0, 1, 2):
        assert scheduler.tick(day) == {}
    assert connector.last_pull_day is None
    assert connector.health.transitions == []

    # -- day 3: the source appears and pulls clean -----------------------
    results = scheduler.tick(3, resilience=clean_context())
    pull = results["stub"]
    assert pull.clean
    assert pull.records == [("alpha", "1.0.0"), ("beta", "1.0.0"), ("gamma", "1.0.0")]
    assert connector.health.state == HEALTH_HEALTHY

    # -- day 4: the upstream format drifts; quarantined, NOT dark --------
    drifting = drifting_context()
    results = scheduler.tick(4, resilience=drifting)
    pull = results["stub"]
    assert pull.status == "ok"  # the source answered; the records drifted
    assert pull.records == []
    assert pull.quarantined == len(WIRES)
    assert sum(pull.quarantine_kinds.values()) == len(WIRES)
    assert connector.health.state == HEALTH_DEGRADED
    # exact books: injector ledger == report quarantine ledger == pull
    report = drifting.report
    assert sum(drifting.injector.injected.values()) == len(WIRES)
    assert report.quarantined_records == {"stub": len(WIRES)}
    assert report.quarantine_by_kind == pull.quarantine_kinds
    assert report.errors_by_kind == {}  # drift never raises

    # -- days 5-6: the source goes dark ----------------------------------
    dark = dark_context()
    for day in (5, 6):
        pull = scheduler.tick(day, resilience=dark)["stub"]
        assert pull.status == "skipped"
        assert pull.records == []
    assert connector.health.state == HEALTH_DARK
    assert dark.report.skipped_sources == ["stub", "stub"]
    assert dark.report.feed_attempts["stub"] > 2  # retries were spent

    # -- days 7-8: it answers again and earns healthy back ---------------
    pull = scheduler.tick(7, resilience=clean_context())["stub"]
    assert pull.clean
    assert connector.health.state == HEALTH_RECOVERING
    pull = scheduler.tick(8, resilience=clean_context())["stub"]
    assert pull.clean
    assert connector.health.state == HEALTH_HEALTHY

    # -- the audit trail holds the whole story, in order ------------------
    assert connector.health.transitions == [
        (4, HEALTH_HEALTHY, HEALTH_DEGRADED),
        (5, HEALTH_DEGRADED, HEALTH_DARK),
        (7, HEALTH_DARK, HEALTH_RECOVERING),
        (8, HEALTH_RECOVERING, HEALTH_HEALTHY),
    ]
    assert connector.health.quarantined_total == len(WIRES)


def test_null_resilience_pull_is_the_trivial_fast_path():
    connector = StubConnector("stub", wires=WIRES)
    pull = connector.pull(day=0)
    assert pull.clean and pull.attempts == 1
    assert pull.records == [("alpha", "1.0.0"), ("beta", "1.0.0"), ("gamma", "1.0.0")]
    assert connector.health.state == HEALTH_HEALTHY


def test_partial_emission_degrades_but_keeps_the_best_partial():
    # Feed truncation at rate 1.0: every attempt emits a partial, so the
    # retry budget exhausts and the pull degrades to the best partial.
    context = ResilienceContext(
        plan=FaultPlan(seed=7, feed_truncate_rate=1.0)
    )
    connector = StubConnector("stub", wires=WIRES)
    pull = connector.pull(resilience=context, day=9)
    assert pull.status == "partial"
    assert 0 < len(pull.records) < len(WIRES)
    assert pull.lost == len(WIRES) - len(pull.records)
    assert connector.health.state == HEALTH_DEGRADED
    assert context.report.partial_sources == {"stub": pull.lost}


def test_relapse_after_recovery_starts_goes_back_to_dark():
    connector = StubConnector(
        "stub", schedule=ConnectorSchedule(interval_days=1), wires=WIRES
    )
    scheduler = ConnectorScheduler(ConnectorRegistry([connector]))
    scheduler.tick(0, resilience=dark_context())
    assert connector.health.state == HEALTH_DARK
    scheduler.tick(1, resilience=clean_context())
    assert connector.health.state == HEALTH_RECOVERING
    scheduler.tick(2, resilience=dark_context())
    assert connector.health.state == HEALTH_DARK
    assert connector.health.transitions == [
        (0, HEALTH_HEALTHY, HEALTH_DARK),
        (1, HEALTH_DARK, HEALTH_RECOVERING),
        (2, HEALTH_RECOVERING, HEALTH_DARK),
    ]
