"""Scaling trajectory: dataclass vs columnar corpus at scale 1/10/100.

Standalone script (not a pytest bench) so CI can run it in fast mode:

    PYTHONPATH=src python benchmarks/bench_scaling.py --fast

The corpus under test is the canonical scale-1 collection, replicated
in *array space* to 10x/100x (replica packages and reports are renamed,
everything else — file contents, claims, dependencies — is shared, so
the string pool deduplicates exactly the way a flood campaign does).
Each scale then runs the same analysis pass twice, each in its own
child process so ``ru_maxrss`` isolates one path:

* **dataclass path** — load the JSONL dataset, then the Table II census
  scans, Fig. 2 timeline, Fig. 4 DG CDF and a dataset merge over
  hydrated ``DatasetEntry`` objects (the pre-columnar hot path);
* **columnar path** — memory-map the columnar tables and run the same
  stages through the vectorised accessors (census over arrays, the
  analysis fast paths, ``merge_columnar``).

Correctness gates (always on):

* at every scale both paths must report identical census numbers,
  timeline bins and CDF fractions;
* at scale 1 the full ``MalGraph.build`` over the facade must serialise
  byte-identically to the dataclass build (canonical JSON), and the
  columnar merge must hydrate byte-identically to ``merge_datasets``.

Performance gates (CI):

* at scale >= 10 the columnar pass must be >= 2x faster end-to-end and
  keep >= 3x less *corpus-resident* peak RSS (child peak minus the
  post-import interpreter baseline — at these scales the Python runtime
  itself would otherwise drown the quantity being compared);
* at scale 100 (full mode) the columnar pass — the only one that runs;
  the dataclass corpus would not fit a CI runner — must finish under
  the ``--rss-ceiling`` (default 2 GiB).

``--record FILE`` writes the trajectory (``BENCH_scaling.json`` at the
repo root holds the reference run). ``--fast`` = scales 1 and 10.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: columnar-over-dataclass requirements at scales >= GATE_AT_SCALE
SPEEDUP_FLOOR = 2.0
RSS_FLOOR = 3.0
GATE_AT_SCALE = 10

#: scale-100 columnar pass must stay under this peak RSS (MiB)
DEFAULT_RSS_CEILING_MB = 2048

#: the dataclass child is skipped above this scale (it would swap)
DATACLASS_MAX_SCALE = 10


# ---------------------------------------------------------------------------
# Corpus construction (parent process)
# ---------------------------------------------------------------------------

def _base_columnar():
    """The canonical scale-1 corpus, columnar-encoded."""
    from repro.core.columnar import ColumnarDataset
    from repro.world import default_dataset

    dataset = default_dataset(seed=7, scale=1.0)
    return ColumnarDataset.from_dataset(dataset), dataset


def _replicate_columnar(col, k: int):
    """``k`` renamed copies of the corpus, concatenated in array space.

    Replica packages get ``~r<i>`` name suffixes (dependencies and
    report mentions follow, so every replica keeps its own graph
    structure); report ids likewise. Everything else — claim rows, file
    CSRs and the underlying pool text — is shared, so file contents are
    stored once no matter the scale.
    """
    import numpy as np

    from repro.core.columnar import ColumnarDataset
    from repro.core.columnar.merge import _PKG_CSR, _REPORT_CSR, _concat, _concat_csr

    if k <= 1:
        return col
    pool = col.pool
    base_len = len(pool)
    name_ids = np.unique(
        np.concatenate(
            [
                np.asarray(col.packages["name"], dtype=np.int64),
                np.asarray(col.dep, dtype=np.int64),
                np.asarray(col.rpkg_name, dtype=np.int64),
            ]
        )
    )
    name_ids = name_ids[name_ids >= 0]
    report_ids = np.unique(np.asarray(col.reports["report_id"], dtype=np.int64))
    parts = [col]
    for i in range(1, k):
        remap = np.arange(base_len, dtype=np.int64)
        for ids in (name_ids, report_ids):
            for u in ids:
                remap[u] = pool.intern_into(f"{pool.lookup(int(u))}~r{i}")
        packages = np.asarray(col.packages).copy()
        packages["name"] = remap[packages["name"]]
        reports = np.asarray(col.reports).copy()
        reports["report_id"] = remap[reports["report_id"]]
        arrays = {name: getattr(col, name) for name in ColumnarDataset._ARRAY_FIELDS}
        arrays["packages"] = packages
        arrays["reports"] = reports
        arrays["dep"] = remap[np.asarray(col.dep, dtype=np.int64)]
        arrays["rpkg_name"] = remap[np.asarray(col.rpkg_name, dtype=np.int64)]
        parts.append(ColumnarDataset(pool=pool, **arrays))

    merged = {"packages": _concat([p.packages for p in parts]),
              "reports": _concat([p.reports for p in parts])}
    for owner_csr in (_PKG_CSR, _REPORT_CSR):
        for off_name, id_fields, data_fields in owner_csr:
            offsets, values = _concat_csr(
                [getattr(p, off_name) for p in parts],
                [[getattr(p, name) for name in id_fields + data_fields]
                 for p in parts],
            )
            merged[off_name] = offsets
            for name, value in zip(id_fields + data_fields, values):
                merged[name] = value
    return ColumnarDataset(
        pool=pool,
        **{name: merged[name] for name in ColumnarDataset._ARRAY_FIELDS},
    )


def _delta_dataset(dataset, tag: str):
    """A small deterministic delta: overlapping claim updates + fresh
    packages + one new report (exercises every merge branch)."""
    from repro.collection.records import (
        CollectedReport,
        DatasetEntry,
        MalwareDataset,
        SourceClaim,
    )
    from repro.ecosystem.package import PackageId, make_artifact

    entries, reports = [], []
    n = len(dataset.entries)
    step = max(1, n // 16)  # ~16 overlapping rows: an incremental delta
    for i in range(0, n, step):
        entry = dataset.entries[i]
        entries.append(
            DatasetEntry(
                package=entry.package,
                claims=[SourceClaim("delta-feed", 12, False)],
                downloads=entry.downloads + 7,
            )
        )
    for i in range(8):
        eco = "npm"
        artifact = make_artifact(
            eco, f"delta-{tag}-{i}", "1.0",
            {"index.py": f"# delta payload {tag} {i}\n"},
        )
        entries.append(
            DatasetEntry(
                package=PackageId(eco, f"delta-{tag}-{i}", "1.0"),
                claims=[SourceClaim("delta-feed", 30, True)],
                artifact=artifact,
                artifact_origin="source:delta-feed",
                release_day=25,
                downloads=2,
            )
        )
    reports.append(
        CollectedReport(
            report_id=f"r-delta-{tag}",
            url=f"https://intel.example/r-delta-{tag}",
            site="intel.example",
            category="Security org.",
            source="delta-feed",
            publish_day=31,
            packages=[e.package for e in entries[:3]],
        )
    )
    return MalwareDataset(entries=entries, reports=reports)


# ---------------------------------------------------------------------------
# Measured analysis pass (child process)
# ---------------------------------------------------------------------------

def _census_numbers_dataclass(dataset):
    """Table II census for the three corpus-scan types, over dataclasses
    (pure group functions + the clique/pair arithmetic of
    ``PropertyGraph.stats`` — no graph materialised)."""
    from repro.core.edges import (
        coexisting_groups_of,
        dependency_pairs_of,
        duplicated_groups_of,
    )

    out = {}
    groups = duplicated_groups_of(dataset)
    out["duplicated"] = {
        "nodes": sum(len(g) for g in groups),
        "edges": sum(len(g) * (len(g) - 1) for g in groups),
    }
    pairs = dependency_pairs_of(dataset)
    undirected = {
        tuple(sorted((a.package, b.package))) for a, b in pairs
    }
    endpoints = {e.package for pair in pairs for e in pair}
    out["dependency"] = {"nodes": len(endpoints), "edges": 2 * len(undirected)}
    cgroups = coexisting_groups_of(dataset)
    out["coexisting"] = {
        "nodes": len({e.package for g in cgroups for e in g}),
        "edges": sum(len(g) * (len(g) - 1) for g in cgroups),
    }
    return out


def _census_numbers_columnar(col):
    from repro.core.columnar import census

    return {
        edge_type.value: {"nodes": s.nodes, "edges": s.directed_edges}
        for edge_type, s in census(col).items()
    }


def _run_child_pass(kind: str, corpus_dir: str, delta_dir: str) -> dict:
    """The measured pass; runs inside the child. Returns stage timings,
    cross-path comparable results, and this process's peak RSS."""
    from repro.pipeline.report import current_peak_rss_kb

    stages = {}
    results = {}

    def timed(name):
        class _T:
            def __enter__(self):
                self.t0 = time.perf_counter()

            def __exit__(self, *exc):
                stages[name] = round(time.perf_counter() - self.t0, 4)

        return _T()

    if kind == "dataclass":
        from repro.analysis import compute_dg_size_cdf, compute_release_timeline
        from repro.collection.merge import merge_datasets
        from repro.io.datasets import load_dataset

        baseline = current_peak_rss_kb()
        with timed("load"):
            dataset = load_dataset(Path(corpus_dir))
        with timed("census"):
            results["census"] = _census_numbers_dataclass(dataset)
        with timed("timeline"):
            timeline = compute_release_timeline(dataset)
        with timed("cdf"):
            cdf = compute_dg_size_cdf(dataset)
        delta = load_dataset(Path(delta_dir))
        with timed("merge"):
            merged = merge_datasets(dataset, delta)
        results["merged_entries"] = len(merged.entries)
    elif kind == "columnar":
        from repro.analysis import compute_dg_size_cdf, compute_release_timeline
        from repro.core.columnar import (
            ColumnarMalwareDataset,
            load_columnar,
            merge_columnar,
        )

        baseline = current_peak_rss_kb()
        with timed("load"):
            col = load_columnar(Path(corpus_dir), mmap=True)
            facade = ColumnarMalwareDataset(col)
        with timed("census"):
            results["census"] = _census_numbers_columnar(col)
        with timed("timeline"):
            timeline = compute_release_timeline(facade)
        with timed("cdf"):
            cdf = compute_dg_size_cdf(facade)
        delta = load_columnar(Path(delta_dir), mmap=True)
        with timed("merge"):
            merged = merge_columnar(col, delta)
        results["merged_entries"] = merged.n_packages
    else:  # pragma: no cover - CLI misuse
        raise SystemExit(f"unknown child kind {kind!r}")

    results["timeline"] = {"months": timeline.months, "counts": timeline.counts}
    results["cdf"] = {
        eco: [[p.value, p.fraction] for p in points]
        for eco, points in cdf.per_ecosystem.items()
    }
    results["cdf_fractions"] = [
        cdf.single_source_fraction, cdf.more_than_three_fraction
    ]
    peak = current_peak_rss_kb()
    return {
        "stages": stages,
        "total_s": round(sum(stages.values()), 4),
        "results": results,
        "peak_rss_kb": peak,
        # interpreter + imports high-water mark, sampled before any
        # corpus byte was read: peak - baseline is what the *corpus*
        # costs, the quantity the RSS_FLOOR gate compares.
        "baseline_rss_kb": baseline,
        "corpus_rss_kb": max(peak - baseline, 1),
    }


def _spawn_pass(kind: str, corpus_dir: Path, delta_dir: Path) -> dict:
    """Run one analysis pass in a fresh interpreter (isolated ru_maxrss)."""
    proc = subprocess.run(
        [
            sys.executable, str(Path(__file__).resolve()),
            "--child", kind, str(corpus_dir), str(delta_dir),
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{kind} child failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------

def _assert_cross_path_equal(dc: dict, col: dict) -> None:
    assert dc["results"]["census"] == col["results"]["census"], (
        "census diverged:\n"
        f"dataclass: {dc['results']['census']}\n"
        f"columnar:  {col['results']['census']}"
    )
    assert dc["results"]["timeline"] == col["results"]["timeline"]
    assert dc["results"]["cdf"] == col["results"]["cdf"]
    assert dc["results"]["cdf_fractions"] == col["results"]["cdf_fractions"]
    assert dc["results"]["merged_entries"] == col["results"]["merged_entries"]


def _scale1_byte_identity(dataset, facade, delta) -> None:
    """The acceptance anchor: Table II / canonical MALGRAPH / merge are
    byte-identical between the dataclass and columnar paths."""
    from repro.analysis import compute_graph_stats
    from repro.collection.merge import merge_datasets
    from repro.core.columnar import ColumnarDataset, merge_columnar
    from repro.core.malgraph import MalGraph
    from repro.io.datasets import entry_to_dict, report_to_dict
    from repro.io.malgraphs import canonical_malgraph_json

    g_dc = MalGraph.build(dataset)
    g_col = MalGraph.build(facade)
    assert compute_graph_stats(g_dc).render() == compute_graph_stats(g_col).render()
    assert canonical_malgraph_json(g_dc) == canonical_malgraph_json(g_col), (
        "canonical MALGRAPH serialisation diverged between paths"
    )

    merged_dc = merge_datasets(dataset, delta)
    merged_col = merge_columnar(
        facade.columnar, ColumnarDataset.from_dataset(delta)
    )
    assert [entry_to_dict(e) for e in merged_dc.entries] == [
        entry_to_dict(merged_col.entry_at(i))
        for i in range(merged_col.n_packages)
    ], "merge entry hydration diverged between paths"
    assert [report_to_dict(r) for r in merged_dc.reports] == [
        report_to_dict(merged_col.report_at(i))
        for i in range(merged_col.n_reports)
    ], "merge report hydration diverged between paths"


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def bench_scale(scale: int, base_col, base_dataset, record: list,
                rss_ceiling_mb: float) -> None:
    from repro.core.columnar import (
        ColumnarDataset,
        ColumnarMalwareDataset,
        save_columnar,
    )
    from repro.io.datasets import save_dataset

    print(f"\n== scale {scale:g} ==")
    col = _replicate_columnar(base_col, scale)
    facade = ColumnarMalwareDataset(col)
    n = col.n_packages
    print(f"corpus: {n} entries, {col.n_reports} reports, pool {len(col.pool)}")

    workdir = Path(tempfile.mkdtemp(prefix=f"bench-scaling-{scale}-"))
    col_dir = workdir / "columnar"
    save_columnar(col, col_dir)
    delta = _delta_dataset(facade, tag=f"s{scale}")
    col_delta_dir = workdir / "columnar-delta"
    save_columnar(ColumnarDataset.from_dataset(delta), col_delta_dir)

    run_dataclass = scale <= DATACLASS_MAX_SCALE
    dc = None
    if run_dataclass:
        dc_dir = workdir / "jsonl"
        hydrated = facade.to_dataset() if scale > 1 else base_dataset
        save_dataset(hydrated, dc_dir)
        dc_delta_dir = workdir / "jsonl-delta"
        save_dataset(delta, dc_delta_dir)
        dc = _spawn_pass("dataclass", dc_dir, dc_delta_dir)
    colp = _spawn_pass("columnar", col_dir, col_delta_dir)

    def _path_row(p: dict) -> dict:
        return {
            "stages": p["stages"],
            "total_s": p["total_s"],
            "peak_rss_mb": round(p["peak_rss_kb"] / 1024.0, 1),
            "corpus_rss_mb": round(p["corpus_rss_kb"] / 1024.0, 1),
        }

    def _path_line(label: str, p: dict) -> str:
        return (
            f"{label}: {p['total_s']:8.2f} s   "
            f"{p['corpus_rss_kb'] / 1024.0:8.1f} MiB corpus "
            f"({p['peak_rss_kb'] / 1024.0:.1f} total)   {p['stages']}"
        )

    row = {
        "scale": scale,
        "entries": n,
        "reports": col.n_reports,
        "columnar": _path_row(colp),
    }
    print(_path_line("columnar ", colp))
    if dc is not None:
        _assert_cross_path_equal(dc, colp)
        print("cross-path gate: census/timeline/CDF/merge identical  OK")
        speedup = dc["total_s"] / colp["total_s"] if colp["total_s"] else float("inf")
        rss_ratio = dc["corpus_rss_kb"] / colp["corpus_rss_kb"]
        row["dataclass"] = _path_row(dc)
        row["speedup"] = round(speedup, 2)
        row["rss_reduction"] = round(rss_ratio, 2)
        print(_path_line("dataclass", dc))
        print(f"speedup {speedup:5.1f}x   rss reduction {rss_ratio:5.1f}x")
        if scale >= GATE_AT_SCALE:
            assert speedup >= SPEEDUP_FLOOR, (
                f"columnar pass only {speedup:.2f}x faster at scale {scale} "
                f"(need >= {SPEEDUP_FLOOR:g}x)"
            )
            assert rss_ratio >= RSS_FLOOR, (
                f"columnar pass only {rss_ratio:.2f}x smaller at scale {scale} "
                f"(need >= {RSS_FLOOR:g}x)"
            )
            print(
                f"perf gates: {speedup:.1f}x >= {SPEEDUP_FLOOR:g}x, "
                f"{rss_ratio:.1f}x >= {RSS_FLOOR:g}x  OK"
            )

    if scale == 1:
        _scale1_byte_identity(base_dataset, facade, delta)
        row["byte_identical"] = True
        print("scale-1 gate: Table II + canonical MALGRAPH + merge "
              "byte-identical  OK")

    ceiling_kb = rss_ceiling_mb * 1024
    assert colp["peak_rss_kb"] <= ceiling_kb, (
        f"columnar pass used {colp['peak_rss_kb'] / 1024.0:.0f} MiB at scale "
        f"{scale} (ceiling {rss_ceiling_mb:.0f} MiB)"
    )
    if not run_dataclass:
        print(
            f"rss ceiling gate: {colp['peak_rss_kb'] / 1024.0:.0f} MiB <= "
            f"{rss_ceiling_mb:.0f} MiB  OK (dataclass pass skipped at this scale)"
        )
    record.append(row)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=int, nargs="+", default=[1, 10, 100],
        help="replication factors over the scale-1 corpus (default: 1 10 100)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="CI mode: scales 1 and 10 (all correctness + ratio gates)",
    )
    parser.add_argument(
        "--rss-ceiling-mb", type=float, default=DEFAULT_RSS_CEILING_MB,
        help="peak-RSS ceiling for the columnar pass (MiB)",
    )
    parser.add_argument(
        "--record", default=None, metavar="FILE",
        help="write the measurements to this JSON trajectory file",
    )
    parser.add_argument(
        "--child", nargs=3, metavar=("KIND", "CORPUS", "DELTA"),
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)

    if args.child:
        kind, corpus_dir, delta_dir = args.child
        print(json.dumps(_run_child_pass(kind, corpus_dir, delta_dir)))
        return 0

    if args.fast:
        args.scales = [1, 10]
    print(f"scales={args.scales}")
    base_col, base_dataset = _base_columnar()
    record: list = []
    for scale in args.scales:
        bench_scale(scale, base_col, base_dataset, record, args.rss_ceiling_mb)
    if args.record:
        Path(args.record).write_text(
            json.dumps({"bench": "scaling", "runs": record},
                       indent=2, sort_keys=True) + "\n"
        )
        print(f"\nwrote {args.record}")
    print("\nall correctness gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
